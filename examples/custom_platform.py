#!/usr/bin/env python3
"""Custom platforms: user-defined SoCs as declarative, serializable specs.

This example exercises the :mod:`repro.platform` subsystem three ways:

1. load the shipped 8-IP asymmetric big.LITTLE spec
   (``examples/specs/custom_platform.json``), validate it and run it
   end-to-end against the always-on baseline;
2. build an equivalent-flavour platform fluently with
   :class:`~repro.platform.PlatformBuilder`, register it by name and run it
   through the ordinary ``run_comparison`` entry point;
3. round-trip the spec through TOML to show the serialization is lossless.

Run with::

    python examples/custom_platform.py
"""

from __future__ import annotations

import os
import tempfile

from repro.analysis import format_table
from repro.experiments import run_comparison
from repro.platform import (
    PlatformBuilder,
    load_platform,
    save_platform,
    to_scenario,
)

SPEC_PATH = os.path.join(os.path.dirname(__file__), "specs", "custom_platform.json")


def print_metrics(title: str, metrics) -> None:
    rows = [
        ["energy saving (%)", f"{metrics.energy_saving_pct:.1f}"],
        ["temperature reduction (%)", f"{metrics.temperature_reduction_pct:.1f}"],
        ["average delay overhead (%)", f"{metrics.average_delay_overhead_pct:.1f}"],
        ["tasks executed", str(metrics.tasks_executed)],
    ]
    print(format_table(["metric", "value"], rows, title=title))
    print()


def main() -> None:
    # 1. A platform from a file: the scenario is data, not code.
    spec = load_platform(SPEC_PATH)
    print(f"loaded platform {spec.name!r}: {len(spec.ips)} IPs, "
          f"GEM {'on' if spec.gem.enabled else 'off'}\n")
    metrics = run_comparison(to_scenario(spec))
    print_metrics(f"{spec.name} (from {os.path.basename(SPEC_PATH)})", metrics)

    # 2. The same idea built fluently and registered by name.
    (
        PlatformBuilder("quad-asym")
        .describe("2 fast + 2 slow IPs under a GEM, low battery")
        .battery("low")
        .thermal("low")
        .gem(high_priority_count=2)
        .policy("paper", predictor="adaptive")
        .ip("fast0", workload={"kind": "high_activity", "task_count": 10, "seed": 31},
            priority=1, max_frequency_hz=400e6)
        .ip("fast1", workload={"kind": "high_activity", "task_count": 10, "seed": 32},
            priority=2, max_frequency_hz=400e6)
        .ip("slow0", workload={"kind": "low_activity", "task_count": 10, "seed": 33},
            priority=3, max_frequency_hz=100e6, max_voltage_v=0.9)
        .ip("slow1", workload={"kind": "bursty", "burst_count": 2, "tasks_per_burst": 5,
                               "seed": 34},
            priority=4, max_frequency_hz=100e6, max_voltage_v=0.9)
        .max_time_ms(1000)
        .register()
    )
    metrics = run_comparison("quad-asym")  # resolved through the registry
    print_metrics("quad-asym (PlatformBuilder, registered by name)", metrics)

    # 3. Lossless TOML round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "platform.toml")
        save_platform(spec, path)
        assert load_platform(path) == spec
        print(f"TOML round trip of {spec.name!r}: lossless "
              f"({os.path.getsize(path)} bytes)")


if __name__ == "__main__":
    main()
