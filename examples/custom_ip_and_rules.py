#!/usr/bin/env python3
"""Retargeting the architecture to a custom IP: own DVFS table, own rules.

The paper stresses that "the complexity and the flexibility of the power
management are left to the LEM, whose parameters can be adapted to the
single IP to optimize its performances".  This example shows that workflow:

1. characterise a custom IP (different voltage/frequency points, a larger
   effective capacitance, slower sleep transitions),
2. write an application-specific rule table (a media accelerator that never
   drops below ON2 for high-priority frames),
3. drive the IP with service requests through a channel (request-driven mode
   instead of a pre-baked workload),
4. inspect the resulting break-even times, decisions and energy breakdown.

Run with::

    python examples/custom_ip_and_rules.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.dpm import (
    BatteryLevel,
    DpmSetup,
    Rule,
    RuleBasedPolicy,
    RuleTable,
    TaskPriority,
    TemperatureLevel,
)
from repro.power import (
    BreakEvenAnalyzer,
    InstructionClass,
    OperatingPoint,
    OperatingPointTable,
    PowerCharacterization,
    PowerState,
    default_transition_table,
)
from repro.sim import sec, us
from repro.soc import IpSpec, SocConfig, build_soc, bursty_workload

P, B, T, S = TaskPriority, BatteryLevel, TemperatureLevel, PowerState


def media_accelerator_characterization() -> PowerCharacterization:
    """A hungry media accelerator: 400 MHz at 1.3 V, milder DVFS ladder."""
    points = OperatingPointTable(
        [
            OperatingPoint(S.ON1, voltage_v=1.30, frequency_hz=400e6),
            OperatingPoint(S.ON2, voltage_v=1.15, frequency_hz=320e6),
            OperatingPoint(S.ON3, voltage_v=1.00, frequency_hz=240e6),
            OperatingPoint(S.ON4, voltage_v=0.90, frequency_hz=160e6),
        ]
    )
    return PowerCharacterization(
        operating_points=points,
        effective_capacitance_f=1.6e-9,
        idle_activity=0.40,
    )


def media_rule_table() -> RuleTable:
    """Frames must not starve: high priority never drops below ON2."""
    return RuleTable(
        [
            Rule.of(S.ON1, [P.VERY_HIGH], None, None, label="frames-on-time"),
            Rule.of(S.ON2, [P.HIGH], None, None, label="frames-almost-on-time"),
            Rule.of(S.SL1, None, [B.EMPTY], None, label="save-the-battery"),
            Rule.of(S.ON4, None, [B.LOW], None, label="stretch-the-battery"),
            Rule.of(S.ON3, [P.MEDIUM], None, None, label="background"),
            Rule.of(S.ON4, None, None, None, label="default"),
        ],
        name="media-accelerator",
    )


def main() -> None:
    characterization = media_accelerator_characterization()
    transitions = default_transition_table(
        reference_power_w=characterization.active_power_w(S.ON1)
    )

    print("Break-even times of the custom IP (who is worth sleeping for?):")
    analyzer = BreakEvenAnalyzer(characterization, transitions)
    rows = [
        [str(entry.state),
         f"{entry.round_trip_latency.seconds * 1e6:.0f}",
         f"{entry.round_trip_energy_j * 1e6:.1f}",
         "-" if entry.break_even is None else f"{entry.break_even.seconds * 1e6:.0f}"]
        for entry in analyzer.entries
    ]
    print(format_table(["state", "round trip (us)", "round trip (uJ)", "break-even (us)"], rows))

    custom_rules = media_rule_table()
    print("\nCustom rule table:")
    print(custom_rules.describe())
    print(f"covers every input: {custom_rules.is_total()}")

    setup = DpmSetup(
        name="media-dpm",
        policy_factory=lambda: RuleBasedPolicy(rules=media_rule_table(), allow_off=False),
    )

    workload = bursty_workload(
        burst_count=8,
        tasks_per_burst=5,
        seed=9,
        priorities=(P.VERY_HIGH, P.HIGH, P.MEDIUM, P.LOW),
        name="frames",
    )
    spec = IpSpec(
        name="media",
        workload=workload,
        characterization=characterization,
        transitions=transitions,
    )
    soc = build_soc([spec], SocConfig(name="media_soc"), setup)
    end_time = soc.run_until_done(max_time=sec(5))

    instance = soc.instance("media")
    print(f"\nSimulated {end_time}: {instance.ip.tasks_executed} frames processed")
    print("Energy breakdown (mJ):")
    for category, energy in sorted(instance.ip.energy_account.breakdown.items()):
        print(f"  {category:>10}: {1e3 * energy:.3f}")

    by_state: dict = {}
    for decision in instance.lem.decisions:
        by_state[decision.selected_state] = by_state.get(decision.selected_state, 0) + 1
    print("\nLEM decisions by selected state:")
    for state, count in sorted(by_state.items(), key=lambda item: str(item[0])):
        print(f"  {state}: {count}")

    overheads = [e.delay_overhead for e in instance.ip.executions
                 if e.task.priority in (P.VERY_HIGH, P.HIGH)]
    print(f"\nMean delay overhead of high-priority frames: "
          f"{100.0 * sum(overheads) / len(overheads):.1f} % "
          "(the custom rules keep them fast regardless of the battery)")


if __name__ == "__main__":
    main()
