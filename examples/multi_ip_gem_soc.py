#!/usr/bin/env python3
"""A four-IP SoC with a Global Energy Manager, shared bus and state tracing.

This example builds the full architecture of the paper's Fig. 1 — four IP
blocks, each with its own PSM and LEM, a GEM, a battery monitor, a thermal
sensor, a supplementary fan and a shared bus — and runs it under a low
battery so the GEM's priority gating is visible.  It then prints:

* which power states every IP visited (state residency),
* the GEM's enable decisions and fan activity,
* the bus occupancy,
* and writes a VCD waveform of the four PSM state signals that can be opened
  in GTKWave.

Run with::

    python examples/multi_ip_gem_soc.py [output.vcd]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table, psm_residency, transition_summary
from repro.battery import BatteryConfig
from repro.dpm import DpmSetup
from repro.sim import sec
from repro.soc import IpSpec, SocConfig, build_soc, high_activity_workload, low_activity_workload
from repro.thermal import ThermalConfig


def build():
    """Four IPs: two busy high-priority ones, two mostly idle low-priority ones."""
    specs = [
        IpSpec(
            name="cpu",
            workload=high_activity_workload(task_count=20, seed=1, name="cpu"),
            static_priority=1,
            bus_words_per_task=256,
        ),
        IpSpec(
            name="dsp",
            workload=high_activity_workload(task_count=20, seed=2, name="dsp"),
            static_priority=2,
            bus_words_per_task=512,
        ),
        IpSpec(
            name="crypto",
            workload=low_activity_workload(task_count=12, seed=3, name="crypto"),
            static_priority=3,
            bus_words_per_task=128,
        ),
        IpSpec(
            name="io",
            workload=low_activity_workload(task_count=12, seed=4, name="io"),
            static_priority=4,
            bus_words_per_task=64,
        ),
    ]
    config = SocConfig(
        name="fig1_soc",
        battery=BatteryConfig(capacity_j=250.0, initial_state_of_charge=0.22),
        thermal=ThermalConfig(ambient_c=35.0, initial_c=35.0, thermal_resistance_c_per_w=15.0),
        use_gem=True,
        with_bus=True,
        trace_states=True,
    )
    return build_soc(specs, config, DpmSetup.paper())


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    vcd_path = argv[0] if argv else "fig1_soc_states.vcd"

    soc = build()
    print("Design hierarchy (Fig. 1):")
    print(soc.design_tree())

    end_time = soc.run_until_done(max_time=sec(5))
    print(f"\nSimulated {end_time} — all IPs done: {soc.all_done}")
    print(f"Battery: {soc.battery.level} ({100 * soc.battery.state_of_charge:.1f} % charge left)")
    print(f"Chip temperature: {soc.thermal.temperature_c:.1f} C "
          f"(peak {soc.thermal.peak_c:.1f} C, class {soc.thermal.level})")

    print("\nPer-IP summary:")
    rows = []
    for instance in soc.instances:
        residency = psm_residency(instance.psm)
        rows.append(
            [
                instance.spec.name,
                instance.spec.static_priority,
                instance.ip.tasks_executed,
                f"{1e3 * instance.ip.energy_account.total_j:.2f}",
                f"{100 * residency.sleep_fraction():.0f}%",
                str(residency.dominant_state()),
                instance.psm.transition_count,
            ]
        )
    print(
        format_table(
            ["IP", "priority", "tasks", "energy (mJ)", "time asleep", "dominant state", "transitions"],
            rows,
        )
    )

    print("\nGEM:")
    print(f"  evaluations: {soc.gem.evaluation_count}")
    print(f"  final enable map: {soc.gem.enabled_map}")
    print(f"  fan activations: {soc.gem.fan_activations} "
          f"(fan on for {soc.fan.total_on_time.seconds * 1e3:.1f} ms)")

    print("\nBus:")
    print(f"  transfers: {soc.bus.stats.transfer_count}, "
          f"words: {soc.bus.stats.words_transferred}, "
          f"occupancy: {100 * soc.bus.occupancy():.1f} %, "
          f"average grant wait: {soc.bus.stats.average_wait()}")

    print("\nPSM transitions across the SoC:")
    for key, count in sorted(transition_summary(soc.psms).items()):
        print(f"  {key}: {count}")

    if soc.simulator.trace is not None:
        soc.simulator.trace.write_vcd(vcd_path, end_time, comment="Fig.1 SoC power states")
        print(f"\nWrote PSM state waveform to {vcd_path}")


if __name__ == "__main__":
    main()
