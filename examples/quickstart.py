#!/usr/bin/env python3
"""Quickstart: one IP with the paper's DPM versus the always-on baseline.

This is the smallest end-to-end use of the library:

1. describe an IP with a workload (a traffic generator, as in the paper),
2. build the SoC of Fig. 1 (PSM + LEM + battery monitor + thermal sensor),
3. run it once with the paper's rule-based DPM and once with the
   maximum-frequency baseline,
4. print energy, temperature and delay figures.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table, psm_residency
from repro.dpm import DpmSetup
from repro.sim import ms, sec
from repro.soc import IpSpec, SocConfig, build_soc, random_workload


def run_once(setup: DpmSetup):
    """Build a fresh single-IP SoC and run it to completion under ``setup``."""
    workload = random_workload(task_count=30, seed=42, name="quickstart")
    soc = build_soc(
        ip_specs=[IpSpec(name="ip0", workload=workload)],
        soc_config=SocConfig(name=f"soc_{setup.name}"),
        dpm=setup,
    )
    end_time = soc.run_until_done(max_time=sec(5))
    return soc, end_time


def main() -> None:
    dpm_soc, dpm_end = run_once(DpmSetup.paper())
    base_soc, base_end = run_once(DpmSetup.always_on())

    dpm_energy = dpm_soc.total_energy_j()
    base_energy = base_soc.total_energy_j()
    saving = 100.0 * (base_energy - dpm_energy) / base_energy

    executions = dpm_soc.instance("ip0").ip.executions
    mean_overhead = 100.0 * sum(e.delay_overhead for e in executions) / len(executions)

    print("=== quickstart: paper DPM vs always-on baseline ===\n")
    rows = [
        ["total energy (mJ)", f"{1e3 * dpm_energy:.2f}", f"{1e3 * base_energy:.2f}"],
        ["makespan (ms)", f"{dpm_end.seconds * 1e3:.1f}", f"{base_end.seconds * 1e3:.1f}"],
        ["avg temperature rise (C)",
         f"{dpm_soc.thermal.average_rise_c:.1f}",
         f"{base_soc.thermal.average_rise_c:.1f}"],
        ["peak temperature (C)",
         f"{dpm_soc.thermal.peak_c:.1f}",
         f"{base_soc.thermal.peak_c:.1f}"],
        ["battery state of charge", f"{dpm_soc.battery.state_of_charge:.3f}",
         f"{base_soc.battery.state_of_charge:.3f}"],
    ]
    print(format_table(["metric", "paper DPM", "always-on"], rows))
    print(f"\nenergy saving: {saving:.1f} %")
    print(f"average task delay overhead (DPM): {mean_overhead:.1f} %")

    print("\nWhere the DPM-managed IP spent its time:")
    residency = psm_residency(dpm_soc.instance("ip0").psm)
    for state, fraction in sorted(residency.as_dict().items()):
        if fraction > 0.001:
            print(f"  {state:>4}: {100.0 * fraction:5.1f} %")

    decisions = dpm_soc.instance("ip0").lem.decisions
    print(f"\nLEM decisions: {len(decisions)} grants, "
          f"{dpm_soc.instance('ip0').lem.sleep_decisions} sleep transitions, "
          f"{dpm_soc.instance('ip0').psm.transition_count} PSM transitions in total")


if __name__ == "__main__":
    main()
