#!/usr/bin/env python3
"""Reproduce the paper's Table 2 and simulation-speed figure from the CLI.

Runs all six scenarios (A1-A4 single IP, B and C with a GEM and four IPs),
each once with the paper's DPM and once with the always-on baseline, and
prints the reproduced rows next to the numbers printed in the paper.

Run with::

    python examples/table2_reproduction.py            # all rows
    python examples/table2_reproduction.py A2 B       # a subset
"""

from __future__ import annotations

import sys

from repro.analysis.report import render_comparison
from repro.experiments import (
    paper_scenarios,
    reproduce_table2,
    scenario_by_name,
    simulation_speed,
    simulation_speed_report,
)


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        scenarios = [scenario_by_name(name) for name in argv]
    else:
        scenarios = paper_scenarios()

    print(f"Running {len(scenarios)} scenario(s): {', '.join(s.name for s in scenarios)}")
    print("Each scenario is simulated twice (paper DPM + always-on baseline).\n")

    results = reproduce_table2(scenarios)
    print(render_comparison(results))

    print("\nPer-IP breakdown of the DPM runs:")
    for metrics in results:
        for ip_name, stats in sorted(metrics.per_ip.items()):
            print(
                f"  {metrics.scenario:>2} {ip_name}: {int(stats['tasks'])} tasks, "
                f"{1e3 * stats['energy_j']:.2f} mJ, "
                f"mean delay overhead {stats['mean_delay_overhead_pct']:.0f} %, "
                f"{int(stats['transitions'])} PSM transitions"
            )

    print("\nSimulation speed (reference-clock cycles per wall-clock second):")
    speeds = simulation_speed(scenarios)
    print(simulation_speed_report(speeds))


if __name__ == "__main__":
    main()
