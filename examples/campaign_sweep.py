#!/usr/bin/env python3
"""Run an experiment campaign from Python: grid, pool, store, resume.

The equivalent of::

    repro-dpm campaign run examples/specs/paper_grid.json --workers 4
    repro-dpm campaign report campaigns/paper-grid

but built in code, to show the campaign API:

1. declare a grid (scenarios x setups x seeds) — or load one from a spec
   file with :meth:`CampaignSpec.from_file`,
2. fan it out over a worker pool; every job result lands in a
   content-addressed store keyed by the job hash,
3. run the same campaign again with ``resume=True`` — nothing executes,
4. reduce the stored records to aggregate tables.

Run with::

    python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.campaign import (
    CampaignSpec,
    render_campaign_report,
    run_campaign,
)


def main() -> None:
    spec = CampaignSpec.from_dict(
        {
            "name": "example-sweep",
            "description": "two paper rows and a custom hot scenario, 3 seeds",
            "scenarios": [
                "A1",
                "A2",
                {"kind": "single_ip", "name": "hot", "battery": "low",
                 "temperature": "high", "task_count": 20},
            ],
            "setups": ["paper", "greedy-sleep"],
            "seeds": [1, 2, 3],
        }
    )
    directory = tempfile.mkdtemp(prefix="campaign-example-")

    print(f"grid: {len(spec.jobs())} jobs -> {directory}")
    summary = run_campaign(spec, directory, workers=4)
    print(
        f"executed {summary.executed} jobs in {summary.wall_clock_s:.2f} s "
        f"({summary.ok} ok, {summary.errors} errors)"
    )

    again = run_campaign(spec, directory, workers=4, resume=True)
    print(f"resume: executed {again.executed}, skipped {again.skipped}\n")

    print(render_campaign_report(again.records, title=f"Campaign {spec.name!r}"))


if __name__ == "__main__":
    main()
