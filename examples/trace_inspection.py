#!/usr/bin/env python3
"""Observability walkthrough: trace a run and mine the event stream.

This example shows the three ways into ``repro.obs``:

1. trace a paper scenario programmatically (``TraceRequest``) and compute
   per-state PSM residency plus LEM decision statistics from the raw
   events,
2. run a platform whose *spec* switches tracing on
   (``examples/specs/traced_soc.json``) and inspect the bus traffic it
   recorded,
3. convert the same run into a Perfetto/Chrome trace you can drop into
   https://ui.perfetto.dev.

Run with::

    python examples/trace_inspection.py
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.analysis import format_table
from repro.experiments import run_scenario
from repro.obs import TraceRequest, validate_event


def trace_a_scenario(out_dir: Path) -> Path:
    """Trace scenario B (four IPs + GEM) to a JSONL file."""
    path = out_dir / "B_trace.jsonl"
    run = run_scenario("B", trace=TraceRequest(format="jsonl", path=str(path)))
    print(f"scenario B: {len(run.executions)} tasks, trace at {run.trace_path}")
    return path


def mine_the_events(path: Path) -> None:
    """Everything a sink writes is plain data — mine it with stdlib tools."""
    events = [json.loads(line) for line in path.read_text().splitlines()]
    for event in events:
        validate_event(event)  # every emitted event conforms to the taxonomy

    # Per-IP PSM residency, reconstructed from psm.state/psm.transition.
    residency = defaultdict(lambda: defaultdict(int))
    open_state = {}
    for event in events:
        if event["kind"] == "psm.state":
            open_state[event["source"]] = (event["state"], event["t_fs"])
        elif event["kind"] == "psm.transition":
            state, since = open_state.get(event["source"], (None, 0))
            if state is not None:
                residency[event["source"]][state] += event["t_fs"] - since
            open_state[event["source"]] = (event["to_state"], event["t_fs"])

    rows = []
    for source in sorted(residency):
        total = sum(residency[source].values()) or 1
        top = sorted(residency[source].items(), key=lambda kv: -kv[1])[:3]
        rows.append([
            source,
            ", ".join(f"{state} {100 * span / total:.0f}%" for state, span in top),
        ])
    print()
    print(format_table(["IP", "PSM residency (top states)"], rows))

    # What did the LEMs decide, and how often did they defer?
    decisions = Counter(
        event["state"] for event in events if event["kind"] == "lem.decision"
    )
    deferrals = sum(1 for event in events if event["kind"] == "lem.deferral")
    print(f"\nLEM grants by state: {dict(decisions)}; deferrals: {deferrals}")


def run_a_spec_traced_platform(out_dir: Path) -> None:
    """The spec in examples/specs/traced_soc.json enables tracing itself."""
    from repro.platform import load_platform

    spec = load_platform(Path(__file__).parent / "specs" / "traced_soc.json")
    # The spec has no explicit path, so the trace defaults to
    # <name>_trace.jsonl in the working directory; point it somewhere else
    # by overriding the request instead of editing the file.
    request = TraceRequest(
        format=spec.trace.format,
        path=str(out_dir / "traced_soc.jsonl"),
        events=tuple(spec.trace.events),
    )
    run = run_scenario(spec, trace=request)
    events = [json.loads(line) for line in Path(run.trace_path).read_text().splitlines()]
    grants = [event for event in events if event["kind"] == "bus.grant"]
    waits = [event["wait_us"] for event in grants]
    print(
        f"\nspec-traced platform: {len(grants)} bus grants, "
        f"max wait {max(waits):.1f} us" if waits else "\nno bus traffic recorded"
    )


def export_perfetto(out_dir: Path) -> None:
    """Same run, Perfetto sink: open the file in ui.perfetto.dev."""
    path = out_dir / "B_trace.json"
    run_scenario("B", trace=TraceRequest(format="perfetto", path=str(path)))
    document = json.loads(path.read_text())
    print(
        f"\nPerfetto trace: {len(document['traceEvents'])} trace events "
        f"at {path} (drag into https://ui.perfetto.dev)"
    )


def main() -> None:
    with TemporaryDirectory(prefix="repro-obs-") as tmp:
        out_dir = Path(tmp)
        path = trace_a_scenario(out_dir)
        mine_the_events(path)
        run_a_spec_traced_platform(out_dir)
        export_perfetto(out_dir)


if __name__ == "__main__":
    main()
