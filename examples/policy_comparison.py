#!/usr/bin/env python3
"""Compare DPM policies and idle-time predictors on the same workload.

The paper's LEM combines two mechanisms: the Table-1 rules choose *how fast*
to run each task (variable voltage), and the break-even analysis chooses
*how deep* to sleep when idle.  This example isolates their contributions by
comparing, on identical scenarios:

* ``always-on``     — the reference (no DPM at all),
* ``fixed-timeout`` — classic timeout shutdown,
* ``greedy-sleep``  — break-even shutdown with an EWMA prediction,
* ``oracle``        — break-even shutdown with perfect idle knowledge,
* ``paper``         — the full rule-based architecture,

and then the four idle-time predictors under the paper's policy.

Run with::

    python examples/policy_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.dpm import DpmSetup
from repro.experiments import policy_ablation, predictor_ablation, single_ip_scenario
from repro.sim import ms


def print_results(title: str, results: dict) -> None:
    rows = [
        [
            name,
            f"{metrics.energy_saving_pct:.1f}",
            f"{metrics.temperature_reduction_pct:.1f}",
            f"{metrics.average_delay_overhead_pct:.1f}",
        ]
        for name, metrics in results.items()
    ]
    print(
        format_table(
            ["configuration", "energy saving (%)", "temp. reduction (%)", "delay overhead (%)"],
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    print("Policy ablation under A1 conditions (battery Full, temperature Low)\n")
    scenario = single_ip_scenario("ablation-full", "full", "low", task_count=24)
    setups = [
        DpmSetup.always_on(),
        DpmSetup.fixed_timeout(ms(2)),
        DpmSetup.greedy_sleep(),
        DpmSetup.oracle(),
        DpmSetup.paper(),
    ]
    print_results("Policies, battery Full", policy_ablation(scenario, setups))

    print("Policy ablation under A2 conditions (battery Low, temperature Low)\n")
    scenario_low = single_ip_scenario("ablation-low", "low", "low", task_count=24)
    print_results("Policies, battery Low", policy_ablation(scenario_low, setups))

    print("Idle-time predictor ablation (paper policy, battery Full)\n")
    print_results("Predictors", predictor_ablation())

    print(
        "Reading the tables: the shutdown-only policies (greedy/oracle/timeout)\n"
        "save energy at almost no delay cost, but only the paper's rule-based\n"
        "policy can exploit a low battery by slowing execution down — that is\n"
        "exactly the A1 vs A2 trade-off of Table 2 in the paper."
    )


if __name__ == "__main__":
    main()
