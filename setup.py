"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that editable installs keep working on environments whose packaging stack
predates PEP 660 editable wheels (e.g. no ``wheel`` package available).
"""

from setuptools import setup

setup()
