"""Package metadata for the DATE'05 DPM reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so editable
installs work on environments whose packaging stack predates PEP 660
editable wheels (e.g. no ``wheel`` package available).
"""

import os
import re

from setuptools import find_packages, setup


_HERE = os.path.dirname(os.path.abspath(__file__))


def _version() -> str:
    init = os.path.join(_HERE, "src", "repro", "__init__.py")
    with open(init, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if not match:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


def _readme() -> str:
    with open(os.path.join(_HERE, "README.md"), encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro-dpm",
    version=_version(),
    description=(
        "Reproduction of 'SystemC Analysis of a New Dynamic Power Management "
        "Architecture' (DATE 2005) with a parallel experiment-campaign layer"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-dpm = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Operating System :: OS Independent",
        "Topic :: Scientific/Engineering",
    ],
)
