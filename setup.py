"""Package metadata for the DATE'05 DPM reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so editable
installs work on environments whose packaging stack predates PEP 660
editable wheels (e.g. no ``wheel`` package available).
"""

import os
import re

from setuptools import Extension, find_packages, setup


_HERE = os.path.dirname(os.path.abspath(__file__))


def _version() -> str:
    init = os.path.join(_HERE, "src", "repro", "__init__.py")
    with open(init, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if not match:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


def _readme() -> str:
    with open(os.path.join(_HERE, "README.md"), encoding="utf-8") as handle:
        return handle.read()


# The accelerated kernel core (see src/repro/sim/native.py).  optional=True
# makes a failed compile (no C toolchain) a warning instead of an install
# error: the package then runs on the pure-Python queue and
# repro.sim.native reports why.  Force a build with the [native] extra or
# `python setup.py build_ext --inplace`.
_NATIVE_CORE = Extension(
    "repro.sim._nativecore",
    sources=["src/repro/sim/_nativecore.c"],
    optional=True,
)

setup(
    name="repro-dpm",
    version=_version(),
    description=(
        "Reproduction of 'SystemC Analysis of a New Dynamic Power Management "
        "Architecture' (DATE 2005) with a parallel experiment-campaign layer"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[_NATIVE_CORE],
    extras_require={
        # No extra dependencies — the extra exists so `pip install .[native]`
        # documents intent; the extension itself builds (or is skipped) with
        # the base install because it is marked optional.
        "native": [],
    },
    entry_points={
        "console_scripts": [
            "repro-dpm = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Operating System :: OS Independent",
        "Topic :: Scientific/Engineering",
    ],
)
