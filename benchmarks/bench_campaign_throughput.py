"""Campaign executor throughput: worker-pool fan-out vs. the serial runner.

Parameter-grid campaigns are embarrassingly parallel — every job is an
independent simulation — so the pool should scale close to linearly until
the grid is exhausted or the cores are.  These benchmarks run the same
12-job grid serially (``workers=1``) and through the multiprocessing pool,
attach the measured speedup to ``extra_info``, and assert that parallel
execution actually helps (with generous slack: pool startup costs real time
on a grid this small).
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile

import pytest

from repro.campaign import CampaignSpec, run_campaign

_WORKERS = min(4, multiprocessing.cpu_count())


def _grid() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-grid",
            "scenarios": [
                {"kind": "single_ip", "name": "busy", "battery": "low",
                 "temperature": "low", "task_count": 30},
                {"kind": "single_ip", "name": "hot", "battery": "low",
                 "temperature": "high", "task_count": 30},
            ],
            "setups": ["paper", "greedy-sleep"],
            "seeds": [1, 2, 3],
        }
    )


@pytest.fixture
def campaign_dir():
    path = tempfile.mkdtemp(prefix="bench-campaign-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _run(workers: int, directory: str):
    summary = run_campaign(_grid(), directory, workers=workers)
    assert summary.ok == summary.total_jobs == 12
    return summary


@pytest.mark.benchmark(group="campaign-throughput")
def test_campaign_serial(benchmark, campaign_dir):
    """Baseline: the 12-job grid through the in-process executor."""
    summary = benchmark.pedantic(lambda: _run(1, campaign_dir), rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = summary.total_jobs
    benchmark.extra_info["jobs_per_second"] = round(
        summary.total_jobs / summary.wall_clock_s, 2
    )
    print(f"\n[campaign serial] 12 jobs in {summary.wall_clock_s:.2f} s")


@pytest.mark.benchmark(group="campaign-throughput")
def test_campaign_parallel(benchmark, campaign_dir):
    """The same grid over the worker pool; reports the speedup."""
    serial_dir = tempfile.mkdtemp(prefix="bench-campaign-serial-")
    try:
        serial = _run(1, serial_dir)
    finally:
        shutil.rmtree(serial_dir, ignore_errors=True)

    summary = benchmark.pedantic(
        lambda: _run(_WORKERS, campaign_dir), rounds=1, iterations=1
    )
    speedup = serial.wall_clock_s / summary.wall_clock_s
    benchmark.extra_info["workers"] = _WORKERS
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    print(
        f"\n[campaign parallel] 12 jobs, {_WORKERS} workers in "
        f"{summary.wall_clock_s:.2f} s (speedup x{speedup:.1f} vs serial)"
    )
    if _WORKERS > 1:
        # Near-linear is the goal; pool startup eats part of it on a small
        # grid, so only assert that parallelism is a clear net win.
        assert speedup > 1.2


@pytest.mark.benchmark(group="campaign-throughput")
def test_campaign_resume_is_free(benchmark, campaign_dir):
    """--resume on a complete store executes nothing and costs ~no time."""
    _run(1, campaign_dir)

    def resume():
        summary = run_campaign(_grid(), campaign_dir, workers=1, resume=True)
        assert summary.executed == 0
        assert summary.skipped == 12
        return summary

    benchmark(resume)
