"""Reproduction of Table 2, rows A1-A4 (single IP, LEM and PSM, no GEM).

Each benchmark runs the scenario twice (paper DPM and always-on baseline) and
reports energy saving, temperature reduction and average delay overhead.  The
asserted bounds encode the *shape* of the paper's results, not the exact
percentages (our substrate is an abstract simulator, not the authors'
SystemC models).
"""

from __future__ import annotations

import pytest

from conftest import attach_row
from repro.experiments import run_comparison, scenario_by_name


def run_row(name):
    return run_comparison(scenario_by_name(name))


@pytest.mark.benchmark(group="table2-single-ip")
def test_table2_row_a1(benchmark, report_row):
    """A1: battery Full, temperature Low (paper: 39 % / 31 % / 30 %)."""
    metrics = benchmark.pedantic(run_row, args=("A1",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert 25.0 < metrics.energy_saving_pct < 60.0
    assert metrics.average_delay_overhead_pct < 80.0
    assert metrics.temperature_reduction_pct > 10.0


@pytest.mark.benchmark(group="table2-single-ip")
def test_table2_row_a2(benchmark, report_row):
    """A2: battery Low, temperature Low (paper: 55 % / 21 % / 339 %)."""
    metrics = benchmark.pedantic(run_row, args=("A2",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert metrics.energy_saving_pct > 45.0
    assert 250.0 < metrics.average_delay_overhead_pct < 450.0


@pytest.mark.benchmark(group="table2-single-ip")
def test_table2_row_a3(benchmark, report_row):
    """A3: battery Full, temperature High (paper: 39 % / 18 % / 37 %)."""
    metrics = benchmark.pedantic(run_row, args=("A3",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert 25.0 < metrics.energy_saving_pct < 60.0
    assert metrics.average_delay_overhead_pct < 120.0


@pytest.mark.benchmark(group="table2-single-ip")
def test_table2_row_a4(benchmark, report_row):
    """A4: battery Low, temperature High (paper: 55 % / 18 % / 339 %)."""
    metrics = benchmark.pedantic(run_row, args=("A4",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert metrics.energy_saving_pct > 45.0
    assert 250.0 < metrics.average_delay_overhead_pct < 450.0


@pytest.mark.benchmark(group="table2-single-ip")
def test_table2_low_battery_tradeoff(benchmark, report_row):
    """The headline trade-off of rows A1 vs A2: more saving, much more delay."""

    def both_rows():
        return run_row("A1"), run_row("A2")

    a1, a2 = benchmark.pedantic(both_rows, rounds=1, iterations=1)
    report_row(a1)
    report_row(a2)
    assert a2.energy_saving_pct > a1.energy_saving_pct + 10.0
    assert a2.average_delay_overhead_pct > 5.0 * a1.average_delay_overhead_pct
