"""Ablation: idle-time predictors under the paper's rule-based policy.

The paper only states that the LEM "makes a prediction of the idle time".
This benchmark quantifies how much the choice of predictor matters on a
bursty workload (short intra-burst gaps, long inter-burst pauses), where a
bad prediction either misses deep-sleep opportunities or pays wake-up
latencies it should not.
"""

from __future__ import annotations

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_comparison
from repro.experiments.scenarios import Scenario, battery_condition, thermal_condition
from repro.sim import sec
from repro.soc import IpSpec, SocConfig, bursty_workload

PREDICTOR_KINDS = ("fixed", "last-value", "ewma", "adaptive")


def bursty_scenario() -> Scenario:
    def specs():
        return [IpSpec(name="ip1", workload=bursty_workload(burst_count=6, tasks_per_burst=6))]

    def config():
        return SocConfig(
            name="soc_bursty",
            battery=battery_condition("full"),
            thermal=thermal_condition("low"),
        )

    return Scenario(
        name="bursty",
        description="bursty traffic for predictor ablation",
        ip_specs_factory=specs,
        soc_config_factory=config,
        max_time=sec(5),
    )


def run_ablation():
    scenario = bursty_scenario()
    results = {}
    for kind in PREDICTOR_KINDS:
        results[kind] = run_comparison(scenario, dpm=DpmSetup.with_predictor(kind))
    results["oracle"] = run_comparison(scenario, dpm=DpmSetup.oracle())
    return results


@pytest.mark.benchmark(group="ablation-predictors")
def test_predictor_ablation_bursty_traffic(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    for name, metrics in results.items():
        print(
            f"\n[predictor {name}] saving {metrics.energy_saving_pct:.0f}%, "
            f"delay {metrics.average_delay_overhead_pct:.0f}%"
        )
        benchmark.extra_info[f"{name}_saving_pct"] = round(metrics.energy_saving_pct, 1)
    # No predictor may make things worse than the always-on reference...
    for name, metrics in results.items():
        assert metrics.energy_saving_pct > 0.0, name
    # ...the oracle's perfect idle knowledge is the upper bound on saving...
    oracle_saving = results["oracle"].energy_saving_pct
    for name in PREDICTOR_KINDS:
        assert results[name].energy_saving_pct <= oracle_saving + 3.0, name
    # ...and the smoothing EWMA beats the naive last-value predictor on a
    # bursty pattern, where "next idle == previous idle" is exactly wrong.
    assert results["ewma"].energy_saving_pct > results["last-value"].energy_saving_pct
