"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a Table-2 row, the
Table-1 rule check, the simulation-speed figure) or one of the repo's own
ablations.  The measured metrics are attached to ``benchmark.extra_info`` so
they appear in ``pytest-benchmark``'s JSON output, and printed so that a
plain ``pytest benchmarks/ --benchmark-only -s`` run shows the reproduced
rows next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import PAPER_TABLE2


def attach_row(benchmark, metrics) -> None:
    """Store a ScenarioMetrics row in the benchmark's extra info."""
    benchmark.extra_info.update(
        {
            "scenario": metrics.scenario,
            "energy_saving_pct": round(metrics.energy_saving_pct, 1),
            "temperature_reduction_pct": round(metrics.temperature_reduction_pct, 1),
            "average_delay_overhead_pct": round(metrics.average_delay_overhead_pct, 1),
        }
    )
    paper = PAPER_TABLE2.get(metrics.scenario)
    if paper:
        benchmark.extra_info["paper_energy_saving_pct"] = paper["energy_saving_pct"]
        benchmark.extra_info["paper_delay_overhead_pct"] = paper["average_delay_overhead_pct"]


@pytest.fixture
def report_row():
    """Callable fixture printing one reproduced row next to the paper's."""

    def _report(metrics) -> None:
        paper = PAPER_TABLE2.get(metrics.scenario)
        paper_text = (
            f"paper: saving {paper['energy_saving_pct']:.0f}%, "
            f"temp {paper['temperature_reduction_pct']:.0f}%, "
            f"delay {paper['average_delay_overhead_pct']:.0f}%"
            if paper
            else "paper: n/a"
        )
        print(
            f"\n[{metrics.scenario}] saving {metrics.energy_saving_pct:.0f}%, "
            f"temp {metrics.temperature_reduction_pct:.0f}%, "
            f"delay {metrics.average_delay_overhead_pct:.0f}%   ({paper_text})"
        )

    return _report
