"""Reproduction of Table 2, rows B and C (GEM + four IPs).

Scenario B: IP1/IP2 (highest static priorities) have high activity, IP3/IP4
low activity; scenario C swaps the activity.  Both run with battery Low and
temperature Low, so the GEM is in its "enable IPs with high priority" branch
for the whole run.
"""

from __future__ import annotations

import pytest

from conftest import attach_row
from repro.experiments import run_comparison, scenario_by_name


def run_row(name):
    return run_comparison(scenario_by_name(name))


@pytest.mark.benchmark(group="table2-multi-ip")
def test_table2_row_b(benchmark, report_row):
    """B: GEM + 4 IPs, busy high-priority IPs (paper: 65 % / 19 % / 242 %)."""
    metrics = benchmark.pedantic(run_row, args=("B",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert metrics.energy_saving_pct > 50.0
    assert 150.0 < metrics.average_delay_overhead_pct < 600.0
    assert len(metrics.per_ip) == 4
    assert all(stats["tasks"] > 0 for stats in metrics.per_ip.values())


@pytest.mark.benchmark(group="table2-multi-ip")
def test_table2_row_c(benchmark, report_row):
    """C: GEM + 4 IPs, busy low-priority IPs (paper: 64 % / 18 % / 253 %)."""
    metrics = benchmark.pedantic(run_row, args=("C",), rounds=1, iterations=1)
    attach_row(benchmark, metrics)
    report_row(metrics)
    assert metrics.energy_saving_pct > 50.0
    assert 150.0 < metrics.average_delay_overhead_pct < 600.0


@pytest.mark.benchmark(group="table2-multi-ip")
def test_table2_gem_rows_save_more_than_single_ip(benchmark, report_row):
    """B/C reach the largest savings of Table 2 (they combine GEM gating,
    low-battery DVFS and four sleeping IPs)."""

    def rows():
        return run_row("A1"), run_row("B"), run_row("C")

    a1, b, c = benchmark.pedantic(rows, rounds=1, iterations=1)
    for metrics in (b, c):
        report_row(metrics)
        assert metrics.energy_saving_pct > a1.energy_saving_pct
    assert abs(b.energy_saving_pct - c.energy_saving_pct) < 15.0
