"""Ablation: the paper's rule-based DPM against simpler policies.

DESIGN.md calls out the combination of (a) Table-1 DVFS selection and
(b) break-even-gated shutdown as the design choices worth ablating.  This
benchmark compares, on the A1 and A2 conditions:

* ``always-on``      — the reference itself (sanity row, ~0 % saving);
* ``fixed-timeout``  — classic timeout shutdown, no DVFS;
* ``greedy-sleep``   — break-even shutdown, no DVFS;
* ``oracle``         — perfect idle knowledge, no DVFS;
* ``paper``          — the full architecture.
"""

from __future__ import annotations

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_comparison, single_ip_scenario
from repro.sim import ms


def make_setups():
    return [
        DpmSetup.always_on(),
        DpmSetup.fixed_timeout(ms(2)),
        DpmSetup.greedy_sleep(),
        DpmSetup.oracle(),
        DpmSetup.paper(),
    ]


def run_ablation(battery: str):
    scenario = single_ip_scenario(f"ablation-{battery}", battery, "low", task_count=24)
    return {setup.name: run_comparison(scenario, dpm=setup) for setup in make_setups()}


@pytest.mark.benchmark(group="ablation-policies")
def test_policy_ablation_full_battery(benchmark):
    """With a full battery the shutdown half dominates the saving."""
    results = benchmark.pedantic(run_ablation, args=("full",), rounds=1, iterations=1)
    for name, metrics in results.items():
        print(
            f"\n[ablation full/{name}] saving {metrics.energy_saving_pct:.0f}%, "
            f"delay {metrics.average_delay_overhead_pct:.0f}%"
        )
        benchmark.extra_info[f"{name}_saving_pct"] = round(metrics.energy_saving_pct, 1)
    assert abs(results["always-on"].energy_saving_pct) < 2.0
    assert results["greedy-sleep"].energy_saving_pct > 10.0
    assert results["paper"].energy_saving_pct > results["always-on"].energy_saving_pct + 20.0
    # The timeout policy wastes the timeout interval at idle power, so the
    # prediction-based policies must not save less than it.
    assert results["greedy-sleep"].energy_saving_pct >= results["fixed-timeout"].energy_saving_pct - 3.0


@pytest.mark.benchmark(group="ablation-policies")
def test_policy_ablation_low_battery(benchmark):
    """With a low battery only the paper's policy can trade speed for energy."""
    results = benchmark.pedantic(run_ablation, args=("low",), rounds=1, iterations=1)
    for name, metrics in results.items():
        print(
            f"\n[ablation low/{name}] saving {metrics.energy_saving_pct:.0f}%, "
            f"delay {metrics.average_delay_overhead_pct:.0f}%"
        )
    paper = results["paper"]
    best_shutdown_only = max(
        results[name].energy_saving_pct for name in ("greedy-sleep", "oracle", "fixed-timeout")
    )
    assert paper.energy_saving_pct > best_shutdown_only + 5.0
    assert paper.average_delay_overhead_pct > results["greedy-sleep"].average_delay_overhead_pct
