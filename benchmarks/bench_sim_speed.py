"""Reproduction of the simulation-speed figure.

The paper reports "The simulation speed was 35 Kcycle/sec (sim. A) and
7.5 Kcycle/sec (B and C)" for its SystemC 2.0 models.  These benchmarks
measure the same quantity for this implementation: simulated reference-clock
cycles (at the ON1 frequency) per wall-clock second, for a single-IP scenario
and for the four-IP GEM scenario, plus a kernel-only microbenchmark that
isolates the discrete-event engine.
"""

from __future__ import annotations

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_scenario, scenario_by_name
from repro.sim import Kernel, ns, us


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip(benchmark):
    """Throughput of a full A-style scenario (paper: 35 Kcycle/s)."""

    def run():
        return run_scenario(scenario_by_name("A1"), DpmSetup.paper())

    artefacts = benchmark.pedantic(run, rounds=1, iterations=1)
    speed = artefacts.kilocycles_per_second()
    benchmark.extra_info["kilocycles_per_second"] = round(speed, 1)
    benchmark.extra_info["paper_kilocycles_per_second"] = 35.0
    print(f"\n[sim-speed A1] {speed:.0f} Kcycle/s (paper: 35 Kcycle/s on 2005 hardware)")
    assert speed > 35.0  # abstract Python model outruns the 2005 RTL-level setup


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_multi_ip(benchmark):
    """Throughput of the four-IP GEM scenario (paper: 7.5 Kcycle/s)."""

    def run():
        return run_scenario(scenario_by_name("B"), DpmSetup.paper())

    artefacts = benchmark.pedantic(run, rounds=1, iterations=1)
    speed = artefacts.kilocycles_per_second()
    benchmark.extra_info["kilocycles_per_second"] = round(speed, 1)
    benchmark.extra_info["paper_kilocycles_per_second"] = 7.5
    print(f"\n[sim-speed B] {speed:.0f} Kcycle/s (paper: 7.5 Kcycle/s on 2005 hardware)")
    assert speed > 7.5


@pytest.mark.benchmark(group="sim-speed")
def test_kernel_event_throughput(benchmark):
    """Raw kernel throughput: timed waits per second (engine microbenchmark)."""

    def run_many_timeouts():
        kernel = Kernel()
        counter = {"events": 0}

        def ticker():
            while True:
                yield ns(100)
                counter["events"] += 1

        for index in range(4):
            kernel.create_thread(ticker, f"ticker{index}")
        kernel.run(us(500))
        return counter["events"]

    events = benchmark(run_many_timeouts)
    assert events == 4 * 5000
    benchmark.extra_info["timed_events"] = events
