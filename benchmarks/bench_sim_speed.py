"""Reproduction of the simulation-speed figure.

The paper reports "The simulation speed was 35 Kcycle/sec (sim. A) and
7.5 Kcycle/sec (B and C)" for its SystemC 2.0 models.  These benchmarks
measure the same quantity for this implementation: simulated reference-clock
cycles (at the ON1 frequency) per wall-clock second, for a single-IP scenario
and for the four-IP GEM scenario, plus a kernel-only microbenchmark that
isolates the discrete-event engine.
"""

from __future__ import annotations

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_scenario, scenario_by_name
from repro.platform import PlatformBuilder
from repro.sim import Kernel, ns, us
from repro.sim.native import available as _native_available
from repro.sim.native import unavailable_reason as _native_unavailable_reason

#: Backends already exercised once in this process (see :func:`_warm_backend`).
_WARMED = set()


def _warm_backend(backend: str) -> None:
    """One throwaway run per backend per process, shared by every variant.

    The first native-backend run pays the extension-module import; the first
    run of either backend pays scenario-table and bytecode warm-up.  Routing
    all variants through this single warm-up path keeps those one-time costs
    out of every timed region, so python and native series are comparable.
    """
    if backend in _WARMED:
        return
    _WARMED.add(backend)
    run_scenario(scenario_by_name("A1"), DpmSetup.paper(), accuracy="fast", backend=backend)


def _bench_scenario(benchmark, name: str, accuracy: str, paper_kcps: float,
                    backend: str = "python"):
    """One measured scenario run; results land in ``extra_info`` for the
    longitudinal dashboard (``benchmarks/bench_dashboard.py``)."""
    if backend == "native" and not _native_available():
        pytest.skip(f"native backend unavailable: {_native_unavailable_reason()}")
    _warm_backend(backend)

    def run():
        return run_scenario(scenario_by_name(name), DpmSetup.paper(),
                            accuracy=accuracy, backend=backend)

    artefacts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert artefacts.backend == backend
    speed = artefacts.kilocycles_per_second()
    benchmark.extra_info["kilocycles_per_second"] = round(speed, 1)
    benchmark.extra_info["paper_kilocycles_per_second"] = paper_kcps
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["accuracy"] = accuracy
    benchmark.extra_info["backend"] = backend
    print(
        f"\n[sim-speed {name}/{accuracy}/{backend}] {speed:.0f} Kcycle/s "
        f"(paper: {paper_kcps:g} Kcycle/s on 2005 hardware)"
    )
    assert speed > paper_kcps  # abstract Python model outruns the 2005 RTL setup


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip(benchmark):
    """Throughput of a full A-style scenario (paper: 35 Kcycle/s)."""
    _bench_scenario(benchmark, "A1", "exact", 35.0)


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_multi_ip(benchmark):
    """Throughput of the four-IP GEM scenario (paper: 7.5 Kcycle/s)."""
    _bench_scenario(benchmark, "B", "exact", 7.5)


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip_fast(benchmark):
    """A1 under the toleranced fast accuracy mode."""
    _bench_scenario(benchmark, "A1", "fast", 35.0)


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_multi_ip_fast(benchmark):
    """B under the toleranced fast accuracy mode."""
    _bench_scenario(benchmark, "B", "fast", 7.5)


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip_native(benchmark):
    """A1 exact on the compiled event-heap backend (skips without it)."""
    _bench_scenario(benchmark, "A1", "exact", 35.0, backend="native")


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_multi_ip_native(benchmark):
    """B exact on the compiled event-heap backend (skips without it)."""
    _bench_scenario(benchmark, "B", "exact", 7.5, backend="native")


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip_fast_native(benchmark):
    """A1 fast mode on the compiled backend: both optimisation axes at once."""
    _bench_scenario(benchmark, "A1", "fast", 35.0, backend="native")


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_single_ip_traced(benchmark, tmp_path):
    """A1 with jsonl event tracing enabled.

    Tracked against ``test_simulation_speed_single_ip`` in the dashboard:
    the gap between the two is the live cost of the instrumentation hooks
    (which must stay small — the disabled-hook cost is bounded separately
    by the goldens staying bit-identical).
    """
    from repro.obs import TraceRequest

    request = TraceRequest(format="jsonl", path=str(tmp_path / "a1.jsonl"))

    def run():
        return run_scenario(
            scenario_by_name("A1"), DpmSetup.paper(), accuracy="exact",
            trace=request,
        )

    artefacts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert artefacts.trace_path is not None
    speed = artefacts.kilocycles_per_second()
    benchmark.extra_info["kilocycles_per_second"] = round(speed, 1)
    benchmark.extra_info["paper_kilocycles_per_second"] = 35.0
    benchmark.extra_info["scenario"] = "A1-traced"
    benchmark.extra_info["accuracy"] = "exact"
    print(f"\n[sim-speed A1/traced] {speed:.0f} Kcycle/s")
    assert speed > 35.0


def _bus_contention_platform(timing: str):
    """Four IPs hammering one shared bus: the materialised-clock stress case.

    The same platform runs in both timing modes, so the dashboard tracks the
    cost of posedge arbitration (a real consumer of ``Clock.out``) against
    the clock-free event-driven bus.
    """
    builder = (
        PlatformBuilder(f"bench-bus-{timing}")
        .describe("bus-contention benchmark platform")
        .bus(words_per_second=10e6, arbitration="priority", timing=timing,
             words_per_cycle=4)
        .max_time_ms(2000)
    )
    for index in range(4):
        builder.ip(
            f"ip{index}",
            workload={"kind": "periodic", "task_count": 40, "cycles": 50_000,
                      "idle_us": 200.0},
            priority=index + 1,
            bus_words_per_task=512,
        )
    return builder.build()


def _bench_bus(benchmark, timing: str):
    def run():
        return run_scenario(_bus_contention_platform(timing), DpmSetup.paper())

    artefacts = benchmark.pedantic(run, rounds=1, iterations=1)
    bus = artefacts.soc.bus
    assert bus is not None and bus.stats.transfer_count == 4 * 40
    speed = artefacts.kilocycles_per_second()
    benchmark.extra_info["kilocycles_per_second"] = round(speed, 1)
    benchmark.extra_info["scenario"] = f"BUS-{'CA' if timing == 'cycle_accurate' else 'ED'}"
    benchmark.extra_info["accuracy"] = "exact"
    benchmark.extra_info["bus_timing"] = timing
    benchmark.extra_info["bus_occupancy_pct"] = round(100.0 * bus.occupancy(), 1)
    print(
        f"\n[sim-speed bus/{timing}] {speed:.0f} Kcycle/s "
        f"(occupancy {100.0 * bus.occupancy():.0f}%, "
        f"{bus.stats.transfer_count} transfers)"
    )
    assert speed > 0.0


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_bus_event_driven(benchmark):
    """Bus contention with the clock-free event-driven arbiter."""
    _bench_bus(benchmark, "event_driven")


@pytest.mark.benchmark(group="sim-speed")
def test_simulation_speed_bus_cycle_accurate(benchmark):
    """Bus contention with posedge arbitration on a materialised clock."""
    _bench_bus(benchmark, "cycle_accurate")


@pytest.mark.benchmark(group="sim-speed")
def test_kernel_event_throughput(benchmark):
    """Raw kernel throughput: timed waits per second (engine microbenchmark)."""

    def run_many_timeouts():
        kernel = Kernel()
        counter = {"events": 0}

        def ticker():
            while True:
                yield ns(100)
                counter["events"] += 1

        for index in range(4):
            kernel.create_thread(ticker, f"ticker{index}")
        kernel.run(us(500))
        return counter["events"]

    events = benchmark(run_many_timeouts)
    assert events == 4 * 5000
    benchmark.extra_info["timed_events"] = events
