"""Longitudinal simulation-speed dashboard.

Folds the per-commit ``BENCH_sim_speed.json`` artifacts produced by the CI
``bench-smoke`` job into a running ``BENCH_history.json`` plus a markdown
table (Kcycle/s per commit, exact vs fast accuracy mode), and gates merges:
the job fails when an ``exact``-mode benchmark regresses by more than the
threshold against the previous recorded run.

Usage (what the ``bench-dashboard`` CI job runs)::

    python benchmarks/bench_dashboard.py \
        --current BENCH_sim_speed.json \
        --history BENCH_history.json \
        --markdown BENCH_dashboard.md \
        --commit "$GITHUB_SHA" \
        --fail-threshold 0.20

The module is import-safe (no pytest dependency) so the aggregation logic is
unit-testable; only ``main`` touches the filesystem.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "extract_results",
    "append_entry",
    "find_regressions",
    "render_markdown",
    "main",
]

#: keep at most this many history entries (one per commit)
MAX_ENTRIES = 200


def extract_results(bench_json: dict) -> Dict[str, float]:
    """Pull ``{benchmark-label: Kcycle/s}`` out of a pytest-benchmark report.

    The label is ``<scenario>/<accuracy>`` when the benchmark recorded that
    metadata (see ``bench_sim_speed.py``); other benchmarks fall back to
    their test name and whatever throughput figure they exposed.  Runs on a
    non-default simulation backend get a ``/<backend>`` suffix (e.g.
    ``A1/exact/native``) so they are tracked as their own series — and,
    because the gated suffix stays ``/exact``, a CI runner without a C
    compiler (where the native benchmarks skip and the series goes missing)
    is never mistaken for a regression.
    """
    results: Dict[str, float] = {}
    for bench in bench_json.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        speed = extra.get("kilocycles_per_second")
        if speed is None:
            continue
        scenario = extra.get("scenario")
        accuracy = extra.get("accuracy", "exact")
        backend = extra.get("backend", "python")
        if scenario:
            label = f"{scenario}/{accuracy}"
            if backend != "python":
                label = f"{label}/{backend}"
        else:
            label = bench.get("name", "unknown")
        results[label] = float(speed)
    return results


def append_entry(
    history: dict,
    commit: str,
    results: Dict[str, float],
    timestamp: Optional[float] = None,
) -> dict:
    """Append (or replace) the entry of ``commit`` in the history document."""
    if not isinstance(history, dict) or "entries" not in history:
        history = {"entries": []}
    entries: List[dict] = [
        entry for entry in history["entries"] if entry.get("commit") != commit
    ]
    entries.append(
        {
            "commit": commit,
            "timestamp": timestamp if timestamp is not None else time.time(),
            "results": dict(results),
        }
    )
    history["entries"] = entries[-MAX_ENTRIES:]
    return history


def find_regressions(
    history: dict,
    threshold: float,
    gated_suffix: str = "/exact",
    reference_window: int = 3,
) -> List[Tuple[str, float, float, float]]:
    """Compare the newest entry against recent history.

    Returns ``(label, reference, current, drop_fraction)`` for every gated
    benchmark (``exact`` accuracy mode by default) whose throughput dropped
    by more than ``threshold`` against the *median of the last
    ``reference_window`` prior entries* — single-round wall-clock figures on
    shared CI runners are noisy, and the median damps one slow previous run
    from poisoning the reference (and one slow current run still has to
    undercut the median of three to fail).  Fast-mode figures are tracked
    but not gated: they share the exact-mode simulation and their extra
    variance would make the gate flaky.
    """
    entries = history.get("entries", [])
    if len(entries) < 2:
        return []
    current = entries[-1]["results"]
    window = entries[-1 - reference_window : -1] or entries[-2:-1]
    labels = {
        label
        for entry in window
        for label in entry["results"]
        if label.endswith(gated_suffix)
    }
    regressions = []
    for label in sorted(labels):
        speeds = [
            entry["results"][label] for entry in window if label in entry["results"]
        ]
        if not speeds:
            continue
        speeds.sort()
        reference = speeds[len(speeds) // 2]
        cur_speed = current.get(label)
        if cur_speed is None or reference <= 0.0:
            continue
        drop = (reference - cur_speed) / reference
        if drop > threshold:
            regressions.append((label, reference, cur_speed, drop))
    return regressions


def render_markdown(history: dict, max_rows: int = 25) -> str:
    """Markdown table: one row per commit, one column per benchmark."""
    entries = history.get("entries", [])[-max_rows:]
    labels = sorted({label for entry in entries for label in entry["results"]})
    lines = [
        "# Simulation-speed dashboard",
        "",
        "Kcycle/s per commit (`exact` is the gated reference mode; `fast` is",
        "the opt-in toleranced accuracy mode — see README \"Accuracy modes\").",
        "",
        "| commit | " + " | ".join(labels) + " |",
        "|---" * (len(labels) + 1) + "|",
    ]
    for entry in entries:
        cells = []
        for label in labels:
            speed = entry["results"].get(label)
            cells.append("-" if speed is None else f"{speed:,.0f}")
        lines.append(f"| `{entry['commit'][:10]}` | " + " | ".join(cells) + " |")
    if len(entries) >= 2:
        lines.append("")
        first, last = entries[0], entries[-1]
        for label in labels:
            a, b = first["results"].get(label), last["results"].get(label)
            if a and b:
                lines.append(
                    f"- `{label}`: {a:,.0f} → {b:,.0f} Kcycle/s "
                    f"({b / a:.2f}x over {len(entries)} commits)"
                )
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, help="BENCH_sim_speed.json of this run")
    parser.add_argument("--history", required=True, help="history file (created if missing)")
    parser.add_argument("--markdown", default=None, help="markdown dashboard output file")
    parser.add_argument("--commit", required=True, help="commit SHA of this run")
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.20,
        help="fail on an exact-mode drop larger than this fraction (default 0.20)",
    )
    args = parser.parse_args(argv)

    with open(args.current, "r", encoding="utf-8") as handle:
        results = extract_results(json.load(handle))
    if not results:
        print("error: no benchmark results with kilocycles_per_second found", file=sys.stderr)
        return 2

    # The history file may be missing (first run ever), zero bytes (an
    # actions/cache restore of a failed previous run) or corrupt; all three
    # mean the same thing — start a fresh history, loudly, not with a crash.
    try:
        with open(args.history, "r", encoding="utf-8") as handle:
            text = handle.read()
        history = json.loads(text) if text.strip() else {"entries": []}
        if not text.strip():
            print(f"note: {args.history} is empty; starting a new history")
    except FileNotFoundError:
        history = {"entries": []}
        print(f"note: no history at {args.history}; starting a new history")
    except (OSError, json.JSONDecodeError) as error:
        history = {"entries": []}
        print(f"note: could not read {args.history} ({error}); starting a new history")

    history = append_entry(history, args.commit, results)
    with open(args.history, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")

    markdown = render_markdown(history)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
    # Surface the dashboard on the workflow-run summary page, where a
    # reviewer actually looks — the artifact is the archive, this is the view.
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(markdown)
            handle.write("\n")
    print(markdown)

    if len(history["entries"]) < 2:
        print(
            "first recorded run: no baseline yet, regression gate skipped "
            "(the gate engages once a second commit lands in the history)"
        )
        return 0

    regressions = find_regressions(history, args.fail_threshold)
    for label, prev, cur, drop in regressions:
        print(
            f"REGRESSION {label}: {prev:,.0f} -> {cur:,.0f} Kcycle/s "
            f"(-{drop:.0%}, threshold {args.fail_threshold:.0%})",
            file=sys.stderr,
        )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
