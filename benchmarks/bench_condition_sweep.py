"""Extension experiment: the full battery x temperature condition grid.

Generalises rows A1-A4 of Table 2 to every battery condition the coding of
section 1.3 distinguishes, verifying the monotone trend the rule table is
designed for: the emptier the battery, the more energy the DPM saves and the
more latency it is willing to pay.
"""

from __future__ import annotations

import pytest

from repro.experiments import condition_sweep


@pytest.mark.benchmark(group="condition-sweep")
def test_battery_temperature_sweep(benchmark):
    results = benchmark.pedantic(
        condition_sweep,
        kwargs={
            "battery_levels": ("full", "medium", "low"),
            "temperature_levels": ("low",),
            "task_count": 20,
        },
        rounds=1,
        iterations=1,
    )
    by_name = {metrics.scenario: metrics for metrics in results}
    for name, metrics in by_name.items():
        print(
            f"\n[sweep {name}] saving {metrics.energy_saving_pct:.0f}%, "
            f"delay {metrics.average_delay_overhead_pct:.0f}%"
        )
        benchmark.extra_info[f"{name}_saving_pct"] = round(metrics.energy_saving_pct, 1)
    # Monotone trend across battery levels at low temperature.
    full = by_name["full/low"]
    medium = by_name["medium/low"]
    low = by_name["low/low"]
    assert full.energy_saving_pct <= medium.energy_saving_pct + 5.0
    assert medium.energy_saving_pct <= low.energy_saving_pct + 5.0
    assert full.average_delay_overhead_pct < low.average_delay_overhead_pct
