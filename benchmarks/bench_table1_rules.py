"""Benchmark / reproduction of Table 1: the power-state selection algorithm.

The correctness of every row is asserted (the same checks as the unit tests,
but in the form the paper prints them), and the rule engine's evaluation
throughput is measured, since the LEM evaluates the table once per task
request plus once per deferral re-evaluation.
"""

from __future__ import annotations

import pytest

from repro.dpm import BatteryLevel, RuleContext, TaskPriority, TemperatureLevel, paper_rule_table
from repro.power import PowerState

P = TaskPriority
B = BatteryLevel
T = TemperatureLevel
S = PowerState

#: (priority, battery, temperature) -> selected state, one entry per Table-1 row.
TABLE1_SPOT_CHECKS = [
    ((P.VERY_HIGH, B.EMPTY, T.LOW), S.ON4),       # row 1
    ((P.VERY_HIGH, B.FULL, T.HIGH), S.ON4),       # row 2
    ((P.MEDIUM, B.EMPTY, T.LOW), S.SL1),          # row 3
    ((P.LOW, B.MEDIUM, T.HIGH), S.SL1),           # row 4
    ((P.HIGH, B.LOW, T.LOW), S.ON4),              # row 5
    ((P.VERY_HIGH, B.MEDIUM, T.LOW), S.ON1),      # row 7
    ((P.HIGH, B.MEDIUM, T.LOW), S.ON2),           # row 8
    ((P.MEDIUM, B.HIGH, T.LOW), S.ON3),           # row 9
    ((P.LOW, B.MEDIUM, T.LOW), S.ON4),            # row 10
    ((P.HIGH, B.FULL, T.LOW), S.ON1),             # row 11
    ((P.LOW, B.FULL, T.LOW), S.ON2),              # row 12
    ((P.MEDIUM, B.AC_POWER, T.LOW), S.ON1),       # row 13
]


def all_contexts():
    return [
        RuleContext(priority, battery, temperature)
        for priority in TaskPriority
        for battery in BatteryLevel
        for temperature in TemperatureLevel
    ]


@pytest.mark.benchmark(group="table1")
def test_table1_selection_throughput(benchmark):
    """Evaluate the full input cross product through the paper's table."""
    table = paper_rule_table()
    contexts = all_contexts()

    def evaluate_all():
        return [table.select(context) for context in contexts]

    states = benchmark(evaluate_all)
    assert len(states) == len(contexts)
    # Reproduce the printed rows.
    for (priority, battery, temperature), expected in TABLE1_SPOT_CHECKS:
        assert table.select_levels(priority, battery, temperature) is expected
    benchmark.extra_info["contexts_evaluated"] = len(contexts)
    benchmark.extra_info["rows_checked"] = len(TABLE1_SPOT_CHECKS)


@pytest.mark.benchmark(group="table1")
def test_table1_totality_check(benchmark):
    """Coverage analysis of the table (used when users retarget the rules)."""
    table = paper_rule_table()
    missing = benchmark(table.uncovered_contexts)
    assert missing == []
