"""Unit tests for the repro.obs event registry, tracer and trace requests."""

import pytest

from repro.obs import (
    EVENT_CATEGORIES,
    EVENT_TYPES,
    ObsError,
    TraceRequest,
    Tracer,
    expand_event_filter,
    validate_event,
)


class TestEventRegistry:
    def test_categories_are_kind_prefixes(self):
        assert list(EVENT_CATEGORIES) == sorted(
            {kind.split(".", 1)[0] for kind in EVENT_TYPES}
        )

    def test_every_kind_has_description_and_category(self):
        for kind, event_type in EVENT_TYPES.items():
            assert event_type.kind == kind
            assert event_type.description
            assert event_type.category == kind.split(".", 1)[0]

    def test_expand_filter_none_means_everything(self):
        assert expand_event_filter(None) is None
        assert expand_event_filter([]) is None

    def test_expand_filter_mixes_kinds_and_categories(self):
        expanded = expand_event_filter(["bus", "task.start"])
        assert "bus.grant" in expanded
        assert "bus.request" in expanded
        assert "task.start" in expanded
        assert "task.complete" not in expanded

    def test_expand_filter_rejects_unknown_names(self):
        with pytest.raises(ObsError):
            expand_event_filter(["no.such.event"])


class TestValidateEvent:
    def test_valid_event_passes(self):
        validate_event({
            "t_fs": 1000, "kind": "psm.transition", "source": "cpu",
            "from_state": "ON1", "to_state": "SL2",
            "latency_us": 60.0, "energy_j": 1e-6,
        })

    def test_missing_required_field_fails(self):
        with pytest.raises(ObsError, match="missing required field"):
            validate_event({
                "t_fs": 0, "kind": "task.start", "source": "cpu",
                "task": "t0", "wait_us": 0.0, "duration_us": 1.0,
            })

    def test_unknown_kind_fails(self):
        with pytest.raises(ObsError, match="unknown event kind"):
            validate_event({"t_fs": 0, "kind": "nope.nope", "source": "x"})

    def test_undocumented_field_fails(self):
        with pytest.raises(ObsError, match="undocumented"):
            validate_event({
                "t_fs": 0, "kind": "psm.state", "source": "cpu",
                "state": "ON1", "extra": 1,
            })

    def test_bool_is_not_an_int(self):
        with pytest.raises(ObsError):
            validate_event({
                "t_fs": 0, "kind": "task.request", "source": "cpu",
                "task": "t0", "priority": "high", "cycles": True,
            })

    def test_negative_time_fails(self):
        with pytest.raises(ObsError):
            validate_event({
                "t_fs": -1, "kind": "psm.state", "source": "cpu",
                "state": "ON1",
            })


class TestTracer:
    def test_emit_records_flat_envelope(self):
        tracer = Tracer()
        tracer.emit(42, "psm.state", "cpu", state="ON1")
        assert len(tracer) == 1
        assert tracer.to_dicts() == [
            {"t_fs": 42, "kind": "psm.state", "source": "cpu", "state": "ON1"}
        ]

    def test_payload_may_shadow_envelope_parameter_names(self):
        # psm.transition's payload legally includes "source"-like names;
        # the envelope params are positional-only so this must not clash.
        tracer = Tracer()
        tracer.emit(0, "psm.transition", "cpu",
                    from_state="ON1", to_state="SL1",
                    latency_us=1.0, energy_j=0.0)
        assert tracer.events[0].source == "cpu"
        assert tracer.events[0].fields["from_state"] == "ON1"

    def test_filter_drops_unselected_kinds(self):
        tracer = Tracer(events=["bus"])
        tracer.emit(0, "bus.grant", "bus", master="a", words=1, wait_us=0.0)
        tracer.emit(0, "task.start", "cpu", task="t", wait_us=0.0,
                    duration_us=1.0, energy_j=0.0)
        assert [e.kind for e in tracer.events] == ["bus.grant"]


class TestTraceRequest:
    def test_unknown_format_rejected(self):
        with pytest.raises(ObsError):
            TraceRequest(format="xml")

    def test_unknown_event_filter_rejected_eagerly(self):
        with pytest.raises(ObsError):
            TraceRequest(events=("never.heard",))

    def test_vcd_rejects_event_filters(self):
        with pytest.raises(ObsError):
            TraceRequest(format="vcd", events=("bus",))

    def test_resolve_path_defaults_per_format(self):
        assert str(TraceRequest(format="jsonl").resolve_path("A1")) == "A1_trace.jsonl"
        assert str(TraceRequest(format="perfetto").resolve_path("A1")) == "A1_trace.json"
        assert str(TraceRequest(format="vcd").resolve_path("A1")) == "A1_trace.vcd"

    def test_explicit_path_wins(self):
        request = TraceRequest(format="jsonl", path="/tmp/x.jsonl")
        assert str(request.resolve_path("A1")) == "/tmp/x.jsonl"

    def test_from_trace_def(self):
        from repro.platform import TraceDef

        assert TraceRequest.from_trace_def(None) is None
        assert TraceRequest.from_trace_def(TraceDef()) is None
        request = TraceRequest.from_trace_def(
            TraceDef(enabled=True, format="perfetto", events=["psm"])
        )
        assert request.format == "perfetto"
        assert request.events == ("psm",)
