"""CLI --trace flags, `platform diff`, and campaign per-job tracing."""

import json

from repro.campaign import CampaignSpec, run_campaign
from repro.cli import build_parser, main


class TestTraceFlagsParsing:
    def parse(self, argv):
        return build_parser().parse_args(argv)

    def test_bare_trace_means_jsonl(self):
        assert self.parse(["scenario", "A1", "--trace"]).trace == "jsonl"

    def test_trace_with_format(self):
        assert self.parse(["scenario", "A1", "--trace", "perfetto"]).trace == "perfetto"

    def test_default_is_untraced(self):
        args = self.parse(["scenario", "A1"])
        assert args.trace is None and args.trace_format is None

    def test_platform_run_takes_trace_flags(self):
        args = self.parse(["platform", "run", "--name", "A1",
                           "--trace-format", "vcd", "--trace-out", "x.vcd"])
        assert args.trace_format == "vcd"
        assert args.trace_out == "x.vcd"

    def test_campaign_run_takes_trace(self):
        args = self.parse(["campaign", "run", "spec.json", "--trace"])
        assert args.trace == "jsonl"

    def test_platform_diff_positionals(self):
        args = self.parse(["platform", "diff", "A1", "A2"])
        assert (args.spec_a, args.spec_b) == ("A1", "A2")


class TestScenarioTraceCli:
    def test_scenario_writes_trace_and_prints_path(self, tmp_path, capsys):
        out = tmp_path / "a1.jsonl"
        assert main(["scenario", "A1", "--accuracy", "fast",
                     "--trace", "--trace-out", str(out)]) == 0
        assert str(out) in capsys.readouterr().out
        assert out.is_file()
        first = json.loads(out.read_text().splitlines()[0])
        assert {"t_fs", "kind", "source"} <= set(first)

    def test_platform_run_perfetto(self, tmp_path, capsys):
        out = tmp_path / "a1.json"
        assert main(["platform", "run", "--name", "A1", "--accuracy", "fast",
                     "--trace", "perfetto", "--trace-out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]


class TestPlatformDiffCli:
    def test_identical_specs_exit_zero(self, capsys):
        assert main(["platform", "diff", "A1", "A1"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_specs_exit_one_and_report_paths(self, capsys):
        assert main(["platform", "diff", "A1", "A2"]) == 1
        out = capsys.readouterr().out
        assert "battery.condition" in out

    def test_file_vs_registered_name(self, tmp_path, capsys):
        from repro.platform import platform_by_name, save_platform

        path = tmp_path / "a1.json"
        save_platform(platform_by_name("A1"), path)
        assert main(["platform", "diff", str(path), "A1"]) == 0

    def test_unknown_name_is_a_clean_error(self, capsys):
        assert main(["platform", "diff", "A1", "no-such-platform"]) == 2
        assert "error" in capsys.readouterr().err


class TestCampaignTracing:
    def _spec(self):
        return CampaignSpec.from_dict({
            "name": "traced",
            "scenarios": [{"kind": "paper", "name": "A1"}],
            "setups": [{"name": "paper"}],
            "accuracy": "fast",
        })

    def test_per_job_traces_stored_and_linked(self, tmp_path):
        directory = tmp_path / "camp"
        summary = run_campaign(self._spec(), directory, trace_format="jsonl")
        assert summary.ok == 1
        record = summary.records[0]
        trace_path = record["trace"]
        assert trace_path.endswith(".jsonl")
        assert (directory / "traces").is_dir()
        lines = open(trace_path).read().splitlines()
        assert lines
        json.loads(lines[0])

    def test_trace_does_not_change_job_ids_or_metrics(self, tmp_path):
        plain = run_campaign(self._spec(), tmp_path / "plain")
        traced = run_campaign(self._spec(), tmp_path / "traced",
                              trace_format="perfetto")
        assert plain.records[0]["job_id"] == traced.records[0]["job_id"]
        wall_clock_keys = ("wall_clock_s", "kilocycles_per_second")
        strip = lambda metrics: {k: v for k, v in metrics.items()
                                 if k not in wall_clock_keys}
        assert strip(plain.records[0]["metrics"]) == strip(traced.records[0]["metrics"])
        assert "trace" not in plain.records[0]

    def test_vcd_rejected_for_campaigns(self, tmp_path):
        import pytest

        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            run_campaign(self._spec(), tmp_path / "camp", trace_format="vcd")
