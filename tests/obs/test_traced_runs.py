"""End-to-end tracing tests: sinks, schema conformance and bit-identity.

The central contract of ``repro.obs`` is that tracing is *observationally
free*: a jsonl/perfetto-traced run produces bit-identical metrics to an
untraced one in both accuracy modes (and, in exact mode, to the pinned
goldens), because the hooks never attach signal observers.
"""

import json
from pathlib import Path

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_comparison, scenario_by_name
from repro.experiments.runner import run_scenario
from repro.obs import TraceRequest, validate_event

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "scenario_metrics.json"

_FLOAT_FIELDS = (
    "energy_saving_pct",
    "temperature_reduction_pct",
    "average_delay_overhead_pct",
    "dpm_energy_j",
    "baseline_energy_j",
    "dpm_average_rise_c",
    "baseline_average_rise_c",
    "dpm_peak_c",
    "baseline_peak_c",
    "simulated_time_s",
)


def _metric_hexes(metrics):
    return {field: getattr(metrics, field).hex() for field in _FLOAT_FIELDS}


@pytest.mark.parametrize("scenario_name", ["A1", "B"])
@pytest.mark.parametrize("accuracy", ["exact", "fast"])
@pytest.mark.parametrize("fmt", ["jsonl", "perfetto"])
def test_traced_run_is_bit_identical_to_untraced(tmp_path, scenario_name, accuracy, fmt):
    untraced = run_comparison(
        scenario_by_name(scenario_name), DpmSetup.paper(),
        accuracy=accuracy, trace=False,
    )
    request = TraceRequest(format=fmt, path=str(tmp_path / f"t.{fmt}"))
    traced = run_comparison(
        scenario_by_name(scenario_name), DpmSetup.paper(),
        accuracy=accuracy, trace=request,
    )
    assert _metric_hexes(traced) == _metric_hexes(untraced)
    assert traced.tasks_executed == untraced.tasks_executed
    assert (tmp_path / f"t.{fmt}").is_file()


@pytest.mark.parametrize("scenario_name", ["A1", "B"])
def test_traced_exact_run_matches_golden(tmp_path, scenario_name):
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)[scenario_name]
    request = TraceRequest(format="jsonl", path=str(tmp_path / "t.jsonl"))
    metrics = run_comparison(
        scenario_by_name(scenario_name), DpmSetup.paper(), trace=request
    )
    for field in _FLOAT_FIELDS:
        assert getattr(metrics, field).hex() == golden[field], field


@pytest.mark.parametrize("accuracy", ["exact", "fast"])
def test_every_emitted_event_validates_against_the_schema(tmp_path, accuracy):
    path = tmp_path / "events.jsonl"
    run_scenario("B", accuracy=accuracy,
                 trace=TraceRequest(format="jsonl", path=str(path)))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events, "a traced run must emit events"
    for event in events:
        validate_event(event)
    kinds = {event["kind"] for event in events}
    # The core lifecycle kinds must all appear on a multi-IP run.
    for expected in ("sim.backend", "task.request", "task.start",
                     "task.complete", "psm.state", "psm.transition",
                     "lem.decision", "sample.window"):
        assert expected in kinds, expected


def test_trace_records_the_resolved_backend(tmp_path):
    """Every traced run opens with one sim.backend event naming the kernel
    backend and interpreter version actually in effect."""
    import platform

    path = tmp_path / "backend.jsonl"
    run_scenario("A1", trace=TraceRequest(format="jsonl", path=str(path)),
                 backend="python")
    events = [json.loads(line) for line in path.read_text().splitlines()]
    backend_events = [e for e in events if e["kind"] == "sim.backend"]
    assert len(backend_events) == 1
    event = backend_events[0]
    assert event["t_fs"] == 0
    assert event["backend"] == "python"
    assert event["python"] == platform.python_version()
    assert "reason" not in event  # an honoured request has nothing to explain


def test_trace_records_the_native_backend_when_built(tmp_path):
    from repro.sim.native import available

    if not available():
        pytest.skip("native core extension not built")
    path = tmp_path / "backend.jsonl"
    run_scenario("A1", trace=TraceRequest(format="jsonl", path=str(path)),
                 backend="native")
    events = [json.loads(line) for line in path.read_text().splitlines()]
    event = next(e for e in events if e["kind"] == "sim.backend")
    assert event["backend"] == "native"
    assert event["core_version"]


def test_event_timestamps_are_monotonic(tmp_path):
    path = tmp_path / "events.jsonl"
    run_scenario("A1", trace=TraceRequest(format="jsonl", path=str(path)))
    stamps = [json.loads(line)["t_fs"] for line in path.read_text().splitlines()]
    assert stamps == sorted(stamps)
    assert all(isinstance(stamp, int) and stamp >= 0 for stamp in stamps)


def test_disabled_tracer_leaves_no_hook_attached(tmp_path):
    """trace=False must leave every component's _tracer at the class default."""
    run = run_scenario("A1", trace=False)
    soc = run.soc
    assert soc._tracer is None
    for instance in soc.instances:
        assert instance.ip._tracer is None
        assert instance.psm._tracer is None
        assert instance.lem._tracer is None
    # The class attribute itself must stay None (hooks are per-instance).
    from repro.power.psm import PowerStateMachine
    from repro.soc.ip import FunctionalIP

    assert PowerStateMachine._tracer is None
    assert FunctionalIP._tracer is None


def test_untraced_run_never_imports_the_obs_package():
    """The disabled-tracer path is a bare attribute test: an untraced run
    must not even import repro.obs (runs in a subprocess so this test's own
    imports cannot contaminate sys.modules)."""
    import subprocess
    import sys

    code = (
        "import sys\n"
        "from repro.experiments.runner import run_scenario\n"
        "run_scenario('A1', accuracy='fast', trace=False)\n"
        "run_scenario('A1', accuracy='fast')\n"  # default trace=None
        "loaded = [m for m in sys.modules if m.startswith('repro.obs')]\n"
        "assert not loaded, loaded\n"
        "print('clean')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=False
    )
    assert result.returncode == 0, result.stderr
    assert "clean" in result.stdout


def test_trace_adds_no_signal_observers(tmp_path):
    """jsonl/perfetto tracing must never attach signal observers (the
    fast-path gates on observer presence, so this is what bit-identity
    rests on)."""
    request = TraceRequest(format="jsonl", path=str(tmp_path / "t.jsonl"))
    run = run_scenario("A1", accuracy="fast", trace=request)
    for instance in run.soc.instances:
        assert instance.psm.state_signal._observers == []


class TestPerfettoDocument:
    @pytest.fixture(scope="class")
    def document(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("perfetto") / "b.json"
        run_scenario("B", trace=TraceRequest(format="perfetto", path=str(path)))
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def test_chrome_trace_shape(self, document):
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"
        for event in document["traceEvents"]:
            assert "ph" in event and "pid" in event

    def test_one_named_track_per_source(self, document):
        names = [e for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        labels = {e["args"]["name"] for e in names}
        # Scenario B has two IPs; each needs its own named track.
        assert {"ip1", "ip2"} <= labels

    def test_psm_residency_slices_are_balanced(self, document):
        begins = [e for e in document["traceEvents"]
                  if e.get("cat") == "psm" and e["ph"] == "b"]
        ends = [e for e in document["traceEvents"]
                if e.get("cat") == "psm" and e["ph"] == "e"]
        assert begins and len(begins) == len(ends)

    def test_decision_instants_present(self, document):
        instants = {e["name"] for e in document["traceEvents"] if e["ph"] == "i"}
        assert "lem.decision" in instants

    def test_task_slices_present(self, document):
        tasks = [e for e in document["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "task"]
        assert tasks
        for event in tasks:
            assert event["dur"] >= 0


def test_perfetto_bus_ownership_slices(tmp_path):
    from repro.platform import PlatformBuilder

    spec = (
        PlatformBuilder("bus-perfetto")
        .bus(words_per_second=5e6)
        .ip("a", workload={"kind": "high_activity", "task_count": 5, "seed": 1},
            bus_words_per_task=2048)
        .ip("b", workload={"kind": "low_activity", "task_count": 5, "seed": 2},
            priority=3, bus_words_per_task=2048)
        .build()
    )
    path = tmp_path / "bus.json"
    run_scenario(spec, trace=TraceRequest(format="perfetto", path=str(path)))
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    bus_slices = [e for e in document["traceEvents"]
                  if e.get("cat") == "bus" and e["ph"] == "b"]
    assert bus_slices, "bus ownership must appear as async slices"


def test_vcd_trace_written_and_recorder_detached(tmp_path):
    path = tmp_path / "a1.vcd"
    run = run_scenario("A1", trace=TraceRequest(format="vcd", path=str(path)))
    text = path.read_text()
    assert "$timescale" in text and "$enddefinitions" in text
    assert "ON1" in text
    # finish() closes the recorder: observers must be gone again.
    for instance in run.soc.instances:
        assert instance.psm.state_signal._observers == []


def test_event_filter_restricts_jsonl_output(tmp_path):
    path = tmp_path / "psm.jsonl"
    run_scenario("A1", trace=TraceRequest(format="jsonl", path=str(path),
                                          events=("psm",)))
    kinds = {json.loads(line)["kind"] for line in path.read_text().splitlines()}
    assert kinds == {"psm.state", "psm.transition"}


def test_spec_driven_trace_roundtrip(tmp_path):
    """A PlatformSpec's trace section drives tracing with trace=None."""
    from repro.platform import PlatformBuilder, PlatformSpec

    path = tmp_path / "spec.jsonl"
    spec = (
        PlatformBuilder("spec-traced")
        .trace(format="jsonl", path=str(path))
        .ip("solo", workload={"kind": "low_activity", "task_count": 4, "seed": 9})
        .build()
    )
    rebuilt = PlatformSpec.from_dict(spec.to_dict())
    assert rebuilt.trace == spec.trace
    run = run_scenario(rebuilt)
    assert run.trace_path == path
    assert path.is_file()


def test_baseline_run_is_never_traced(tmp_path):
    """run_comparison traces the DPM run only — the baseline must not
    clobber (or double-write) the trace file."""
    path = tmp_path / "only_dpm.jsonl"
    run_comparison(scenario_by_name("A1"), DpmSetup.paper(),
                   trace=TraceRequest(format="jsonl", path=str(path)))
    sources = {json.loads(line)["source"]
               for line in path.read_text().splitlines()
               if json.loads(line)["kind"] == "psm.state"}
    # One psm.state per IP of ONE run, not two.
    assert len(sources) == 1
