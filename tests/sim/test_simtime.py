"""Unit tests for :mod:`repro.sim.simtime`."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.simtime import SimTime, TimeUnit, ZERO_TIME, fs, ms, ns, ps, sec, us


class TestConstruction:
    def test_zero_time_is_zero(self):
        assert ZERO_TIME.is_zero
        assert not bool(ZERO_TIME)

    def test_from_value_unit_scaling(self):
        assert ns(1).femtoseconds == 1_000_000
        assert us(1).femtoseconds == 1_000_000_000
        assert ms(1).femtoseconds == 1_000_000_000_000
        assert sec(1).femtoseconds == 1_000_000_000_000_000
        assert ps(1).femtoseconds == 1_000
        assert fs(1).femtoseconds == 1

    def test_fractional_values_round_to_femtoseconds(self):
        assert ns(0.5).femtoseconds == 500_000
        assert ps(0.4).femtoseconds == 400

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            ns(-1)

    def test_non_finite_rejected(self):
        with pytest.raises(SimulationError):
            ns(math.inf)
        with pytest.raises(SimulationError):
            ns(math.nan)


class TestArithmetic:
    def test_addition(self):
        assert ns(5) + ps(500) == ns(5.5)

    def test_subtraction(self):
        assert ns(5) - ns(2) == ns(3)

    def test_subtraction_below_zero_rejected(self):
        with pytest.raises(SimulationError):
            ns(1) - ns(2)

    def test_mixing_plain_numbers_rejected(self):
        with pytest.raises(TypeError):
            ns(5) + 3
        with pytest.raises(TypeError):
            ns(5) - 3
        with pytest.raises(TypeError):
            ns(5) + 0.5

    def test_multiplication_by_scalar(self):
        assert ns(2) * 3 == ns(6)
        assert 3 * ns(2) == ns(6)
        assert ns(2) * 0.5 == ns(1)

    def test_multiplication_by_negative_rejected(self):
        with pytest.raises(SimulationError):
            ns(1) * -2

    def test_division_by_time_gives_ratio(self):
        assert ns(10) / ns(2) == pytest.approx(5.0)

    def test_division_by_scalar_gives_time(self):
        assert ns(10) / 2 == ns(5)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ns(10) / ZERO_TIME
        with pytest.raises(ZeroDivisionError):
            ns(10) / 0

    def test_ordering(self):
        assert ns(1) < us(1) < ms(1) < sec(1)
        assert max(ns(3), ns(7)) == ns(7)

    def test_conversion_round_trip(self):
        assert us(3).to_value(TimeUnit.NS) == pytest.approx(3000.0)
        assert sec(2).seconds == pytest.approx(2.0)
        assert ms(1.5).nanoseconds == pytest.approx(1.5e6)

    def test_str_uses_best_unit(self):
        assert "ns" in str(ns(5))
        assert "us" in str(us(7))


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_addition_commutes(self, a, b):
        assert ns(a) + ns(b) == ns(b) + ns(a)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_ordering_matches_integers(self, a, b):
        assert (ns(a) < ns(b)) == (a < b)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=1000))
    def test_scaling_then_dividing_recovers_value(self, value, factor):
        scaled = ns(value) * factor
        assert scaled / factor == ns(value)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_hashable_and_equal(self, value):
        assert hash(ns(value)) == hash(ns(value))
        assert len({ns(value), ns(value)}) == 1
