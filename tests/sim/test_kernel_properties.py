"""Property-based tests of the discrete-event kernel.

These tests drive the scheduler with randomly generated workloads of timed
waits, event notifications and signal writes, and assert the invariants any
discrete-event kernel must uphold: time never goes backwards, all work is
eventually performed, simultaneous events preserve a deterministic order,
and repeated runs of the same model produce identical traces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Kernel, Signal, ns, us


@st.composite
def wait_lists(draw):
    """A list of per-process lists of wait durations (in nanoseconds)."""
    process_count = draw(st.integers(min_value=1, max_value=4))
    return [
        draw(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=15))
        for _ in range(process_count)
    ]


class TestSchedulingProperties:
    @given(waits=wait_lists())
    @settings(max_examples=60, deadline=None)
    def test_time_is_monotonic_and_all_work_completes(self, waits):
        kernel = Kernel()
        observed = []

        def make_proc(durations):
            def proc():
                for duration in durations:
                    yield ns(duration)
                    observed.append(kernel.now.femtoseconds)
            return proc

        for index, durations in enumerate(waits):
            kernel.create_thread(make_proc(durations), f"p{index}")
        kernel.run()
        # Every wait of every process was honoured.
        assert len(observed) == sum(len(d) for d in waits)
        # Observations are globally non-decreasing (time never goes back).
        assert observed == sorted(observed)
        # The final time is the longest per-process sum.
        expected_end = max(sum(d) for d in waits)
        assert kernel.now == ns(expected_end)

    @given(waits=wait_lists())
    @settings(max_examples=30, deadline=None)
    def test_runs_are_deterministic(self, waits):
        def run_once():
            kernel = Kernel()
            log = []

            def make_proc(name, durations):
                def proc():
                    for duration in durations:
                        yield ns(duration)
                        log.append((name, kernel.now.femtoseconds))
                return proc

            for index, durations in enumerate(waits):
                kernel.create_thread(make_proc(f"p{index}", durations), f"p{index}")
            kernel.run()
            return log

        assert run_once() == run_once()

    @given(
        waits=wait_lists(),
        chunk_ns=st.integers(min_value=10, max_value=2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunked_runs_equal_single_run(self, waits, chunk_ns):
        """Running in many small chunks gives the same trace as one big run."""

        def run(chunked):
            kernel = Kernel()
            log = []

            def make_proc(name, durations):
                def proc():
                    for duration in durations:
                        yield ns(duration)
                        log.append((name, kernel.now.femtoseconds))
                return proc

            for index, durations in enumerate(waits):
                kernel.create_thread(make_proc(f"p{index}", durations), f"p{index}")
            total = max(sum(d) for d in waits)
            if chunked:
                while kernel.now < ns(total):
                    kernel.run(ns(chunk_ns))
            else:
                kernel.run(ns(total))
            return log

        assert run(True) == run(False)

    @given(values=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_signal_readers_see_writes_one_delta_late_and_in_order(self, values):
        kernel = Kernel()
        sig = Signal(kernel, "s", -1)
        seen = []

        def writer():
            for value in values:
                sig.write(value)
                yield ns(10)

        def reader():
            while True:
                yield sig.changed_event
                seen.append(sig.read())

        kernel.create_thread(writer, "writer")
        kernel.create_thread(reader, "reader")
        kernel.run()
        # The reader observes exactly the sequence of distinct values, in order.
        expected = []
        last = -1
        for value in values:
            if value != last:
                expected.append(value)
                last = value
        assert seen == expected

    @given(delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_event_notifications_fire_in_time_order(self, delays):
        kernel = Kernel()
        fired = []
        events = [kernel.event(f"e{i}") for i in range(len(delays))]

        def make_waiter(index):
            def waiter():
                yield events[index]
                fired.append((kernel.now.femtoseconds, index))
            return waiter

        for index in range(len(delays)):
            kernel.create_thread(make_waiter(index), f"w{index}")

        def notifier():
            for index, delay in enumerate(delays):
                events[index].notify_after(ns(delay))
            return
            yield  # pragma: no cover

        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert len(fired) == len(delays)
        times = [time for time, _ in fired]
        assert times == sorted(times)
        # Events scheduled for the same instant fire in notification order.
        by_time = {}
        for time, index in fired:
            by_time.setdefault(time, []).append(index)
        for time, indices in by_time.items():
            same_delay = [i for i, d in enumerate(delays) if ns(d).femtoseconds == time]
            assert indices == same_delay


class TestStatisticsProperties:
    @given(waits=wait_lists())
    @settings(max_examples=30, deadline=None)
    def test_activation_counts_match_work(self, waits):
        kernel = Kernel()

        def make_proc(durations):
            def proc():
                for duration in durations:
                    yield ns(duration)
            return proc

        for index, durations in enumerate(waits):
            kernel.create_thread(make_proc(durations), f"p{index}")
        kernel.run()
        stats = kernel.stats.as_dict()
        total_waits = sum(len(d) for d in waits)
        assert stats["timed_notifications"] == total_waits
        assert stats["processes_created"] == len(waits)
        # Start + one resume per wait (the final resume terminates the process).
        assert stats["process_activations"] == len(waits) + total_waits
