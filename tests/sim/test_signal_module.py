"""Tests for signals, ports, modules, clock and tracing."""

import pytest

from repro.errors import ConfigurationError, ElaborationError, SimulationError
from repro.sim import (
    Clock,
    InPort,
    Kernel,
    Module,
    OutPort,
    Signal,
    Simulator,
    TraceRecorder,
    ns,
    us,
)


@pytest.fixture
def kernel():
    return Kernel()


class TestSignalSemantics:
    def test_write_is_not_visible_until_update(self, kernel):
        sig = Signal(kernel, "s", 0)
        observed = []

        def writer():
            sig.write(42)
            observed.append(("writer-after-write", sig.read()))
            yield ns(1)
            observed.append(("writer-next-time", sig.read()))

        kernel.create_thread(writer, "writer")
        kernel.run()
        assert observed == [("writer-after-write", 0), ("writer-next-time", 42)]

    def test_changed_event_fires_only_on_change(self, kernel):
        sig = Signal(kernel, "s", 5)
        wakeups = []

        def watcher():
            while True:
                yield sig.changed_event
                wakeups.append((kernel.now.nanoseconds, sig.read()))

        def driver():
            yield ns(1)
            sig.write(5)   # no change: no wakeup
            yield ns(1)
            sig.write(7)   # change
            yield ns(1)
            sig.write(7)   # no change
            yield ns(1)
            sig.write(9)   # change

        kernel.create_thread(watcher, "watcher")
        kernel.create_thread(driver, "driver")
        kernel.run()
        assert wakeups == [(2.0, 7), (4.0, 9)]
        assert sig.change_count == 2
        assert sig.write_count == 4

    def test_last_write_in_delta_wins(self, kernel):
        sig = Signal(kernel, "s", 0)

        def writer():
            sig.write(1)
            sig.write(2)
            sig.write(3)
            yield ns(1)

        kernel.create_thread(writer, "writer")
        kernel.run()
        assert sig.read() == 3
        assert sig.change_count == 1

    def test_posedge_negedge_events(self, kernel):
        sig = Signal(kernel, "b", False)
        edges = []

        def pos_watch():
            while True:
                yield sig.posedge_event
                edges.append(("pos", kernel.now.nanoseconds))

        def neg_watch():
            while True:
                yield sig.negedge_event
                edges.append(("neg", kernel.now.nanoseconds))

        def driver():
            yield ns(1)
            sig.write(True)
            yield ns(1)
            sig.write(False)

        kernel.create_thread(pos_watch, "pos")
        kernel.create_thread(neg_watch, "neg")
        kernel.create_thread(driver, "driver")
        kernel.run()
        assert edges == [("pos", 1.0), ("neg", 2.0)]

    def test_observers_receive_changes(self, kernel):
        sig = Signal(kernel, "s", 0)
        seen = []
        sig.add_observer(lambda when, value: seen.append((when.nanoseconds, value)))

        def writer():
            yield ns(3)
            sig.write(11)

        kernel.create_thread(writer, "writer")
        kernel.run()
        assert seen == [(3.0, 11)]


class TestPorts:
    def test_port_binding_and_resolution(self, kernel):
        sig = Signal(kernel, "wire", 0)
        in_port = InPort("in")
        out_port = OutPort("out")
        in_port.bind(sig)
        out_port.bind(sig)
        assert in_port.resolve() is sig
        out_port.write(3)
        assert in_port.is_resolved

    def test_hierarchical_binding_chain(self, kernel):
        sig = Signal(kernel, "wire", 1)
        outer = InPort("outer")
        inner = InPort("inner")
        outer.bind(sig)
        inner.bind(outer)
        assert inner.resolve() is sig
        assert inner.read() == 1

    def test_unbound_port_raises(self):
        port = InPort("floating")
        with pytest.raises(ElaborationError):
            port.resolve()

    def test_double_bind_rejected(self, kernel):
        sig = Signal(kernel, "wire", 0)
        port = InPort("p")
        port.bind(sig)
        with pytest.raises(ElaborationError):
            port.bind(sig)

    def test_self_bind_rejected(self):
        port = InPort("p")
        with pytest.raises(ElaborationError):
            port.bind(port)

    def test_call_syntax_binds(self, kernel):
        sig = Signal(kernel, "wire", 9)
        port = InPort("p")
        port(sig)
        assert port.read() == 9


class TestModules:
    def test_hierarchy_and_names(self, kernel):
        top = Module(kernel, "top")
        child = Module(kernel, "child", parent=top)
        grandchild = Module(kernel, "leaf", parent=child)
        assert grandchild.name == "top.child.leaf"
        assert [m.name for m in top.walk()] == ["top", "top.child", "top.child.leaf"]
        assert top.find("child.leaf") is grandchild

    def test_duplicate_child_name_rejected(self, kernel):
        top = Module(kernel, "top")
        Module(kernel, "a", parent=top)
        with pytest.raises(ElaborationError):
            Module(kernel, "a", parent=top)

    def test_empty_name_rejected(self, kernel):
        with pytest.raises(ElaborationError):
            Module(kernel, "")

    def test_find_missing_raises(self, kernel):
        top = Module(kernel, "top")
        with pytest.raises(ElaborationError):
            top.find("ghost")

    def test_module_signal_names_are_hierarchical(self, kernel):
        top = Module(kernel, "top")
        sig = top.signal("state", 0)
        assert sig.name == "top.state"

    def test_design_tree_contains_children(self, kernel):
        top = Module(kernel, "top")
        Module(kernel, "child", parent=top)
        tree = top.design_tree()
        assert "top" in tree and "child" in tree


class TestSimulatorFacade:
    def test_simulator_runs_module_processes(self):
        sim = Simulator()
        kernel = sim.kernel

        class Counter(Module):
            def __init__(self, kernel, name):
                super().__init__(kernel, name)
                self.count = self.signal("count", 0)
                self.add_thread(self._run)

            def _run(self):
                while True:
                    yield ns(10)
                    self.count.write(self.count.read() + 1)

        counter = sim.add_module(Counter(kernel, "counter"))
        sim.run(ns(55))
        assert counter.count.read() == 5

    def test_elaboration_detects_unbound_ports(self):
        sim = Simulator()

        class Broken(Module):
            def __init__(self, kernel, name):
                super().__init__(kernel, name)
                self.inp = self.register_port(InPort("inp"))

        sim.add_module(Broken(sim.kernel, "broken"))
        with pytest.raises(ElaborationError):
            sim.elaborate()

    def test_add_module_rejects_non_top(self):
        sim = Simulator()
        top = Module(sim.kernel, "top")
        child = Module(sim.kernel, "child", parent=top)
        with pytest.raises(ElaborationError):
            sim.add_module(child)

    def test_empty_simulator_elaborates_as_noop(self):
        sim = Simulator()
        sim.elaborate()
        report = sim.run(ns(10))
        assert report.simulated_time == ns(10)

    def test_report_contains_throughput(self):
        sim = Simulator()
        clock = sim.add_module(Clock(sim.kernel, "clk", period=ns(10)))
        report = sim.run(us(1), clock_period=ns(10))
        assert report.cycles_simulated == pytest.approx(100.0)
        assert report.simulated_time == us(1)
        assert report.wall_clock_seconds >= 0.0
        assert "delta_cycles" in report.as_dict()

    def test_find_by_path(self):
        sim = Simulator()
        top = Module(sim.kernel, "top")
        child = Module(sim.kernel, "child", parent=top)
        sim.add_module(top)
        assert sim.find("top.child") is child
        with pytest.raises(ElaborationError):
            sim.find("nope")


class TestClock:
    def test_clock_toggles_with_period(self):
        sim = Simulator()
        clock = sim.add_module(Clock(sim.kernel, "clk", period=ns(10)))
        edges = []
        clock.out.add_observer(lambda when, value: edges.append((when.nanoseconds, value)))
        sim.run(ns(24))
        assert edges == [(5.0, False), (10.0, True), (15.0, False), (20.0, True)]

    def test_invalid_parameters_rejected(self):
        kernel = Kernel()
        with pytest.raises(ConfigurationError):
            Clock(kernel, "clk", period=ns(0))
        with pytest.raises(ConfigurationError):
            Clock(kernel, "clk2", period=ns(10), duty_cycle=1.5)

    def test_frequency_and_cycles(self):
        kernel = Kernel()
        clock = Clock(kernel, "clk", period=ns(10))
        assert clock.frequency_hz == pytest.approx(1e8)
        assert clock.cycles_elapsed(us(1)) == pytest.approx(100.0)


class TestTraceRecorder:
    def test_histories_and_value_at(self):
        sim = Simulator(trace=True)
        kernel = sim.kernel

        class Stepper(Module):
            def __init__(self, kernel, name):
                super().__init__(kernel, name)
                self.level = self.signal("level", 0)
                self.add_thread(self._run)

            def _run(self):
                for value in (1, 2, 3):
                    yield ns(10)
                    self.level.write(value)

        stepper = sim.add_module(Stepper(kernel, "stepper"))
        sim.trace.watch(stepper.level)
        sim.run(ns(100))
        history = sim.trace.history("stepper.level")
        assert [v for _, v in history] == [0, 1, 2, 3]
        assert sim.trace.value_at("stepper.level", ns(15)) == 1
        assert sim.trace.value_at("stepper.level", ns(35)) == 3
        assert sim.trace.change_count("stepper.level") == 3

    def test_durations_by_value(self):
        sim = Simulator(trace=True)
        kernel = sim.kernel

        class Stepper(Module):
            def __init__(self, kernel, name):
                super().__init__(kernel, name)
                self.level = self.signal("level", "A")
                self.add_thread(self._run)

            def _run(self):
                yield ns(10)
                self.level.write("B")
                yield ns(30)
                self.level.write("A")

        stepper = sim.add_module(Stepper(kernel, "stepper"))
        sim.trace.watch(stepper.level)
        sim.run(ns(100))
        durations = sim.trace.durations_by_value("stepper.level", ns(100))
        assert durations["A"].nanoseconds == pytest.approx(70.0)
        assert durations["B"].nanoseconds == pytest.approx(30.0)

    def test_duplicate_watch_rejected(self):
        kernel = Kernel()
        sig = Signal(kernel, "s", 0)
        trace = TraceRecorder()
        trace.watch(sig)
        with pytest.raises(SimulationError):
            trace.watch(sig)

    def test_unknown_history_rejected(self):
        trace = TraceRecorder()
        with pytest.raises(SimulationError):
            trace.history("ghost")

    def test_vcd_export_contains_signals(self, tmp_path):
        kernel = Kernel()
        sig = Signal(kernel, "top.state", "ON1")
        trace = TraceRecorder()
        trace.watch(sig)

        def writer():
            yield ns(5)
            sig.write("SL1")

        kernel.create_thread(writer, "writer")
        kernel.run()
        vcd = trace.to_vcd(ns(10))
        assert "$timescale" in vcd
        assert "top.state" in vcd
        assert "SL1" in vcd
        path = tmp_path / "wave.vcd"
        trace.write_vcd(str(path), ns(10))
        assert path.read_text().startswith("$comment")
