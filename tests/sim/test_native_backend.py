"""Conformance and resolution tests for the compiled kernel core.

The native backend replaces exactly one data structure — the timed
notification heap — so its contract is narrow and testable in isolation:
for any interleaving of ``push``/``cancel``/``pop_due`` the compiled queue
must report the same lengths, the same ``next_time_fs`` and the same pop
*order* (ties included: entries at one instant pop in push order) as the
pure-Python reference.  On top sit the resolution rules (``python`` /
``native`` / ``auto`` / ``REPRO_SIM_BACKEND``) and a whole-kernel
equivalence check.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim import Kernel, Simulator, us
from repro.sim import native
from repro.sim.event import TimedQueue as PythonQueue
from repro.sim.native import BackendResolution, available, resolve_backend

requires_native = pytest.mark.skipif(
    not available(), reason="native core extension not built"
)


def native_queue():
    return native.load().TimedQueue()


# ----------------------------------------------------------------------
# Queue conformance
# ----------------------------------------------------------------------
@requires_native
class TestQueueConformance:
    def test_fifo_order_among_ties(self):
        """Entries at the same femtosecond pop in push order."""
        py, nat = PythonQueue(), native_queue()
        for queue in (py, nat):
            for tag in range(20):
                queue.push(100, ("tie", tag))
            queue.push(50, "early")
        assert nat.pop_due(50) == py.pop_due(50) == ["early"]
        assert nat.pop_due(100) == py.pop_due(100) == [("tie", i) for i in range(20)]
        assert len(nat) == len(py) == 0

    def test_cancelled_entries_never_pop(self):
        py, nat = PythonQueue(), native_queue()
        handles = [(py.push(10 * i, i), nat.push(10 * i, i)) for i in range(10)]
        for py_handle, nat_handle in handles[::2]:
            py.cancel(py_handle)
            nat.cancel(nat_handle)
        for when in range(0, 100, 10):
            assert nat.pop_due(when) == py.pop_due(when)

    def test_cancel_after_pop_is_a_noop(self):
        nat = native_queue()
        handle = nat.push(5, "x")
        assert nat.pop_due(5) == ["x"]
        nat.cancel(handle)  # must not corrupt counters
        assert len(nat) == 0
        assert nat.next_time_fs() is None

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_interleaving_matches_reference(self, seed):
        """The load-bearing check: thousands of random operations, compared
        step by step — pop order, earliest time, live length, heap slots
        (the compaction policy is part of the contract)."""
        rng = random.Random(seed)
        py, nat = PythonQueue(), native_queue()
        live = []  # (py_handle, nat_handle) pairs still cancellable
        clock = 0
        for step in range(5000):
            roll = rng.random()
            if roll < 0.55:
                when = clock + rng.randrange(0, 50)
                payload = step
                live.append((py.push(when, payload), nat.push(when, payload)))
            elif roll < 0.85 and live:
                py_handle, nat_handle = live.pop(rng.randrange(len(live)))
                py.cancel(py_handle)
                nat.cancel(nat_handle)
            else:
                py_next = py.next_time_fs()
                nat_next = nat.next_time_fs()
                assert nat_next == py_next
                if py_next is not None:
                    clock = py_next
                    assert nat.pop_due(clock) == py.pop_due(clock)
            assert len(nat) == len(py)
            assert nat.heap_size == py.heap_size
        # Drain completely; the full remaining order must agree.
        while (when := py.next_time_fs()) is not None:
            assert nat.next_time_fs() == when
            assert nat.pop_due(when) == py.pop_due(when)
        assert nat.next_time_fs() is None
        assert len(nat) == 0

    def test_compact_threshold_parity(self):
        assert native_queue().COMPACT_THRESHOLD == PythonQueue.COMPACT_THRESHOLD

    def test_push_beyond_int64_femtoseconds_raises(self):
        nat = native_queue()
        with pytest.raises(OverflowError):
            nat.push(2**63, "too far")
        # ~9.2e3 simulated seconds is fine.
        nat.push(2**63 - 1, "edge")
        assert nat.next_time_fs() == 2**63 - 1

    def test_entry_handle_exposes_state(self):
        nat = native_queue()
        handle = nat.push(42, "payload")
        assert handle.when_fs == 42
        assert handle.payload == "payload"
        assert not handle.cancelled
        nat.cancel(handle)
        assert handle.cancelled


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_python_is_the_default(self, monkeypatch):
        monkeypatch.delenv(native.ENV_VAR, raising=False)
        resolution = resolve_backend()
        assert resolution == BackendResolution("python", "python")
        assert not resolution.fell_back
        assert resolution.describe() == "python"

    def test_environment_variable_is_consulted(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, "python")
        assert resolve_backend().backend == "python"
        monkeypatch.setenv(native.ENV_VAR, "auto")
        assert resolve_backend().requested == "auto"

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, "native")
        assert resolve_backend("python") == BackendResolution("python", "python")

    def test_unknown_backend_is_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_backend("fortran")
        monkeypatch.setenv(native.ENV_VAR, "fortran")
        with pytest.raises(ConfigurationError):
            resolve_backend()

    def test_native_falls_back_with_a_reason(self, monkeypatch):
        monkeypatch.setattr(native, "_probe", (None, "compiled core not importable: no build"))
        resolution = resolve_backend("native")
        assert resolution.backend == "python"
        assert resolution.fell_back
        assert "no build" in resolution.describe()

    def test_auto_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(native, "_probe", (None, "compiled core not importable: no build"))
        resolution = resolve_backend("auto")
        assert resolution == BackendResolution("python", "auto")
        assert not resolution.fell_back

    @requires_native
    def test_native_resolves_when_built(self):
        assert resolve_backend("native") == BackendResolution("native", "native")
        assert resolve_backend("auto") == BackendResolution("native", "auto")


# ----------------------------------------------------------------------
# Kernel integration
# ----------------------------------------------------------------------
class TestKernelBackend:
    def test_kernel_records_its_resolution(self):
        kernel = Kernel(backend="python")
        assert kernel.backend == "python"
        assert kernel.backend_resolution.requested == "python"

    def test_simulator_report_carries_the_backend(self):
        simulator = Simulator(backend="python")
        report = simulator.run(us(1))
        assert report.backend == "python"
        assert report.as_dict()["backend"] == "python"

    def test_unknown_backend_raises_at_construction(self):
        with pytest.raises(ConfigurationError):
            Kernel(backend="fortran")

    @requires_native
    def test_native_kernel_uses_the_compiled_queue(self):
        kernel = Kernel(backend="native")
        assert kernel.backend == "native"
        assert type(kernel._timed).__module__ == "repro.sim._nativecore"

    @requires_native
    def test_identical_wake_trace_on_both_backends(self):
        """One schedule, both backends: every process wakes at the same
        femtosecond in the same order, cancellations included."""

        def run(backend):
            kernel = Kernel(backend=backend)
            trace = []

            def poller(name, period_us):
                def proc():
                    while True:
                        yield us(period_us)
                        trace.append((name, kernel.now_fs))
                return proc

            def canceller():
                timer = kernel.event("t")
                handle = kernel.schedule_timed(timer, us(7))
                yield us(3)
                kernel.cancel_timed(handle)
                trace.append(("cancelled", kernel.now_fs))
                yield timer  # never fires; thread parks forever

            for name, period in (("a", 3), ("b", 5), ("c", 7)):
                kernel.create_thread(poller(name, period), name)
            kernel.create_thread(canceller, "canceller")
            kernel.run(us(200))
            return trace

        assert run("native") == run("python")
