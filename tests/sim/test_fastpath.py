"""Tests for the event-driven fast path: virtual clocks, the integer-
femtosecond timed queue (lazy-cancellation compaction), and determinism of
simultaneous timed notifications."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Clock, Kernel, Simulator, fs, ns, us
from repro.sim.event import TimedQueue
from repro.sim.simtime import SimTime


class TestTimedQueueCompaction:
    def test_len_counts_live_entries_only(self):
        queue = TimedQueue()
        handles = [queue.push(100 + i, object()) for i in range(10)]
        assert len(queue) == 10
        for handle in handles[:4]:
            queue.cancel(handle)
        assert len(queue) == 6
        # Cancelling twice is a no-op.
        queue.cancel(handles[0])
        assert len(queue) == 6

    def test_cancelled_entries_do_not_leak_heap_slots(self):
        queue = TimedQueue()
        live = queue.push(10**9, "live")
        dead = []
        # Push/cancel far more entries than the compaction threshold; without
        # compaction the heap would keep every slot until pop time.
        for i in range(10 * TimedQueue.COMPACT_THRESHOLD):
            dead.append(queue.push(1000 + i, i))
            queue.cancel(dead[-1])
        assert len(queue) == 1
        assert queue.heap_size <= 2 * TimedQueue.COMPACT_THRESHOLD
        assert queue.next_time_fs() == 10**9
        assert queue.pop_due(10**9) == ["live"]
        assert live[3]  # consumed handles read as cancelled

    def test_compaction_preserves_pop_order(self):
        reference = TimedQueue()
        compacted = TimedQueue()
        times = [5, 3, 3, 9, 1, 7, 3, 9, 2, 8] * 30
        ref_handles, cmp_handles = [], []
        for index, when in enumerate(times):
            ref_handles.append(reference.push(when, (when, index)))
            cmp_handles.append(compacted.push(when, (when, index)))
        # Cancel the same arbitrary subset in both queues; only the compacted
        # queue is pushed over the compaction threshold afterwards.
        for index in range(0, len(times), 3):
            reference.cancel(ref_handles[index])
            compacted.cancel(cmp_handles[index])
        extra = [compacted.push(10_000 + i, None) for i in range(2 * TimedQueue.COMPACT_THRESHOLD)]
        for handle in extra:
            compacted.cancel(handle)

        def drain(queue):
            order = []
            while True:
                when = queue.next_time_fs()
                if when is None:
                    return order
                order.extend(queue.pop_due(when))
        assert drain(compacted) == drain(reference)

    def test_kernel_pending_activity_ignores_cancelled_only_timed_entries(self):
        kernel = Kernel()
        event = kernel.event("never")
        handle = kernel.schedule_timed(event, ns(100))
        assert kernel.pending_activity
        kernel.cancel_timed(handle)
        assert not kernel.pending_activity


class TestSimultaneousTimedDeterminism:
    @given(
        delays=st.lists(
            st.integers(min_value=1, max_value=8), min_size=2, max_size=24
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_same_instant_notifications_fire_in_schedule_order(self, delays):
        """Timed notifications maturing at the same instant preserve the
        order in which they were scheduled, mixing event notifications and
        process timeouts, across repeated runs."""

        def run_once():
            kernel = Kernel()
            log = []

            def waiter(index, event):
                def proc():
                    yield event
                    log.append(("event", index, int(kernel.now)))
                return proc

            def sleeper(index, delay):
                def proc():
                    yield ns(delay)
                    log.append(("timeout", index, int(kernel.now)))
                return proc

            events = []
            for index, delay in enumerate(delays):
                if index % 2 == 0:
                    event = kernel.event(f"e{index}")
                    events.append((event, delay))
                    kernel.create_thread(waiter(index, event), f"w{index}")
                else:
                    kernel.create_thread(sleeper(index, delay), f"s{index}")
            # Schedule the event notifications after the threads exist so the
            # waiters are armed; notify_after shares the timed queue with the
            # process timeouts above.
            def scheduler():
                for event, delay in events:
                    event.notify_after(ns(delay))
                return
                yield  # pragma: no cover - makes this a generator

            kernel.create_thread(scheduler, "scheduler")
            kernel.run()
            return log

        first = run_once()
        second = run_once()
        assert first == second
        # All notifications matured, and within one instant the wake order
        # follows the scheduling order (stable by sequence number).
        assert len(first) == len(delays)
        times = [entry[2] for entry in first]
        assert times == sorted(times)


class TestVirtualClock:
    def test_virtual_clock_creates_no_activity(self):
        kernel = Kernel()
        clock = Clock(kernel, "clk", period=ns(10))
        kernel.initialize()
        assert not clock.is_materialized
        assert not kernel.pending_activity
        # Time advances purely analytically.
        kernel.run(us(1))
        assert clock.cycle_count == 100
        assert kernel.stats.process_activations == 0

    def test_cycle_count_matches_toggled_clock(self):
        sim_a = Simulator()
        virtual = sim_a.add_module(Clock(sim_a.kernel, "clk", period=ns(10)))
        sim_a.run(ns(245))

        sim_b = Simulator()
        accurate = sim_b.add_module(
            Clock(sim_b.kernel, "clk", period=ns(10), cycle_accurate=True)
        )
        sim_b.run(ns(245))
        assert accurate.is_materialized
        assert virtual.cycle_count == accurate.cycle_count == 24
        assert accurate.out.change_count > 0

    def test_out_access_materializes_before_run(self):
        sim = Simulator()
        clock = sim.add_module(Clock(sim.kernel, "clk", period=ns(10)))
        edges = []
        clock.out.add_observer(lambda when, value: edges.append((when.nanoseconds, value)))
        assert clock.is_materialized
        sim.run(ns(24))
        assert edges == [(5.0, False), (10.0, True), (15.0, False), (20.0, True)]

    def test_materialize_after_time_advanced_is_rejected(self):
        sim = Simulator()
        clock = sim.add_module(Clock(sim.kernel, "clk", period=ns(10)))
        sim.run(ns(25))
        with pytest.raises(SimulationError):
            _ = clock.out

    def test_duty_cycle_phases_sum_to_period_exactly(self):
        kernel = Kernel()
        # Adversarial period (prime femtosecond count) and duty cycle: the
        # high phase rounds, the low phase must absorb the remainder.
        period = fs(10_000_019)
        clock = Clock(kernel, "clk", period=period, duty_cycle=1.0 / 3.0)
        assert clock._high_time + clock._low_time == period

    def test_toggled_clock_does_not_drift_from_analytic_count(self):
        sim = Simulator()
        period = fs(10_000_019)
        clock = sim.add_module(
            Clock(sim.kernel, "clk", period=period, duty_cycle=1.0 / 3.0, cycle_accurate=True)
        )
        # Runs the toggle thread through ~1000 full periods; the thread
        # asserts its own cycle count against the analytic one every period.
        sim.run(SimTime(10_000_019 * 1000))
        assert clock.cycle_count == 1000

    def test_invalid_parameters_rejected(self):
        kernel = Kernel()
        with pytest.raises(ConfigurationError):
            Clock(kernel, "clk", period=ns(0))
        with pytest.raises(ConfigurationError):
            Clock(kernel, "clk2", period=ns(10), duty_cycle=1.5)
