"""Unit tests for the discrete-event kernel: events, processes, scheduling."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import AllOf, AnyOf, Kernel, ns, us, ZERO_TIME


@pytest.fixture
def kernel():
    return Kernel()


class TestTimedWaits:
    def test_single_timed_wait(self, kernel):
        log = []

        def proc():
            log.append(("start", kernel.now.nanoseconds))
            yield ns(10)
            log.append(("after", kernel.now.nanoseconds))

        kernel.create_thread(proc, "proc")
        kernel.run()
        assert log == [("start", 0.0), ("after", 10.0)]

    def test_sequential_waits_accumulate(self, kernel):
        times = []

        def proc():
            for _ in range(5):
                yield ns(3)
                times.append(kernel.now.nanoseconds)

        kernel.create_thread(proc, "proc")
        kernel.run()
        assert times == [3.0, 6.0, 9.0, 12.0, 15.0]

    def test_run_with_duration_stops_at_end(self, kernel):
        ticks = []

        def proc():
            while True:
                yield ns(10)
                ticks.append(kernel.now.nanoseconds)

        kernel.create_thread(proc, "proc")
        end = kernel.run(ns(35))
        assert ticks == [10.0, 20.0, 30.0]
        assert end == ns(35)

    def test_run_is_resumable(self, kernel):
        ticks = []

        def proc():
            while True:
                yield ns(10)
                ticks.append(kernel.now.nanoseconds)

        kernel.create_thread(proc, "proc")
        kernel.run(ns(25))
        kernel.run(ns(25))
        assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert kernel.now == ns(50)

    def test_two_processes_interleave_deterministically(self, kernel):
        order = []

        def fast():
            while kernel.now < ns(30):
                yield ns(10)
                order.append(("fast", kernel.now.nanoseconds))

        def slow():
            while kernel.now < ns(30):
                yield ns(15)
                order.append(("slow", kernel.now.nanoseconds))

        kernel.create_thread(fast, "fast")
        kernel.create_thread(slow, "slow")
        kernel.run(ns(100))
        # At t=30 both processes are due; the one whose wait was scheduled
        # first (slow, armed at t=15) resumes first: insertion order is kept.
        assert order == [
            ("fast", 10.0),
            ("slow", 15.0),
            ("fast", 20.0),
            ("slow", 30.0),
            ("fast", 30.0),
        ]

    def test_starvation_ends_run_without_duration(self, kernel):
        def proc():
            yield ns(5)

        kernel.create_thread(proc, "proc")
        end = kernel.run()
        assert end == ns(5)
        assert not kernel.pending_activity


class TestEvents:
    def test_timed_event_wakes_waiter(self, kernel):
        event = kernel.event("go")
        log = []

        def waiter():
            yield event
            log.append(kernel.now.nanoseconds)

        def notifier():
            yield ns(7)
            event.notify()

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert log == [7.0]

    def test_notify_after_delay(self, kernel):
        event = kernel.event("go")
        log = []

        def waiter():
            yield event
            log.append(kernel.now.nanoseconds)

        def notifier():
            event.notify_after(ns(42))
            return
            yield  # pragma: no cover

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert log == [42.0]

    def test_delta_notification_keeps_time(self, kernel):
        event = kernel.event("go")
        log = []

        def waiter():
            yield event
            log.append(kernel.now.nanoseconds)

        def notifier():
            yield ns(5)
            event.notify_delta()

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert log == [5.0]

    def test_any_of_wakes_on_first_event(self, kernel):
        early = kernel.event("early")
        late = kernel.event("late")
        log = []

        def waiter():
            yield AnyOf([early, late])
            log.append(kernel.now.nanoseconds)

        def notifier():
            early.notify_after(ns(3))
            late.notify_after(ns(9))
            return
            yield  # pragma: no cover

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert log == [3.0]

    def test_all_of_waits_for_every_event(self, kernel):
        first = kernel.event("first")
        second = kernel.event("second")
        log = []

        def waiter():
            yield AllOf([first, second])
            log.append(kernel.now.nanoseconds)

        def notifier():
            first.notify_after(ns(3))
            second.notify_after(ns(9))
            return
            yield  # pragma: no cover

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert log == [9.0]

    def test_event_wait_is_one_shot(self, kernel):
        event = kernel.event("go")
        wakeups = []

        def waiter():
            yield event
            wakeups.append(kernel.now.nanoseconds)
            # Not waiting again: further notifications must not wake us.

        def notifier():
            yield ns(1)
            event.notify()
            yield ns(1)
            event.notify()

        kernel.create_thread(waiter, "waiter")
        kernel.create_thread(notifier, "notifier")
        kernel.run()
        assert wakeups == [1.0]

    def test_anyof_requires_events(self, kernel):
        with pytest.raises(SchedulingError):
            AnyOf([])
        with pytest.raises(SchedulingError):
            AllOf([])


class TestMethodProcesses:
    def test_method_runs_on_each_notification(self, kernel):
        event = kernel.event("tick")
        calls = []

        kernel.create_method(lambda: calls.append(kernel.now.nanoseconds), [event], "m",
                             dont_initialize=True)

        def driver():
            for _ in range(3):
                yield ns(10)
                event.notify()

        kernel.create_thread(driver, "driver")
        kernel.run()
        assert calls == [10.0, 20.0, 30.0]

    def test_method_initialization_call(self, kernel):
        event = kernel.event("tick")
        calls = []
        kernel.create_method(lambda: calls.append(kernel.now.nanoseconds), [event], "m")
        kernel.run()
        assert calls == [0.0]


class TestKernelControl:
    def test_stop_halts_simulation(self, kernel):
        ticks = []

        def proc():
            while True:
                yield ns(10)
                ticks.append(kernel.now.nanoseconds)
                if len(ticks) == 3:
                    kernel.stop()

        kernel.create_thread(proc, "proc")
        kernel.run()
        assert ticks == [10.0, 20.0, 30.0]

    def test_run_not_reentrant(self, kernel):
        def proc():
            with pytest.raises(SimulationError):
                kernel.run()
            yield ns(1)

        kernel.create_thread(proc, "proc")
        kernel.run()

    def test_invalid_wait_spec_raises(self, kernel):
        def proc():
            yield "not a wait spec"

        kernel.create_thread(proc, "proc")
        with pytest.raises(SchedulingError):
            kernel.run()

    def test_yield_none_without_sensitivity_raises(self, kernel):
        def proc():
            yield None

        kernel.create_thread(proc, "proc")
        with pytest.raises(SchedulingError):
            kernel.run()

    def test_statistics_counted(self, kernel):
        def proc():
            for _ in range(4):
                yield ns(1)

        kernel.create_thread(proc, "proc")
        kernel.run()
        stats = kernel.stats.as_dict()
        assert stats["processes_created"] == 1
        assert stats["timed_notifications"] == 4
        assert stats["process_activations"] >= 5

    def test_process_registered_after_start_runs(self, kernel):
        log = []

        def late():
            yield ns(2)
            log.append(("late", kernel.now.nanoseconds))

        def spawner():
            yield ns(5)
            kernel.create_thread(late, "late")

        kernel.create_thread(spawner, "spawner")
        kernel.run()
        assert log == [("late", 7.0)]


class TestProcessKill:
    def test_kill_clears_a_pending_timed_wait(self, kernel):
        log = []

        def victim():
            yield us(10)
            log.append("victim")  # pragma: no cover - must not run

        def killer(process):
            def proc():
                yield us(1)
                process.kill()
            return proc

        process = kernel.create_thread(victim, "victim")
        kernel.create_thread(killer(process), "killer")
        kernel.run()
        assert log == []
        assert process.terminated
        assert not kernel.pending_activity

    def test_kill_removes_the_process_from_event_waiters(self, kernel):
        log = []
        event = kernel.event("gate")

        def victim():
            yield event
            log.append("victim")  # pragma: no cover - must not run

        def driver(process):
            def proc():
                yield us(1)
                process.kill()
                event.notify()
                yield us(1)
            return proc

        process = kernel.create_thread(victim, "victim")
        kernel.create_thread(driver(process), "driver")
        kernel.run()
        assert log == []
        assert event.waiter_count == 0

    def test_kill_runs_finally_blocks(self, kernel):
        cleanup = []

        def victim():
            try:
                yield us(10)
            finally:
                cleanup.append("cleaned")

        def killer(process):
            def proc():
                yield us(1)
                process.kill()
            return proc

        process = kernel.create_thread(victim, "victim")
        kernel.create_thread(killer(process), "killer")
        kernel.run()
        assert cleanup == ["cleaned"]

    def test_kill_is_idempotent_and_safe_after_termination(self, kernel):
        def short():
            yield ns(1)

        process = kernel.create_thread(short, "short")
        kernel.run()
        assert process.terminated
        process.kill()  # no-op
        process.kill()
        assert process.terminated

    def test_kill_before_start_prevents_any_execution(self, kernel):
        log = []

        def victim():
            log.append("started")
            yield ns(1)

        process = kernel.create_thread(victim, "victim")
        process.kill()
        kernel.run()
        assert log == []
        assert process.terminated

    def test_self_kill_terminates_at_the_next_yield(self, kernel):
        log = []
        cleanup = []
        holder = {}

        def victim():
            try:
                log.append("before")
                holder["p"].kill()  # self-kill from the executing frame
                log.append("after-kill")
                yield us(1)
                log.append("resumed")  # pragma: no cover - must not run
            finally:
                cleanup.append("cleaned")

        def bystander():
            yield us(5)
            log.append("bystander")

        holder["p"] = kernel.create_thread(victim, "victim")
        kernel.create_thread(bystander, "bystander")
        kernel.run()
        # The self-killing frame runs to its next yield, then terminates
        # with its finally blocks; the rest of the simulation continues.
        assert log == ["before", "after-kill", "bystander"]
        assert cleanup == ["cleaned"]
        assert holder["p"].terminated
