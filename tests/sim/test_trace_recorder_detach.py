"""Observer-leak regression tests: TraceRecorder.unwatch/close and
Signal.remove_observer.

Before these existed, every ``watch`` pinned an anonymous observer to the
signal for the signal's lifetime — which is a memory leak, and worse: the
fast accuracy mode gates writes on observer presence, so a stale observer
silently changes which writes happen at all.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Kernel, Signal, TraceRecorder
from repro.sim.simtime import us


def _make_signal(name="sig"):
    kernel = Kernel()
    return kernel, Signal(kernel, name, 0)


class TestRemoveObserver:
    def test_remove_returns_true_and_detaches(self):
        _, signal = _make_signal()
        seen = []
        observer = lambda when, value: seen.append(value)
        signal.add_observer(observer)
        assert signal.remove_observer(observer) is True
        assert signal._observers == []

    def test_remove_unknown_returns_false(self):
        _, signal = _make_signal()
        assert signal.remove_observer(lambda when, value: None) is False


class TestRecorderDetach:
    def test_unwatch_detaches_but_keeps_history(self):
        kernel, signal = _make_signal()
        recorder = TraceRecorder()
        recorder.watch(signal)
        assert len(signal._observers) == 1
        signal.write(1)
        kernel.run(us(1))
        recorder.unwatch(signal.name)
        assert signal._observers == []
        # Captured history stays queryable after detach...
        assert recorder.change_count(signal.name) == 1
        # ...but live capture has ended.
        signal.write(2)
        kernel.run(us(1))
        assert recorder.change_count(signal.name) == 1

    def test_unwatch_unknown_name_raises(self):
        recorder = TraceRecorder()
        with pytest.raises(SimulationError):
            recorder.unwatch("never-watched")

    def test_close_detaches_everything_and_is_idempotent(self):
        kernel, signal = _make_signal("a")
        other = Signal(kernel, "b", 0)
        recorder = TraceRecorder()
        recorder.watch(signal)
        recorder.watch(other)
        recorder.close()
        assert signal._observers == []
        assert other._observers == []
        recorder.close()  # no-op, no raise
        assert recorder.traced_names == ["a", "b"]

    def test_unwatch_only_removes_own_observer(self):
        kernel, signal = _make_signal()
        seen = []
        foreign = lambda when, value: seen.append(value)
        signal.add_observer(foreign)
        recorder = TraceRecorder()
        recorder.watch(signal)
        recorder.unwatch(signal.name)
        assert signal._observers == [foreign]
