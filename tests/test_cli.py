"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-dpm" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "table2" in capsys.readouterr().out

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table2", "scenario", "rules", "sweep", "speed", "breakeven"):
            assert command in text


class TestRulesCommand:
    def test_print_full_table(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "t1-row1" in out
        assert "ON4" in out

    def test_query_single_combination(self, capsys):
        assert main(["rules", "--priority", "very_high", "--battery", "empty",
                     "--temperature", "low"]) == 0
        assert "ON4" in capsys.readouterr().out

    def test_partial_query_is_an_error(self, capsys):
        assert main(["rules", "--priority", "low"]) == 2
        assert "together" in capsys.readouterr().err


class TestBreakevenCommand:
    def test_breakeven_lists_sleep_states(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        for state in ("SL1", "SL2", "SL3", "SL4", "OFF"):
            assert state in out


class TestScenarioCommands:
    def test_scenario_command_runs_a_row(self, capsys):
        assert main(["scenario", "A1"]) == 0
        out = capsys.readouterr().out
        assert "energy saving" in out
        assert "Scenario A1" in out

    def test_scenario_with_alternative_setup(self, capsys):
        assert main(["scenario", "A1", "--setup", "greedy-sleep"]) == 0
        assert "greedy-sleep" in capsys.readouterr().out

    def test_table2_subset(self, capsys):
        assert main(["table2", "A1"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out
        assert "Saving % (paper)" in out
