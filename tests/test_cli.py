"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-dpm" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "table2" in capsys.readouterr().out

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table2", "scenario", "rules", "sweep", "speed", "breakeven",
                        "report", "campaign", "reach"):
            assert command in text


class TestParserRoundTrips:
    """Every subcommand parses back the arguments it documents."""

    def parse(self, argv):
        return build_parser().parse_args(argv)

    def test_table2(self):
        args = self.parse(["table2", "A1", "B", "--setup", "greedy-sleep"])
        assert args.command == "table2"
        assert args.scenarios == ["A1", "B"]
        assert args.setup == "greedy-sleep"

    def test_scenario(self):
        args = self.parse(["scenario", "A3", "--setup", "oracle"])
        assert args.command == "scenario"
        assert args.name == "A3"
        assert args.setup == "oracle"

    def test_rules(self):
        args = self.parse(["rules", "--priority", "low", "--battery", "full",
                           "--temperature", "high"])
        assert (args.priority, args.battery, args.temperature) == ("low", "full", "high")

    def test_sweep(self):
        assert self.parse(["sweep", "--tasks", "12"]).tasks == 12

    def test_speed_and_breakeven(self):
        assert self.parse(["speed"]).command == "speed"
        assert self.parse(["breakeven"]).command == "breakeven"

    def test_report(self):
        args = self.parse(["report", "A1", "-o", "out.md", "--with-speed"])
        assert args.scenarios == ["A1"]
        assert args.output == "out.md"
        assert args.with_speed is True

    def test_campaign_run(self):
        args = self.parse(["campaign", "run", "grid.json", "--dir", "d",
                           "--workers", "4", "--resume", "--timeout", "2.5"])
        assert args.command == "campaign"
        assert args.campaign_command == "run"
        assert args.spec == "grid.json"
        assert args.directory == "d"
        assert args.workers == 4
        assert args.resume is True
        assert args.timeout == 2.5

    def test_campaign_status_and_report(self):
        status = self.parse(["campaign", "status", "some/dir"])
        assert status.campaign_command == "status"
        assert status.directory == "some/dir"
        report = self.parse(["campaign", "report", "some/dir", "-o", "out.txt"])
        assert report.campaign_command == "report"
        assert report.output == "out.txt"

    def test_invalid_setup_choice_rejected(self, capsys):
        with pytest.raises(SystemExit):
            self.parse(["table2", "--setup", "warp-drive"])


class TestRulesCommand:
    def test_print_full_table(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "t1-row1" in out
        assert "ON4" in out

    def test_query_single_combination(self, capsys):
        assert main(["rules", "--priority", "very_high", "--battery", "empty",
                     "--temperature", "low"]) == 0
        assert "ON4" in capsys.readouterr().out

    def test_partial_query_is_an_error(self, capsys):
        assert main(["rules", "--priority", "low"]) == 2
        assert "together" in capsys.readouterr().err


class TestBreakevenCommand:
    def test_breakeven_lists_sleep_states(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        for state in ("SL1", "SL2", "SL3", "SL4", "OFF"):
            assert state in out


class TestScenarioCommands:
    def test_scenario_command_runs_a_row(self, capsys):
        assert main(["scenario", "A1"]) == 0
        out = capsys.readouterr().out
        assert "energy saving" in out
        assert "Scenario A1" in out

    def test_scenario_with_alternative_setup(self, capsys):
        assert main(["scenario", "A1", "--setup", "greedy-sleep"]) == 0
        assert "greedy-sleep" in capsys.readouterr().out

    def test_table2_subset(self, capsys):
        assert main(["table2", "A1"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out
        assert "Saving % (paper)" in out


class TestReachCommand:
    def test_registered_platform_prints_envelope(self, capsys):
        assert main(["reach", "A1"]) == 0
        out = capsys.readouterr().out
        assert "reach: A1" in out
        assert "battery" in out and "thermal" in out
        assert "iterations" in out

    def test_spec_file(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        path.write_text(json.dumps({
            "format": "repro-platform/1",
            "name": "filed",
            "ips": [{"name": "cpu", "workload": {
                "kind": "periodic", "task_count": 4,
                "cycles": 10000, "idle_us": 200.0,
            }}],
        }))
        assert main(["reach", str(path)]) == 0
        assert "reach: filed" in capsys.readouterr().out

    def test_unknown_platform_exit_2(self, capsys):
        assert main(["reach", "no-such-platform"]) == 2
        assert "no-such-platform" in capsys.readouterr().err


class TestCampaignCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "name": "cli-grid",
            "scenarios": [
                {"kind": "single_ip", "name": "s1", "battery": "low",
                 "temperature": "low", "task_count": 5},
            ],
            "setups": ["paper", "always-on"],
            "seeds": [1, 2],
        }))
        return path

    def test_missing_subcommand_is_an_error(self, capsys):
        assert main(["campaign"]) == 2
        assert "subcommand" in capsys.readouterr().err

    def test_invalid_spec_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "scenarios": ["A1"], "setup": ["paper"]}')
        assert main(["campaign", "run", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "setup" in err

    def test_missing_spec_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_status_without_manifest_is_a_clean_error(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "empty")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_run_status_report_cycle(self, spec_file, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", str(spec_file), "--dir", directory,
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "4 executed" in out

        assert main(["campaign", "status", directory]) == 0
        out = capsys.readouterr().out
        assert "ok:      4" in out
        assert "missing: 0" in out

        assert main(["campaign", "report", directory]) == 0
        out = capsys.readouterr().out
        assert "s1/paper/seed=1" in out
        assert "aggregate" in out

    def test_resume_skips_everything(self, spec_file, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", str(spec_file), "--dir", directory,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(spec_file), "--dir", directory,
                     "--resume", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "4 skipped" in out

    def test_platform_grid_preflight_prints_and_gates(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({
            "name": "platform-grid",
            "scenarios": ["iot-duty-cycle"],
            "setups": ["paper"],
            "seeds": [1],
        }))
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", str(good), "--dir", directory]) == 0
        assert "preflight ok: iot-duty-cycle" in capsys.readouterr().out

    def test_preflight_failure_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "bad-grid",
            "scenarios": [{"kind": "platform", "spec": {
                "format": "repro-platform/1",
                "name": "bad-rules",
                "ips": [{"name": "cpu", "workload": {
                    "kind": "periodic", "task_count": 4,
                    "cycles": 10000, "idle_us": 200.0,
                }}],
                "policy": {"name": "paper",
                           "rules": [{"state": "ON1", "priorities": ["high"]}]},
                "battery": {"state_of_charge": 0.4, "capacity_j": 50.0},
            }}],
            "setups": ["paper"],
            "seeds": [1],
        }))
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", str(bad), "--dir", directory]) == 2
        err = capsys.readouterr().err
        assert "preflight" in err and "bad-rules" in err
        # --no-preflight bypasses the gate.
        assert main(["campaign", "run", str(bad), "--dir", directory,
                     "--no-preflight", "--quiet"]) == 0

    def test_report_ignores_records_dropped_from_the_grid(self, tmp_path, capsys):
        def spec_with_seeds(seeds):
            path = tmp_path / "grid.json"
            path.write_text(json.dumps({
                "name": "shrink",
                "scenarios": [{"kind": "single_ip", "name": "s1", "battery": "low",
                               "temperature": "low", "task_count": 5}],
                "setups": ["paper"],
                "seeds": seeds,
            }))
            return path

        directory = str(tmp_path / "camp")
        main(["campaign", "run", str(spec_with_seeds([1, 2])), "--dir", directory,
              "--quiet"])
        # Shrink the grid in place: seed 2's record is now stale.
        main(["campaign", "run", str(spec_with_seeds([1])), "--dir", directory,
              "--resume", "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "report", directory]) == 0
        captured = capsys.readouterr()
        assert "s1/paper/seed=1" in captured.out
        assert "seed=2" not in captured.out
        assert "ignoring 1 stored record" in captured.err

    def test_report_to_file(self, spec_file, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        main(["campaign", "run", str(spec_file), "--dir", directory, "--quiet"])
        output = tmp_path / "report.txt"
        assert main(["campaign", "report", directory, "-o", str(output)]) == 0
        assert "aggregate" in output.read_text()
