"""End-to-end tests: specs through the runners, campaigns and the CLI."""

import json
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    build_scenario,
    normalize_scenario,
    run_campaign,
)
from repro.cli import build_parser, main
from repro.errors import CampaignError
from repro.experiments import run_comparison, run_scenario
from repro.platform import (
    IpDef,
    PlatformBuilder,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    TransitionDef,
    WorkloadDef,
    load_platform,
    save_platform,
    to_scenario,
)

EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "specs", "custom_platform.json"
)


def tiny_platform(name: str = "tiny") -> PlatformSpec:
    """A platform small enough for sub-second comparison runs."""
    return (
        PlatformBuilder(name)
        .ip("ip1", workload={"kind": "high_activity", "task_count": 4, "seed": 5})
        .max_time_ms(500)
        .build()
    )


class TestRunnersAcceptSpecs:
    def test_run_scenario_accepts_a_spec(self):
        artifacts = run_scenario(tiny_platform())
        assert artifacts.scenario == "tiny"
        assert artifacts.all_tasks_completed

    def test_run_scenario_accepts_a_name(self):
        artifacts = run_scenario("A1")
        assert artifacts.scenario == "A1"

    def test_run_comparison_accepts_a_spec(self):
        metrics = run_comparison(tiny_platform())
        assert metrics.scenario == "tiny"
        assert metrics.tasks_executed == 4

    def test_unsupported_scenario_type_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="expected a Scenario"):
            run_scenario(42)

    def test_custom_eight_ip_platform_with_user_psm_runs(self):
        # The acceptance scenario: >= 8 IPs, user-defined PSM, end to end.
        spec = load_platform(EXAMPLE_SPEC)
        assert len(spec.ips) >= 8
        assert any(ip.psm is not None and ip.psm.transitions for ip in spec.ips)
        metrics = run_comparison(to_scenario(spec))
        assert metrics.tasks_executed == sum(
            len(to_scenario(spec).build_specs()[i].workload)
            for i in range(len(spec.ips))
        )
        assert metrics.energy_saving_pct > 0.0


class TestCampaignIntegration:
    def test_platform_entry_normalizes_to_canonical_inline_spec(self, tmp_path):
        spec = tiny_platform("camp-tiny")
        path = tmp_path / "tiny.json"
        save_platform(spec, path)
        by_file = normalize_scenario({"kind": "platform", "file": str(path)})
        inline = normalize_scenario({"kind": "platform", "spec": spec.to_dict()})
        assert by_file == inline
        assert by_file["name"] == "camp-tiny"
        # hash ingredients are the canonical spec, not the path
        assert by_file["spec"] == spec.to_dict()

    def test_registered_name_resolves_in_campaigns(self):
        normalized = normalize_scenario("A1")
        assert normalized["kind"] == "single_ip"  # legacy names keep legacy hashes

    def test_platform_file_errors_are_campaign_errors(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot load platform spec"):
            normalize_scenario({"kind": "platform", "file": str(tmp_path / "no.json")})
        with pytest.raises(CampaignError, match="needs an inline 'spec'"):
            normalize_scenario({"kind": "platform"})

    def test_build_scenario_from_platform_with_seed(self):
        spec = tiny_platform("camp-seeded")
        description = normalize_scenario({"kind": "platform", "spec": spec.to_dict()})
        default = build_scenario(description)
        reseeded = build_scenario(description, seed=77)
        assert default.build_specs()[0].workload.as_dicts() != \
            reseeded.build_specs()[0].workload.as_dicts()

    def test_campaign_grid_over_a_platform_file_with_caching(self, tmp_path):
        spec_path = tmp_path / "tiny.json"
        save_platform(tiny_platform("camp-grid"), spec_path)
        campaign = CampaignSpec.from_dict({
            "name": "platform-grid",
            "scenarios": ["A1", {"kind": "platform", "file": str(spec_path)}],
            "setups": ["paper"],
            "seeds": [1, 2],
            "overrides": [{}, {"task_count": 6, "max_time_ms": 400}],
        })
        jobs = campaign.jobs()
        labels = {job.label for job in jobs}
        assert "camp-grid/paper/seed=1" in labels
        # overrides: task_count applies to A1 only; max_time_ms to both —
        # the platform cells therefore collapse to 2 unique jobs per seed pair
        directory = tmp_path / "store"
        summary = run_campaign(campaign, directory, workers=1)
        assert summary.ok == summary.total_jobs == len(jobs)
        # second run: everything cached
        resumed = run_campaign(campaign, directory, workers=1, resume=True)
        assert resumed.skipped == summary.total_jobs
        assert resumed.executed == 0

    def test_relative_platform_files_resolve_against_the_spec_directory(
        self, tmp_path, monkeypatch
    ):
        # campaign and platform spec travel together; running from an
        # unrelated cwd must still find the sibling platform file.
        save_platform(tiny_platform("rel-file"), tmp_path / "soc.json")
        (tmp_path / "grid.json").write_text(json.dumps({
            "name": "rel",
            "scenarios": [{"kind": "platform", "file": "soc.json"}],
        }))
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        spec = CampaignSpec.from_file(tmp_path / "grid.json")
        assert spec.scenarios[0]["name"] == "rel-file"

    def test_platform_job_hash_is_stable_across_file_and_inline(self, tmp_path):
        spec = tiny_platform("hash-stable")
        path = tmp_path / "spec.json"
        save_platform(spec, path)
        by_file = CampaignSpec.from_dict({
            "name": "h", "scenarios": [{"kind": "platform", "file": str(path)}],
        })
        inline = CampaignSpec.from_dict({
            "name": "h", "scenarios": [{"kind": "platform", "spec": spec.to_dict()}],
        })
        assert [j.job_id for j in by_file.jobs()] == [j.job_id for j in inline.jobs()]


class TestCliPlatform:
    def parse(self, argv):
        return build_parser().parse_args(argv)

    def test_parser_round_trips(self):
        args = self.parse(["platform", "validate", "a.json", "b.toml"])
        assert args.platform_command == "validate"
        assert args.specs == ["a.json", "b.toml"]
        args = self.parse(["platform", "show", "--spec", "x.json", "--json"])
        assert args.platform_command == "show"
        assert args.spec == "x.json" and args.as_json
        args = self.parse(["platform", "run", "--name", "A1", "--setup", "oracle",
                           "--accuracy", "fast"])
        assert args.platform_command == "run"
        assert (args.name, args.setup, args.accuracy) == ("A1", "oracle", "fast")
        assert self.parse(["platform", "list"]).platform_command == "list"

    def test_spec_and_name_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            self.parse(["platform", "run", "--spec", "a.json", "--name", "A1"])

    def test_missing_subcommand_is_an_error(self, capsys):
        assert main(["platform"]) == 2
        assert "subcommand" in capsys.readouterr().err

    def test_validate_ok_and_failure(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        save_platform(tiny_platform("cli-good"), good)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "broken", "ips": []}))
        assert main(["platform", "validate", str(good)]) == 0
        out = capsys.readouterr().out
        assert "cli-good" in out and "1 IPs" in out
        assert main(["platform", "validate", str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "defines no IPs" in err

    def test_validate_detects_campaign_specs(self, capsys):
        grid = os.path.join(os.path.dirname(EXAMPLE_SPEC), "paper_grid.json")
        assert main(["platform", "validate", grid]) == 0
        assert "campaign" in capsys.readouterr().out

    def test_show_summary_and_json(self, tmp_path, capsys):
        path = tmp_path / "show.json"
        save_platform(tiny_platform("cli-show"), path)
        assert main(["platform", "show", "--spec", str(path)]) == 0
        assert "cli-show" in capsys.readouterr().out
        assert main(["platform", "show", "--spec", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "cli-show"

    def test_show_by_name(self, capsys):
        assert main(["platform", "show", "--name", "B"]) == 0
        assert "GEM" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["platform", "list"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "built-in" in out

    def test_run_spec_file(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        save_platform(tiny_platform("cli-run"), path)
        assert main(["platform", "run", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli-run" in out and "energy saving" in out

    def test_unknown_name_is_a_clean_error(self, capsys):
        assert main(["platform", "run", "--name", "warp-core"]) == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_scenario_error_lists_names(self, capsys):
        assert main(["platform", "show", "--name", "nope"]) == 2
        assert "A1" in capsys.readouterr().err

    def test_scenario_command_unknown_name_is_a_clean_error(self, capsys):
        assert main(["scenario", "does-not-exist"]) == 2
        err = capsys.readouterr().err
        assert "valid names" in err and "A1" in err

    def test_scenario_command_honours_the_platform_policy(self, capsys):
        from repro.platform import has_platform, register_platform, unregister_platform

        spec = tiny_platform("cli-policy")
        spec.policy = PolicyDef(name="greedy-sleep")
        register_platform(spec)
        try:
            assert main(["scenario", "cli-policy"]) == 0
            assert "DPM setup: greedy-sleep" in capsys.readouterr().out
            # an explicit --setup still wins
            assert main(["scenario", "cli-policy", "--setup", "paper"]) == 0
            assert "DPM setup: paper" in capsys.readouterr().out
        finally:
            if has_platform("cli-policy"):
                unregister_platform("cli-policy")


def bus_platform(name: str = "contended", timing: str = "cycle_accurate") -> PlatformSpec:
    """Two IPs contending for a slow shared bus."""
    return (
        PlatformBuilder(name)
        .describe("bandwidth-contended two-IP platform")
        .bus(words_per_second=2e6, arbitration="priority", timing=timing,
             words_per_cycle=8)
        .ip("dsp", workload={"kind": "periodic", "task_count": 4, "cycles": 20000,
                             "idle_us": 50.0},
            priority=1, bus_words_per_task=256)
        .ip("io", workload={"kind": "periodic", "task_count": 4, "cycles": 10000,
                            "idle_us": 30.0},
            priority=2, bus_words_per_task=512, bus_priority=0)
        .max_time_ms(50)
        .build()
    )


class TestBusPlatforms:
    def test_bus_spec_round_trips_through_a_json_file(self, tmp_path):
        spec = bus_platform()
        path = tmp_path / "contended.json"
        save_platform(spec, str(path))
        loaded = load_platform(str(path))
        assert loaded == spec
        assert loaded.bus.timing == "cycle_accurate"
        assert loaded.ips[1].bus_priority == 0

    def test_legacy_flat_bus_keys_still_load(self):
        data = {
            "name": "legacy",
            "ips": [{"name": "ip0",
                     "workload": {"kind": "periodic", "task_count": 1},
                     "bus_words_per_task": 8}],
            "with_bus": True,
            "bus_words_per_second": 1e6,
        }
        spec = PlatformSpec.from_dict(data)
        assert spec.bus.enabled
        assert spec.bus.words_per_second == 1e6
        # The canonical encoding uses the BusDef section.
        assert spec.to_dict()["bus"] == {"enabled": True, "words_per_second": 1e6}

    def test_legacy_inert_bandwidth_without_with_bus_still_loads(self):
        # The old to_dict emitted 'bus_words_per_second' whenever it
        # differed from the default, even with the bus disabled; such
        # archived specs must keep loading (as bus-less platforms).
        data = {
            "name": "legacy-inert",
            "ips": [{"name": "ip0",
                     "workload": {"kind": "periodic", "task_count": 1}}],
            "bus_words_per_second": 30e6,
        }
        spec = PlatformSpec.from_dict(data)
        assert not spec.bus.enabled
        assert "bus" not in spec.to_dict()

    def test_legacy_inert_bandwidth_must_still_be_positive(self):
        from repro.errors import PlatformError

        data = {
            "name": "legacy-bad",
            "ips": [{"name": "ip0",
                     "workload": {"kind": "periodic", "task_count": 1}}],
            "bus_words_per_second": -5.0,
        }
        with pytest.raises(PlatformError, match="bus throughput"):
            PlatformSpec.from_dict(data)

    def test_non_integer_words_per_cycle_fails_spec_validation(self):
        from repro.errors import PlatformError

        with pytest.raises(PlatformError, match="words_per_cycle"):
            (
                PlatformBuilder("bad")
                .bus(timing="cycle_accurate", words_per_cycle=2.0)
                .ip("ip0", workload={"kind": "periodic", "task_count": 1})
                .build()
            )

    def test_legacy_and_new_bus_keys_conflict(self):
        from repro.errors import PlatformError

        data = {
            "name": "conflict",
            "ips": [{"name": "ip0", "workload": {"kind": "periodic", "task_count": 1}}],
            "with_bus": True,
            "bus": {"enabled": True},
        }
        with pytest.raises(PlatformError, match="legacy"):
            PlatformSpec.from_dict(data)

    def test_cycle_accurate_platform_grants_only_on_posedges(self):
        scenario = to_scenario(bus_platform())
        artifacts = run_scenario(scenario)
        bus = artifacts.soc.bus
        # Batched arbitration: the clock stays virtual; grants still land
        # on its analytic posedge grid (checked via busy_time below).
        assert bus.clock is not None and not bus.clock.is_materialized
        assert bus.stats.transfer_count == 8
        # Reconstruct the grant instants: every completed task performed one
        # transfer, and in cycle-accurate mode both the grant and the
        # release of every transfer land on the bus-cycle grid.
        period_fs = int(bus.clock.period)
        assert bus.stats.busy_time % period_fs == 0
        summary = artifacts.bus_summary()
        assert summary["transfer_count"] == 8.0
        assert summary["occupancy_pct"] > 0.0

    def test_bus_metrics_flow_into_scenario_metrics(self):
        metrics = run_comparison(bus_platform())
        assert metrics.has_bus_figures
        assert metrics.bus_transfer_count == 8
        assert metrics.bus_words_transferred == 4 * 256 + 4 * 512
        assert metrics.bus_occupancy_pct > 0.0
        assert metrics.bus_cancelled_count == 0
        data = metrics.as_dict()
        assert data["bus_transfer_count"] == 8
        assert data["bus_cancelled_count"] == 0
        # Bus-less runs keep their historical record shape.
        busless = run_comparison(tiny_platform())
        assert not busless.has_bus_figures
        assert "bus_transfer_count" not in busless.as_dict()

    def test_timing_modes_are_distinct_campaign_cells(self):
        # The canonical encodings differ, so a campaign grid sweeping both
        # timing modes gets two separately cached jobs.
        fast = normalize_scenario(
            {"kind": "platform", "spec": bus_platform("h", "event_driven").to_dict()}
        )
        accurate = normalize_scenario(
            {"kind": "platform", "spec": bus_platform("h", "cycle_accurate").to_dict()}
        )
        assert fast != accurate
        assert "timing" not in fast["spec"]["bus"]  # default mode omitted
        assert accurate["spec"]["bus"]["timing"] == "cycle_accurate"

    def test_campaign_runs_a_bus_platform_grid(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "bus-grid",
                "scenarios": [
                    {"kind": "platform", "spec": bus_platform().to_dict()},
                ],
                "setups": ["paper"],
            }
        )
        # The contended platform trips the reach-lint preflight by design
        # (BUS-SATURATED is an error finding); bypass the gate explicitly.
        summary = run_campaign(
            spec, str(tmp_path / "campaign"), workers=1, preflight=False,
        )
        assert summary.ok == 1 and summary.errors == 0
        from repro.campaign import ResultStore

        records = ResultStore(str(tmp_path / "campaign")).records()
        assert len(records) == 1
        assert records[0]["metrics"]["bus_transfer_count"] == 8
        # Rebuilt records rehydrate the typed bus fields (not just 'extra').
        from repro.campaign.aggregate import aggregate_records, record_metrics

        rebuilt = record_metrics(records[0])
        assert rebuilt.has_bus_figures
        assert rebuilt.bus_transfer_count == 8
        assert rebuilt.bus_occupancy_pct > 0.0
        assert "bus_transfer_count" not in rebuilt.extra
        aggregated = aggregate_records(records)
        assert aggregated[0].bus_transfer_count == 8
        assert aggregated[0].bus_occupancy_pct == pytest.approx(
            rebuilt.bus_occupancy_pct
        )
