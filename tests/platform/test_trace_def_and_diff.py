"""Tests for the spec's TraceDef section and the platform diff helper."""

import pytest

from repro.errors import PlatformError
from repro.platform import (
    PlatformBuilder,
    PlatformSpec,
    TraceDef,
    diff_specs,
    platform_by_name,
    render_spec_diff,
)


def _minimal_spec(name="t", **trace_kwargs):
    builder = PlatformBuilder(name).ip(
        "solo", workload={"kind": "low_activity", "task_count": 4, "seed": 1}
    )
    if trace_kwargs:
        builder = builder.trace(**trace_kwargs)
    return builder.build()


class TestTraceDef:
    def test_disabled_default_serializes_to_nothing(self):
        spec = _minimal_spec()
        assert "trace" not in spec.to_dict()

    def test_round_trip(self):
        spec = _minimal_spec(format="perfetto", path="out.json", events=["psm", "bus"])
        rebuilt = PlatformSpec.from_dict(spec.to_dict())
        assert rebuilt.trace == spec.trace
        assert rebuilt.trace.enabled
        assert rebuilt.trace.format == "perfetto"
        assert rebuilt.trace.events == ["psm", "bus"]

    def test_unknown_format_rejected(self):
        with pytest.raises(PlatformError, match="platform.trace.format"):
            _minimal_spec(format="xml")

    def test_unknown_event_name_rejected(self):
        with pytest.raises(PlatformError, match="platform.trace.events"):
            _minimal_spec(events=["psm", "nope"])

    def test_vcd_rejects_event_filter(self):
        with pytest.raises(PlatformError, match="event filters"):
            _minimal_spec(format="vcd", events=["psm"])

    def test_overrides_without_enabled_rejected(self):
        spec = _minimal_spec()
        spec.trace = TraceDef(enabled=False, format="perfetto")
        with pytest.raises(PlatformError, match="'enabled' is false"):
            spec.validate()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(PlatformError, match="unknown"):
            PlatformSpec.from_dict({
                "name": "x",
                "ips": [{"name": "a", "workload": {"kind": "low_activity",
                                                   "task_count": 2, "seed": 1}}],
                "trace": {"enabled": True, "sink": "jsonl"},
            })

    def test_builder_no_trace(self):
        spec = (
            PlatformBuilder("t")
            .trace(format="jsonl")
            .no_trace()
            .ip("solo", workload={"kind": "low_activity", "task_count": 2, "seed": 1})
            .build()
        )
        assert not spec.trace.enabled


class TestDiffSpecs:
    def test_identical_specs_have_no_diff(self):
        assert diff_specs(platform_by_name("A1"), platform_by_name("A1")) == []
        assert render_spec_diff(platform_by_name("A1"), platform_by_name("A1")) == ""

    def test_scalar_difference_reported_with_dotted_path(self):
        a = _minimal_spec("same")
        b = _minimal_spec("same")
        b.max_time_ms = a.max_time_ms * 2
        entries = diff_specs(a, b)
        paths = [path for path, _, _ in entries]
        assert "max_time_ms" in paths

    def test_section_only_on_one_side_uses_missing_sentinel(self):
        a = _minimal_spec("same")
        b = _minimal_spec("same", format="perfetto")
        entries = {path: (left, right) for path, left, right in diff_specs(a, b)}
        assert any(path.startswith("trace") for path in entries)
        rendered = render_spec_diff(a, b, label_a="plain", label_b="traced")
        assert "<missing>" in rendered

    def test_list_items_get_indexed_paths(self):
        a = platform_by_name("B")
        b = platform_by_name("C")
        entries = diff_specs(a, b)
        assert any("ips[" in path for path, _, _ in entries)

    def test_registered_platforms_differ(self):
        entries = diff_specs(platform_by_name("A1"), platform_by_name("A2"))
        paths = {path for path, _, _ in entries}
        assert "battery.condition" in paths
