"""Round-trip and validation tests for the declarative platform spec tree."""

import json
import os

import pytest

from repro.errors import PlatformError
from repro.platform import (
    SPEC_FORMAT,
    BatteryDef,
    BusDef,
    GemDef,
    IpDef,
    OperatingPointDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    ThermalDef,
    TransitionDef,
    WorkloadDef,
    load_platform,
    paper_platforms,
    save_platform,
    spec_from_json,
    spec_from_toml,
    spec_to_json,
    spec_to_toml,
)

EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "specs", "custom_platform.json"
)


def rich_spec() -> PlatformSpec:
    """A spec touching every branch of the tree."""
    return PlatformSpec(
        name="rich",
        description="every knob set",
        ips=[
            IpDef(
                name="cpu",
                workload=WorkloadDef(kind="random", task_count=5, seed=3,
                                     cycles_min=10_000, cycles_max=20_000,
                                     idle_min_us=100.0, idle_max_us=500.0,
                                     priorities=["high", "low"], idle_scale=1.5),
                static_priority=1,
                operating_points=[
                    OperatingPointDef("ON1", 1.1, 300e6),
                    OperatingPointDef("ON2", 1.0, 200e6),
                    OperatingPointDef("ON3", 0.9, 100e6),
                    OperatingPointDef("ON4", 0.8, 50e6),
                ],
                effective_capacitance_f=1e-9,
                idle_activity=0.4,
                leakage_coefficient=0.002,
                activity_by_class={"dsp": 2.0},
                residual_fraction={"SL1": 0.3},
                psm=PsmDef(
                    dvfs_latency_us=5.0,
                    entry_latency_us={"SL1": 10.0},
                    wakeup_latency_us={"SL1": 15.0},
                    transitions=[
                        TransitionDef("ON1", "SL1", energy_j=1e-7, latency_us=8.0),
                        TransitionDef("ON1", "OFF", allowed=False),
                    ],
                ),
            ),
            IpDef(
                name="dsp",
                workload=WorkloadDef(kind="explicit", name="trace", items=[
                    {"task": "t0", "cycles": 1000, "priority": "high",
                     "instruction_class": "dsp", "idle_after_fs": 123456789},
                ], force_priority="very_high"),
                static_priority=2,
                initial_state="SL1",
                bus_words_per_task=16,
                bus_priority=3,
            ),
        ],
        battery=BatteryDef(condition="low", capacity_j=100.0, on_ac_power=False),
        thermal=ThermalDef(condition="high", fan_resistance_scale=0.4),
        gem=GemDef(enabled=True, high_priority_count=1,
                   evaluation_interval_us=250.0, forced_state="SL2"),
        policy=PolicyDef(name="paper", predictor="adaptive", allow_off=False,
                         reevaluation_interval_us=100.0, defer_state="SL2",
                         estimation_state="ON2"),
        max_time_ms=123.0,
        sample_interval_us=500.0,
        with_fan=False,
        bus=BusDef(enabled=True, words_per_second=10e6, arbitration="fifo",
                   timing="cycle_accurate", words_per_cycle=4),
    )


class TestDictRoundTrip:
    def test_rich_spec_round_trips_through_dict(self):
        spec = rich_spec()
        rebuilt = PlatformSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_to_dict_is_idempotent_fixpoint(self):
        # JSON -> PlatformSpec -> JSON: a second round trip is the identity.
        first = PlatformSpec.from_dict(rich_spec().to_dict()).to_dict()
        second = PlatformSpec.from_dict(first).to_dict()
        assert second == first

    def test_defaults_are_omitted(self):
        spec = PlatformSpec(name="thin", ips=[IpDef(name="ip1")])
        data = spec.to_dict()
        assert set(data) == {"format", "name", "ips"}
        assert data["ips"][0] == {"name": "ip1", "workload": {"kind": "high_activity"}}

    def test_format_tag_round_trips(self):
        spec = PlatformSpec(name="thin", ips=[IpDef(name="ip1")])
        assert spec.to_dict()["format"] == SPEC_FORMAT
        with pytest.raises(PlatformError, match="format"):
            PlatformSpec.from_dict({"format": "repro-platform/99", "name": "x",
                                    "ips": [{"name": "a", "workload": {"kind": "periodic",
                                                                       "task_count": 1}}]})

    def test_every_paper_platform_round_trips_to_an_equal_spec(self):
        for spec in paper_platforms():
            for encoded in (spec.to_dict(), json.loads(spec_to_json(spec))):
                rebuilt = PlatformSpec.from_dict(encoded)
                assert rebuilt == spec, spec.name
                assert rebuilt.to_dict() == spec.to_dict()


class TestTextFormats:
    def test_json_round_trip(self):
        spec = rich_spec()
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_toml_parity_with_json(self):
        spec = rich_spec()
        via_toml = spec_from_toml(spec_to_toml(spec))
        via_json = spec_from_json(spec_to_json(spec))
        assert via_toml == via_json == spec
        assert via_toml.to_dict() == via_json.to_dict()

    def test_invalid_json_is_a_platform_error(self):
        with pytest.raises(PlatformError, match="invalid JSON"):
            spec_from_json("{nope")

    def test_invalid_toml_is_a_platform_error(self):
        with pytest.raises(PlatformError, match="invalid TOML"):
            spec_from_toml("= broken =")

    @pytest.mark.parametrize("extension", ["json", "toml"])
    def test_file_round_trip(self, tmp_path, extension):
        spec = rich_spec()
        path = tmp_path / f"platform.{extension}"
        save_platform(spec, path)
        assert load_platform(path) == spec

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(PlatformError, match="expected .json or .toml"):
            save_platform(rich_spec(), tmp_path / "platform.yaml")
        with pytest.raises(PlatformError, match="expected .json or .toml"):
            load_platform(tmp_path / "platform.yaml")

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(PlatformError, match="broken.json"):
            load_platform(path)

    def test_shipped_example_spec_loads(self):
        spec = load_platform(EXAMPLE_SPEC)
        assert spec.name == "octa-biglittle"
        assert len(spec.ips) == 8
        assert spec.gem.enabled
        assert any(ip.psm is not None for ip in spec.ips)
        # and it is stored in canonical (fixpoint) form
        assert PlatformSpec.from_dict(spec.to_dict()) == spec


class TestValidationErrors:
    """Errors must name the offending path and the accepted vocabulary."""

    def base(self) -> dict:
        return {
            "name": "x",
            "ips": [{"name": "a", "workload": {"kind": "periodic", "task_count": 4}}],
        }

    def test_unknown_top_level_field(self):
        data = self.base()
        data["fan_speed"] = 3
        with pytest.raises(PlatformError, match="platform.*fan_speed"):
            PlatformSpec.from_dict(data)

    def test_unknown_workload_kind_lists_choices(self):
        data = self.base()
        data["ips"][0]["workload"]["kind"] = "burstyy"
        with pytest.raises(PlatformError) as excinfo:
            PlatformSpec.from_dict(data)
        message = str(excinfo.value)
        assert "ips[0].workload.kind" in message
        assert "bursty" in message and "scenario_a" in message

    def test_workload_field_not_applicable_to_kind(self):
        data = self.base()
        data["ips"][0]["workload"]["burst_count"] = 3
        with pytest.raises(PlatformError, match=r"ips\[0\].workload.*burst_count"):
            PlatformSpec.from_dict(data)

    def test_duplicate_ip_names(self):
        data = self.base()
        data["ips"].append(dict(data["ips"][0]))
        with pytest.raises(PlatformError, match="duplicate IP name"):
            PlatformSpec.from_dict(data)

    def test_bad_power_state_lists_choices(self):
        data = self.base()
        data["ips"][0]["initial_state"] = "ON9"
        with pytest.raises(PlatformError) as excinfo:
            PlatformSpec.from_dict(data)
        assert "ips[0].initial_state" in str(excinfo.value)
        assert "ON1" in str(excinfo.value)

    def test_incomplete_operating_points(self):
        data = self.base()
        data["ips"][0]["operating_points"] = [
            {"state": "ON1", "voltage_v": 1.0, "frequency_hz": 1e8}
        ]
        with pytest.raises(PlatformError, match="must cover ON1..ON4"):
            PlatformSpec.from_dict(data)

    def test_transition_needs_costs_or_forbidden(self):
        data = self.base()
        data["ips"][0]["psm"] = {"transitions": [{"source": "ON1", "target": "SL1"}]}
        with pytest.raises(PlatformError, match="energy_j"):
            PlatformSpec.from_dict(data)

    def test_gem_knobs_without_enable(self):
        data = self.base()
        data["gem"] = {"high_priority_count": 2}
        with pytest.raises(PlatformError, match="'enabled' is false"):
            PlatformSpec.from_dict(data)

    def test_policy_predictor_only_for_paper(self):
        data = self.base()
        data["policy"] = {"name": "oracle", "predictor": "ewma"}
        with pytest.raises(PlatformError, match="policy.predictor"):
            PlatformSpec.from_dict(data)

    def test_battery_condition_vocabulary(self):
        data = self.base()
        data["battery"] = {"condition": "turbo"}
        with pytest.raises(PlatformError, match="battery.condition.*full"):
            PlatformSpec.from_dict(data)

    def test_bus_words_require_a_bus(self):
        data = self.base()
        data["ips"][0]["bus_words_per_task"] = 4
        with pytest.raises(PlatformError, match="bus.enabled"):
            PlatformSpec.from_dict(data)

    def test_missing_ips(self):
        with pytest.raises(PlatformError, match="ips"):
            PlatformSpec.from_dict({"name": "x"})

    def test_explicit_workload_item_fields_checked(self):
        data = self.base()
        data["ips"][0]["workload"] = {
            "kind": "explicit",
            "items": [{"task": "t", "cycles": 10, "idle_after_ms": 1}],
        }
        with pytest.raises(PlatformError, match=r"items\[0\].*idle_after_ms"):
            PlatformSpec.from_dict(data)
