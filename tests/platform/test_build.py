"""Tests for the spec -> runnable-object bridge (repro.platform.build)."""

import pytest

from repro.dpm.controller import DpmSetup
from repro.experiments.scenarios import (
    multi_ip_scenario,
    paper_scenarios,
    single_ip_scenario,
)
from repro.platform import (
    GemDef,
    IpDef,
    OperatingPointDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    TransitionDef,
    WorkloadDef,
    build_dpm_setup,
    build_ip_spec,
    build_workload,
    paper_platforms,
    platform_by_name,
    platform_setup,
    to_scenario,
)
from repro.platform.build import build_characterization, build_transitions
from repro.power.states import PowerState
from repro.sim.simtime import us
from repro.soc.task import TaskPriority


class TestPaperMigration:
    """The six rows built from specs equal the legacy factory output."""

    def test_single_ip_platforms_match_legacy_factories(self):
        for name, battery, temperature in (
            ("A1", "full", "low"), ("A2", "low", "low"),
            ("A3", "full", "high"), ("A4", "low", "high"),
        ):
            legacy = single_ip_scenario(name, battery, temperature)
            modern = to_scenario(platform_by_name(name))
            legacy_specs, modern_specs = legacy.build_specs(), modern.build_specs()
            assert len(legacy_specs) == len(modern_specs) == 1
            for old, new in zip(legacy_specs, modern_specs):
                assert old.workload.as_dicts() == new.workload.as_dicts()
                assert (old.name, old.static_priority) == (new.name, new.static_priority)
                assert new.characterization is None and new.transitions is None
            assert legacy.build_config() == modern.build_config()
            assert legacy.max_time == modern.max_time

    def test_multi_ip_platforms_match_legacy_factories(self):
        for name, ips in (("B", (1, 2)), ("C", (3, 4))):
            legacy = multi_ip_scenario(name, "low", "low", high_activity_ips=ips)
            modern = to_scenario(platform_by_name(name))
            for old, new in zip(legacy.build_specs(), modern.build_specs()):
                assert old.workload.as_dicts() == new.workload.as_dicts()
                assert old.workload.name == new.workload.name
            assert legacy.build_config() == modern.build_config()

    def test_paper_scenarios_are_platform_backed(self):
        scenarios = paper_scenarios()
        assert [s.name for s in scenarios] == ["A1", "A2", "A3", "A4", "B", "C"]
        for scenario, spec in zip(scenarios, paper_platforms()):
            assert scenario.spec == spec
            assert scenario.paper_row is not None

    def test_impostor_paper_name_gets_no_paper_row(self):
        # a user spec merely *named* "A1" must not inherit the paper's
        # printed reference figures
        impostor = PlatformSpec(name="A1", ips=[
            IpDef(name="x", workload=WorkloadDef(kind="periodic", task_count=2)),
        ])
        assert to_scenario(impostor).paper_row is None
        assert to_scenario(platform_by_name("A1")).paper_row is not None


class TestWorkloadBuild:
    def test_periodic(self):
        workload = build_workload(WorkloadDef(kind="periodic", task_count=3,
                                              cycles=500, idle_us=10.0,
                                              priority="high",
                                              instruction_class="dsp"))
        assert len(workload) == 3
        assert all(item.task.cycles == 500 for item in workload)
        assert all(item.task.priority is TaskPriority.HIGH for item in workload)
        assert all(item.idle_after == us(10.0) for item in workload)

    def test_explicit_round_trips_via_as_dicts(self):
        source = build_workload(WorkloadDef(kind="random", task_count=4, seed=8))
        rebuilt = build_workload(WorkloadDef(kind="explicit", name=source.name,
                                             items=source.as_dicts()))
        assert rebuilt.as_dicts() == source.as_dicts()

    def test_post_transforms(self):
        wdef = WorkloadDef(kind="periodic", task_count=2, cycles=100,
                           idle_us=10.0, force_priority="very_high", idle_scale=2.0)
        workload = build_workload(wdef)
        assert all(item.task.priority is TaskPriority.VERY_HIGH for item in workload)
        assert all(item.idle_after == us(20.0) for item in workload)

    def test_seed_override_reseeds_generators(self):
        wdef = WorkloadDef(kind="high_activity", task_count=6, seed=1)
        assert build_workload(wdef).as_dicts() != build_workload(wdef, 99).as_dicts()
        assert build_workload(wdef, 99).as_dicts() == build_workload(wdef, 99).as_dicts()

    def test_ip_index_decorrelates_grid_seeds(self):
        spec = IpDef(name="a", workload=WorkloadDef(kind="high_activity", task_count=4))
        first = build_ip_spec(spec, index=0, seed=7)
        second = build_ip_spec(spec, index=1, seed=7)
        assert first.workload.as_dicts() != second.workload.as_dicts()


class TestCharacterizationAndPsm:
    def test_thin_ip_uses_library_defaults(self):
        ipdef = IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1))
        assert build_characterization(ipdef) is None
        assert build_transitions(ipdef, None) is None

    def test_explicit_operating_points(self):
        ipdef = IpDef(
            name="a", workload=WorkloadDef(kind="periodic", task_count=1),
            operating_points=[
                OperatingPointDef("ON1", 1.0, 100e6),
                OperatingPointDef("ON2", 0.9, 75e6),
                OperatingPointDef("ON3", 0.8, 50e6),
                OperatingPointDef("ON4", 0.7, 25e6),
            ],
        )
        characterization = build_characterization(ipdef)
        point = characterization.operating_points.point(PowerState.ON1)
        assert point.frequency_hz == 100e6
        assert point.voltage_v == 1.0

    def test_activity_overrides_merge_over_defaults(self):
        from repro.power.characterization import (
            DEFAULT_ACTIVITY,
            InstructionClass,
        )

        ipdef = IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1),
                      activity_by_class={"dsp": 3.0})
        characterization = build_characterization(ipdef)
        assert characterization.activity_by_class[InstructionClass.DSP] == 3.0
        assert (characterization.activity_by_class[InstructionClass.ALU]
                == DEFAULT_ACTIVITY[InstructionClass.ALU])

    def test_psm_latency_knobs_reach_the_table(self):
        ipdef = IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1),
                      psm=PsmDef(entry_latency_us={"SL1": 5.0},
                                 wakeup_latency_us={"SL1": 7.0}))
        table = build_transitions(ipdef, None)
        assert table.latency(PowerState.ON1, PowerState.SL1) == us(5.0)
        assert table.latency(PowerState.SL1, PowerState.ON1) == us(7.0)

    def test_explicit_transition_overrides_and_removals(self):
        ipdef = IpDef(
            name="a", workload=WorkloadDef(kind="periodic", task_count=1),
            psm=PsmDef(transitions=[
                TransitionDef("ON1", "SL1", energy_j=4.5e-6, latency_us=3.0),
                TransitionDef("ON1", "OFF", allowed=False),
            ]),
        )
        table = build_transitions(ipdef, None)
        assert table.energy_j(PowerState.ON1, PowerState.SL1) == 4.5e-6
        assert table.latency(PowerState.ON1, PowerState.SL1) == us(3.0)
        assert not table.is_allowed(PowerState.ON1, PowerState.OFF)
        # untouched defaults survive
        assert table.is_allowed(PowerState.ON1, PowerState.SL4)


class TestSetupResolution:
    def spec_with_policy(self, policy) -> PlatformSpec:
        return PlatformSpec(
            name="pol", policy=policy,
            ips=[IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1))],
        )

    def test_policy_def_builds_named_setups(self):
        assert build_dpm_setup(PolicyDef(name="paper")).name == "paper"
        assert build_dpm_setup(PolicyDef(name="always-on")).name == "always-on"
        assert build_dpm_setup(PolicyDef(name="oracle")).use_idle_hint
        timeout = build_dpm_setup(PolicyDef(name="fixed-timeout", timeout_ms=3.0))
        assert timeout.name == "fixed-timeout"

    def test_policy_lem_overrides(self):
        setup = build_dpm_setup(PolicyDef(name="paper", allow_off=False,
                                          reevaluation_interval_us=123.0,
                                          defer_state="SL2",
                                          estimation_state="ON2"))
        assert setup.lem_config.allow_off is False
        assert setup.lem_config.reevaluation_interval == us(123.0)
        assert setup.lem_config.defer_state is PowerState.SL2
        assert setup.lem_config.estimation_state is PowerState.ON2

    def test_none_setup_defers_to_spec_policy(self):
        scenario = to_scenario(self.spec_with_policy(PolicyDef(name="greedy-sleep")))
        resolved = platform_setup(scenario, None, DpmSetup.paper, use_policy=True)
        assert resolved.name == "greedy-sleep"
        # an explicit setup always wins over the spec's policy
        explicit = platform_setup(scenario, DpmSetup.oracle(), DpmSetup.paper,
                                  use_policy=True)
        assert explicit.name == "oracle"
        # the baseline role ignores the policy
        baseline = platform_setup(scenario, None, DpmSetup.always_on)
        assert baseline.name == "always-on"

    def test_gem_overrides_apply_to_any_setup(self):
        spec = PlatformSpec(
            name="gemmed",
            ips=[IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1))],
            gem=GemDef(enabled=True, high_priority_count=3, forced_state="SL3"),
        )
        scenario = to_scenario(spec)
        resolved = platform_setup(scenario, None, DpmSetup.paper, use_policy=True)
        assert resolved.gem_config.high_priority_count == 3
        assert resolved.gem_config.forced_state is PowerState.SL3
        baseline = platform_setup(scenario, DpmSetup.always_on(), DpmSetup.always_on)
        assert baseline.gem_config.high_priority_count == 3

    def test_plain_scenarios_are_untouched(self):
        scenario = single_ip_scenario("X", "full", "low")
        resolved = platform_setup(scenario, None, DpmSetup.paper, use_policy=True)
        assert resolved.name == "paper"
