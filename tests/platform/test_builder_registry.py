"""Tests for the fluent PlatformBuilder and the named-platform registry."""

import pytest

from repro.errors import ExperimentError, PlatformError
from repro.experiments.scenarios import scenario_by_name
from repro.platform import (
    PAPER_PLATFORM_NAMES,
    BatteryDef,
    GemDef,
    IpDef,
    PlatformBuilder,
    PlatformSpec,
    PolicyDef,
    ThermalDef,
    WorkloadDef,
    has_platform,
    paper_platforms,
    platform_by_name,
    platform_names,
    register_platform,
    unregister_platform,
)


@pytest.fixture
def clean_registry():
    """Track platforms registered during a test and drop them afterwards."""
    registered = []
    yield registered
    for name in registered:
        if has_platform(name):
            unregister_platform(name)


class TestBuilder:
    def test_builder_equals_handwritten_spec(self):
        built = (
            PlatformBuilder("mini")
            .describe("two IPs")
            .battery("low")
            .thermal("high", fan_resistance_scale=0.5)
            .gem(high_priority_count=1)
            .policy("paper", predictor="ewma")
            .max_time_ms(250)
            .sample_interval_us(500)
            .ip("a", workload={"kind": "high_activity", "task_count": 4, "seed": 1})
            .ip("b", workload=WorkloadDef(kind="low_activity", task_count=4, seed=2),
                priority=2, max_frequency_hz=100e6)
            .build()
        )
        manual = PlatformSpec(
            name="mini",
            description="two IPs",
            ips=[
                IpDef(name="a", workload=WorkloadDef(kind="high_activity",
                                                     task_count=4, seed=1)),
                IpDef(name="b", workload=WorkloadDef(kind="low_activity",
                                                     task_count=4, seed=2),
                      static_priority=2, max_frequency_hz=100e6),
            ],
            battery=BatteryDef(condition="low"),
            thermal=ThermalDef(condition="high", fan_resistance_scale=0.5),
            gem=GemDef(enabled=True, high_priority_count=1),
            policy=PolicyDef(name="paper", predictor="ewma"),
            max_time_ms=250.0,
            sample_interval_us=500.0,
        )
        assert built == manual

    def test_build_validates(self):
        with pytest.raises(PlatformError, match="defines no IPs"):
            PlatformBuilder("empty").build()

    def test_ip_requires_a_workload(self):
        with pytest.raises(PlatformError, match="workload is required"):
            PlatformBuilder("x").ip("a")

    def test_unknown_characterization_knob_is_actionable(self):
        with pytest.raises(PlatformError, match="'a'"):
            PlatformBuilder("x").ip(
                "a", workload={"kind": "periodic", "task_count": 1},
                maximum_frequency=1e6,
            )

    def test_builder_register(self, clean_registry):
        spec = (
            PlatformBuilder("bldr-reg")
            .ip("a", workload={"kind": "periodic", "task_count": 1})
            .register()
        )
        clean_registry.append("bldr-reg")
        assert platform_by_name("bldr-reg") == spec


class TestRegistry:
    def test_paper_platforms_are_registered(self):
        assert [spec.name for spec in paper_platforms()] == list(PAPER_PLATFORM_NAMES)
        assert has_platform("a1") and has_platform("C")

    def test_platform_by_name_returns_a_copy(self):
        first = platform_by_name("A1")
        first.ips[0].static_priority = 99
        assert platform_by_name("A1").ips[0].static_priority == 1

    def test_register_snapshots_the_spec(self, clean_registry):
        spec = PlatformSpec(name="snap-reg", ips=[
            IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1)),
        ])
        register_platform(spec)
        clean_registry.append("snap-reg")
        spec.ips.clear()  # caller keeps mutating its own object
        assert len(platform_by_name("snap-reg").ips) == 1

    def test_register_and_unregister(self, clean_registry):
        spec = PlatformSpec(name="custom-reg", ips=[
            IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1)),
        ])
        register_platform(spec)
        clean_registry.append("custom-reg")
        assert has_platform("CUSTOM-REG")
        assert "custom-reg" in platform_names()
        unregister_platform("custom-reg")
        assert not has_platform("custom-reg")

    def test_duplicate_registration_rejected(self, clean_registry):
        spec = PlatformSpec(name="dup-reg", ips=[
            IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1)),
        ])
        register_platform(spec)
        clean_registry.append("dup-reg")
        with pytest.raises(PlatformError, match="already registered"):
            register_platform(spec)
        register_platform(spec, overwrite=True)  # explicit overwrite is fine

    def test_paper_platforms_are_protected(self):
        with pytest.raises(PlatformError, match="built in"):
            register_platform(platform_by_name("A1"), overwrite=True)
        with pytest.raises(PlatformError, match="built in"):
            unregister_platform("B")

    def test_unknown_platform_error_lists_names(self):
        with pytest.raises(PlatformError) as excinfo:
            platform_by_name("nope")
        assert "A1" in str(excinfo.value)


class TestScenarioByName:
    def test_error_message_lists_valid_names(self):
        with pytest.raises(ExperimentError) as excinfo:
            scenario_by_name("Z1")
        message = str(excinfo.value)
        for name in PAPER_PLATFORM_NAMES:
            assert name in message

    def test_registered_platform_resolves(self, clean_registry):
        spec = PlatformSpec(name="byname-test", ips=[
            IpDef(name="a", workload=WorkloadDef(kind="periodic", task_count=1)),
        ])
        register_platform(spec)
        clean_registry.append("byname-test")
        scenario = scenario_by_name("BYNAME-TEST")
        assert scenario.name == "byname-test"
        assert scenario.spec == spec
