"""Tests for the thermal model, sensor, fan and level coding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ThermalError
from repro.power import EnergyAccount, EnergyLedger
from repro.sim import Simulator, ms, sec
from repro.thermal import (
    Fan,
    TemperatureLevel,
    TemperatureSensor,
    TemperatureThresholds,
    ThermalConfig,
    ThermalModel,
)


class TestLevels:
    def test_default_classification(self):
        thresholds = TemperatureThresholds()
        assert thresholds.classify(30.0) is TemperatureLevel.LOW
        assert thresholds.classify(60.0) is TemperatureLevel.MEDIUM
        assert thresholds.classify(90.0) is TemperatureLevel.HIGH

    def test_boundaries(self):
        thresholds = TemperatureThresholds(medium_c=50.0, high_c=70.0)
        assert thresholds.classify(49.999) is TemperatureLevel.LOW
        assert thresholds.classify(50.0) is TemperatureLevel.MEDIUM
        assert thresholds.classify(70.0) is TemperatureLevel.HIGH

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ThermalError):
            TemperatureThresholds(medium_c=80.0, high_c=70.0)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ThermalError):
            TemperatureThresholds().classify(-300.0)

    def test_representative_temperature_round_trip(self):
        thresholds = TemperatureThresholds()
        for level in TemperatureLevel:
            assert thresholds.classify(thresholds.representative_temperature(level)) is level

    def test_ordering_helpers(self):
        assert TemperatureLevel.LOW.at_most(TemperatureLevel.MEDIUM)
        assert not TemperatureLevel.HIGH.at_most(TemperatureLevel.MEDIUM)
        assert TemperatureLevel.HIGH.rank > TemperatureLevel.LOW.rank


class TestThermalModel:
    def test_zero_power_decays_to_ambient(self):
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=80.0))
        for _ in range(200):
            model.step(0.0, sec(1))
        assert model.temperature_c == pytest.approx(35.0, abs=0.5)

    def test_constant_power_approaches_steady_state(self):
        config = ThermalConfig(ambient_c=35.0, initial_c=35.0)
        model = ThermalModel(config)
        steady = model.steady_state_c(0.5)
        for _ in range(500):
            model.step(0.5, sec(1))
        assert model.temperature_c == pytest.approx(steady, abs=0.5)
        assert steady == pytest.approx(35.0 + 0.5 * config.thermal_resistance_c_per_w)

    def test_fan_reduces_steady_state(self):
        model = ThermalModel()
        hot = model.steady_state_c(1.0)
        model.set_fan(True)
        cooled = model.steady_state_c(1.0)
        assert cooled < hot
        assert model.fan_on

    def test_peak_and_average_tracking(self):
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=35.0))
        for _ in range(50):
            model.step(1.0, sec(1))
        for _ in range(50):
            model.step(0.0, sec(1))
        assert model.peak_c > model.temperature_c
        assert 35.0 < model.average_c < model.peak_c
        assert model.average_rise_c > 0.0

    def test_estimate_after_is_pure(self):
        model = ThermalModel()
        before = model.temperature_c
        estimate = model.estimate_after(1.0, sec(10))
        assert model.temperature_c == before
        assert estimate > before

    def test_step_is_unconditionally_stable(self):
        # Huge time step must not overshoot the steady-state temperature.
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=35.0))
        steady = model.steady_state_c(2.0)
        model.step(2.0, sec(1e6))
        assert model.temperature_c == pytest.approx(steady, rel=1e-6)

    def test_invalid_inputs_rejected(self):
        model = ThermalModel()
        with pytest.raises(ThermalError):
            model.step(-1.0, sec(1))
        with pytest.raises(ThermalError):
            model.steady_state_c(-1.0)
        with pytest.raises(ThermalError):
            model.estimate_after(-1.0, sec(1))
        with pytest.raises(ThermalError):
            ThermalConfig(thermal_resistance_c_per_w=0.0)
        with pytest.raises(ThermalError):
            ThermalConfig(fan_resistance_scale=0.0)
        with pytest.raises(ThermalError):
            ThermalConfig(ambient_c=40.0, initial_c=30.0)

    def test_snapshot_keys(self):
        snapshot = ThermalModel().snapshot()
        assert {"temperature_c", "peak_c", "average_c", "level", "fan_on"} <= set(snapshot)

    @given(st.floats(min_value=0.0, max_value=5.0), st.integers(min_value=1, max_value=200))
    def test_temperature_never_below_ambient(self, power, steps):
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=35.0))
        for _ in range(steps):
            model.step(power, sec(1))
        assert model.temperature_c >= 35.0 - 1e-9

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_temperature_bounded_by_steady_state(self, power):
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=35.0))
        steady = model.steady_state_c(power)
        for _ in range(100):
            model.step(power, sec(5))
            assert model.temperature_c <= steady + 1e-6


class TestSensorAndFan:
    def test_sensor_heats_up_with_consumption(self):
        sim = Simulator()
        ledger = EnergyLedger()
        model = ThermalModel(ThermalConfig(ambient_c=35.0, initial_c=35.0))
        sensor = TemperatureSensor(sim.kernel, "sensor", model, ledger, sample_interval=ms(1))
        sim.add_module(sensor)

        def heater():
            while True:
                yield ms(1)
                ledger.account("ip0").add_energy(0.0005)  # 0.5 W average

        sim.kernel.create_thread(heater, "heater")
        sim.run(sec(2))
        assert sensor.temperature_c > 40.0
        assert sensor.level in (TemperatureLevel.MEDIUM, TemperatureLevel.HIGH)
        assert len(sensor.history) > 100

    def test_sensor_sample_now(self):
        sim = Simulator()
        ledger = EnergyLedger()
        model = ThermalModel()
        sensor = TemperatureSensor(sim.kernel, "sensor", model, ledger)
        sim.add_module(sensor)
        assert sensor.sample_now() is model.level

    def test_sensor_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ThermalError):
            TemperatureSensor(sim.kernel, "sensor", ThermalModel(), EnergyLedger(), sample_interval=ms(0))

    def test_fan_charges_energy_while_on(self):
        sim = Simulator()
        model = ThermalModel()
        account = EnergyAccount("fan")
        fan = Fan(sim.kernel, "fan", model, account, power_w=0.1)
        sim.add_module(fan)

        def controller():
            fan.set_on(True)
            yield sec(1)
            fan.set_on(False)
            yield sec(1)

        sim.kernel.create_thread(controller, "controller")
        sim.run(sec(3))
        fan.flush_energy()
        assert account.total_j == pytest.approx(0.1, rel=1e-6)
        assert fan.total_on_time.seconds == pytest.approx(1.0, rel=1e-6)
        assert model.fan_on is False
        assert [on for _, on in fan.switch_history] == [True, False]

    def test_fan_negative_power_rejected(self):
        sim = Simulator()
        with pytest.raises(ThermalError):
            Fan(sim.kernel, "fan", ThermalModel(), EnergyAccount("fan"), power_w=-1.0)

    def test_fan_set_same_state_is_noop(self):
        sim = Simulator()
        fan = Fan(sim.kernel, "fan", ThermalModel(), EnergyAccount("fan"))
        sim.add_module(fan)
        fan.set_on(False)
        assert fan.switch_history == []
