"""Tests for the Table-1 rule engine.

The class ``TestPaperTable1Rows`` checks every row of the paper's table
verbatim, which doubles as the reproduction artefact for Table 1.
"""

import pytest
from hypothesis import given, strategies as st

from repro.dpm import (
    BatteryLevel,
    BusLevel,
    Rule,
    RuleContext,
    RuleTable,
    TaskPriority,
    TemperatureLevel,
    paper_rule_table,
)
from repro.errors import RuleError
from repro.power import PowerState

P = TaskPriority
B = BatteryLevel
T = TemperatureLevel
S = PowerState


@pytest.fixture(scope="module")
def table():
    return paper_rule_table()


class TestRuleMatching:
    def test_wildcards_match_everything(self):
        rule = Rule.of(S.ON1)
        assert rule.matches(RuleContext(P.LOW, B.EMPTY, T.HIGH))
        assert rule.matches(RuleContext(P.VERY_HIGH, B.FULL, T.LOW))

    def test_specific_fields_filter(self):
        rule = Rule.of(S.ON2, priorities=[P.HIGH], batteries=[B.FULL], temperatures=[T.LOW])
        assert rule.matches(RuleContext(P.HIGH, B.FULL, T.LOW))
        assert not rule.matches(RuleContext(P.LOW, B.FULL, T.LOW))
        assert not rule.matches(RuleContext(P.HIGH, B.LOW, T.LOW))
        assert not rule.matches(RuleContext(P.HIGH, B.FULL, T.HIGH))

    def test_describe_renders_wildcards(self):
        rule = Rule.of(S.ON4, priorities=None, batteries=[B.LOW], temperatures=None, label="x")
        text = rule.describe()
        assert "-" in text and "ON4" in text and "low" in text

    def test_off_state_rejected_in_table(self):
        with pytest.raises(RuleError):
            RuleTable([Rule.of(S.OFF)])

    def test_empty_table_rejected(self):
        with pytest.raises(RuleError):
            RuleTable([])


class TestRuleTableSemantics:
    def test_first_match_wins(self):
        table = RuleTable(
            [
                Rule.of(S.ON4, priorities=[P.LOW]),
                Rule.of(S.ON1),
            ]
        )
        assert table.select(RuleContext(P.LOW, B.FULL, T.LOW)) is S.ON4
        assert table.select(RuleContext(P.HIGH, B.FULL, T.LOW)) is S.ON1

    def test_no_match_raises(self):
        table = RuleTable([Rule.of(S.ON1, priorities=[P.VERY_HIGH])])
        with pytest.raises(RuleError):
            table.select(RuleContext(P.LOW, B.FULL, T.LOW))

    def test_hit_counts_recorded(self):
        table = RuleTable([Rule.of(S.ON1)])
        table.select(RuleContext(P.LOW, B.FULL, T.LOW))
        table.select(RuleContext(P.HIGH, B.LOW, T.LOW))
        assert table.hit_counts[0] == 2

    def test_uncovered_contexts_detection(self):
        table = RuleTable([Rule.of(S.ON1, temperatures=[T.LOW])])
        assert not table.is_total()
        missing = table.uncovered_contexts()
        assert all(context.temperature is not T.LOW for context in missing)

    def test_unreachable_rule_detection(self):
        table = RuleTable(
            [
                Rule.of(S.ON1),
                Rule.of(S.ON4, priorities=[P.LOW]),  # shadowed by the wildcard above
            ]
        )
        assert table.unreachable_rules() == [1]

    def test_serialisation_round_trip(self, table):
        rebuilt = RuleTable.from_dicts(table.as_dicts(), name="rebuilt")
        for priority in P:
            for battery in B:
                for temperature in T:
                    context = RuleContext(priority, battery, temperature)
                    assert rebuilt.select(context) is table.select(context)

    def test_describe_lists_all_rules(self, table):
        text = table.describe()
        assert text.count("\n") == len(table.rules) - 1
        assert "t1-row1" in text


class TestPaperTable1Rows:
    """Every row of the paper's Table 1, in the paper's notation."""

    def test_row1_very_high_empty_battery(self, table):
        for temp in T:
            assert table.select_levels(P.VERY_HIGH, B.EMPTY, temp) is S.ON4

    def test_row2_very_high_hot_chip(self, table):
        for battery in (B.FULL, B.HIGH, B.MEDIUM, B.LOW, B.EMPTY):
            assert table.select_levels(P.VERY_HIGH, battery, T.HIGH) is S.ON4

    def test_row3_other_priorities_empty_battery(self, table):
        for priority in (P.HIGH, P.MEDIUM, P.LOW):
            assert table.select_levels(priority, B.EMPTY, T.LOW) is S.SL1
            assert table.select_levels(priority, B.EMPTY, T.MEDIUM) is S.SL1

    def test_row4_other_priorities_hot_chip(self, table):
        for priority in (P.HIGH, P.MEDIUM, P.LOW):
            for battery in (B.FULL, B.HIGH, B.MEDIUM, B.LOW):
                assert table.select_levels(priority, battery, T.HIGH) is S.SL1

    def test_row5_low_battery(self, table):
        for priority in P:
            for temp in (T.LOW, T.MEDIUM):
                assert table.select_levels(priority, B.LOW, temp) is S.ON4

    def test_row7_to_row10_battery_medium_high_temperature_low(self, table):
        for battery in (B.MEDIUM, B.HIGH):
            assert table.select_levels(P.VERY_HIGH, battery, T.LOW) is S.ON1
            assert table.select_levels(P.HIGH, battery, T.LOW) is S.ON2
            assert table.select_levels(P.MEDIUM, battery, T.LOW) is S.ON3
            assert table.select_levels(P.LOW, battery, T.LOW) is S.ON4

    def test_row11_row12_battery_full_temperature_low(self, table):
        for priority in (P.VERY_HIGH, P.HIGH, P.MEDIUM):
            assert table.select_levels(priority, B.FULL, T.LOW) is S.ON1
        assert table.select_levels(P.LOW, B.FULL, T.LOW) is S.ON2

    def test_row13_power_supply(self, table):
        for priority in P:
            for temp in (T.LOW, T.MEDIUM):
                assert table.select_levels(priority, B.AC_POWER, temp) is S.ON1

    def test_completion_rules_only_fire_outside_paper_rows(self, table):
        # The completion rows cover battery >= Medium with temperature Medium.
        assert table.select_levels(P.VERY_HIGH, B.MEDIUM, T.MEDIUM) is S.ON1
        assert table.select_levels(P.HIGH, B.HIGH, T.MEDIUM) is S.ON2
        assert table.select_levels(P.MEDIUM, B.FULL, T.MEDIUM) is S.ON1
        assert table.select_levels(P.LOW, B.FULL, T.MEDIUM) is S.ON2
        assert table.select_levels(P.LOW, B.MEDIUM, T.MEDIUM) is S.ON4


class TestPaperTableProperties:
    def test_table_is_total(self, table):
        assert table.is_total()
        assert table.uncovered_contexts() == []

    def test_no_unreachable_rules_except_row6(self, table):
        # Row 6 of the paper ("- E M -> ON4") is shadowed by rows 1 and 3,
        # which already cover every priority with an empty battery.  We keep
        # it for fidelity; everything else must be reachable.
        unreachable = table.unreachable_rules()
        labels = [table.rules[i].label for i in unreachable]
        assert labels in ([], ["t1-row6"])

    @given(
        priority=st.sampled_from(list(P)),
        battery=st.sampled_from(list(B)),
        temperature=st.sampled_from(list(T)),
    )
    def test_total_and_deterministic(self, priority, battery, temperature):
        table = paper_rule_table()
        first = table.select_levels(priority, battery, temperature)
        second = table.select_levels(priority, battery, temperature)
        assert first is second
        assert first.is_on or first is S.SL1

    @given(
        battery=st.sampled_from([B.EMPTY, B.LOW, B.MEDIUM, B.HIGH, B.FULL]),
        temperature=st.sampled_from(list(T)),
    )
    def test_very_high_priority_always_executes(self, battery, temperature):
        """A Very-high-priority task is never parked in a sleep state."""
        table = paper_rule_table()
        assert table.select_levels(P.VERY_HIGH, battery, temperature).is_on

    @given(temperature=st.sampled_from([T.LOW, T.MEDIUM]))
    def test_better_battery_never_slows_execution(self, temperature):
        """For the same priority/temperature, a fuller battery never selects a
        slower ON state than an emptier one (monotonicity of the table)."""
        table = paper_rule_table()
        ordered_batteries = [B.LOW, B.MEDIUM, B.HIGH, B.FULL]
        for priority in P:
            ranks = []
            for battery in ordered_batteries:
                state = table.select_levels(priority, battery, temperature)
                ranks.append(state.performance_rank if state.is_on else -1)
            kept = [rank for rank in ranks if rank >= 0]
            assert kept == sorted(kept)


class TestBusDimension:
    """Bus-occupation conditioning: the fourth rule-table input class."""

    def test_context_defaults_to_low_bus(self):
        context = RuleContext(P.HIGH, B.FULL, T.LOW)
        assert context.bus is BusLevel.LOW
        assert "bus=low" in context.describe()

    def test_bus_wildcard_rules_ignore_the_bus(self, table):
        for bus in BusLevel:
            assert table.select(
                RuleContext(P.HIGH, B.FULL, T.LOW, bus=bus)
            ) is table.select(RuleContext(P.HIGH, B.FULL, T.LOW))

    def test_bus_constrained_rule_fires_only_on_matching_level(self):
        throttle = RuleTable(
            [
                Rule.of(S.ON4, buses=[BusLevel.HIGH], label="bus-throttle"),
                Rule.of(S.ON1, label="default"),
            ],
            name="bus-aware",
        )
        low = RuleContext(P.HIGH, B.FULL, T.LOW, bus=BusLevel.LOW)
        saturated = RuleContext(P.HIGH, B.FULL, T.LOW, bus=BusLevel.HIGH)
        assert throttle.select(low) is S.ON1
        assert throttle.select(saturated) is S.ON4
        # The first-match cache must key on the bus level too: repeat reads
        # with both levels stay distinct.
        assert throttle.select(saturated) is S.ON4
        assert throttle.select(low) is S.ON1

    def test_coverage_checks_enumerate_the_bus_dimension(self):
        partial = RuleTable(
            [Rule.of(S.ON1, buses=[BusLevel.LOW, BusLevel.MEDIUM])],
            name="bus-partial",
        )
        assert not partial.is_total()
        missing = partial.uncovered_contexts()
        assert missing and all(ctx.bus is BusLevel.HIGH for ctx in missing)
        # A bus-agnostic table only visits the default LOW level.
        assert paper_rule_table().is_total()

    def test_bus_rules_round_trip_through_dicts(self):
        table = RuleTable(
            [
                Rule.of(S.ON3, priorities=[P.LOW], buses=[BusLevel.HIGH], label="r0"),
                Rule.of(S.ON1, label="fallback"),
            ],
            name="bus-serialized",
        )
        rebuilt = RuleTable.from_dicts(table.as_dicts(), name="bus-serialized")
        assert rebuilt.as_dicts() == table.as_dicts()
        assert rebuilt.select(
            RuleContext(P.LOW, B.FULL, T.LOW, bus=BusLevel.HIGH)
        ) is S.ON3

    def test_describe_renders_the_bus_set(self):
        rule = Rule.of(S.ON4, buses=[BusLevel.HIGH])
        assert "bus(high)" in rule.describe()
