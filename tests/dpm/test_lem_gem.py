"""Tests for the Local Energy Manager and the Global Energy Manager."""

import pytest

from repro.battery import BatteryConfig
from repro.dpm import BusLevel, DpmSetup, GemConfig, LemConfig
from repro.errors import ConfigurationError
from repro.power import PowerState
from repro.sim import ms, sec, us
from repro.soc import IpSpec, SocConfig, Task, TaskPriority, Workload, WorkloadItem, build_soc, periodic_workload
from repro.thermal import ThermalConfig


def workload_with_priorities(priorities, cycles=100_000, idle=ms(2)):
    items = [
        WorkloadItem(Task(f"t{i}", cycles, priority), idle)
        for i, priority in enumerate(priorities)
    ]
    return Workload(items=items, name="priorities")


def build_single_ip_soc(
    workload,
    dpm=None,
    battery_soc=0.95,
    thermal=None,
    use_gem=False,
    priorities=(1,),
):
    specs = [
        IpSpec(name=f"ip{i}", workload=workload, static_priority=priority)
        for i, priority in enumerate(priorities)
    ]
    config = SocConfig(
        battery=BatteryConfig(capacity_j=250.0, initial_state_of_charge=battery_soc),
        thermal=thermal or ThermalConfig(ambient_c=35.0, initial_c=35.0),
        use_gem=use_gem,
    )
    return build_soc(specs, config, dpm or DpmSetup.paper())


class TestLemConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LemConfig(reevaluation_interval=ms(0))
        with pytest.raises(ConfigurationError):
            LemConfig(defer_state=PowerState.ON1)
        with pytest.raises(ConfigurationError):
            LemConfig(estimation_state=PowerState.SL1)


class TestLemTaskServing:
    def test_selects_states_from_rules_full_battery(self):
        workload = workload_with_priorities(
            [TaskPriority.VERY_HIGH, TaskPriority.HIGH, TaskPriority.MEDIUM, TaskPriority.LOW]
        )
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(1))
        decisions = soc.instance("ip0").lem.decisions
        # Battery Full + temperature Low: rows 11/12 of Table 1.
        assert [d.selected_state for d in decisions] == [
            PowerState.ON1,
            PowerState.ON1,
            PowerState.ON1,
            PowerState.ON2,
        ]

    def test_selects_on4_with_low_battery(self):
        workload = workload_with_priorities(
            [TaskPriority.VERY_HIGH, TaskPriority.HIGH, TaskPriority.LOW]
        )
        soc = build_single_ip_soc(workload, battery_soc=0.20)
        soc.run_until_done(max_time=sec(1))
        decisions = soc.instance("ip0").lem.decisions
        assert all(d.selected_state is PowerState.ON4 for d in decisions)

    def test_grant_records_waiting_time(self):
        workload = periodic_workload(task_count=3, cycles=100_000, idle=ms(4))
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(1))
        decisions = soc.instance("ip0").lem.decisions
        assert len(decisions) == 3
        # The later tasks must pay a wake-up latency (the IP slept in between).
        assert decisions[1].waiting_time.femtoseconds > 0

    def test_executions_track_delay_overhead(self):
        workload = periodic_workload(
            task_count=3, cycles=100_000, idle=ms(2), priority=TaskPriority.LOW
        )
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(1))
        executions = soc.instance("ip0").ip.executions
        # LOW priority with a Full battery runs at ON2 (1.33x slower).
        for record in executions:
            assert record.power_state is PowerState.ON2
            assert record.delay_overhead > 0.25

    def test_single_outstanding_request_enforced(self):
        workload = periodic_workload(task_count=1, cycles=1000)
        soc = build_single_ip_soc(workload)
        soc.simulator.elaborate()
        lem = soc.instance("ip0").lem
        lem.submit_task_request(Task("extra", 1000))
        with pytest.raises(ConfigurationError):
            lem.submit_task_request(Task("extra2", 1000))

    def test_force_low_power_rejected_for_on_state(self):
        workload = periodic_workload(task_count=1, cycles=1000)
        soc = build_single_ip_soc(workload)
        lem = soc.instance("ip0").lem
        with pytest.raises(ConfigurationError):
            lem.force_low_power(PowerState.ON2)

    def test_static_priority_validation(self):
        with pytest.raises(ConfigurationError):
            IpSpec(name="x", workload=periodic_workload(1), static_priority=0)


class TestLemIdleManagement:
    def test_long_idle_puts_ip_to_sleep(self):
        workload = periodic_workload(task_count=4, cycles=50_000, idle=ms(8))
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(2))
        psm = soc.instance("ip0").psm
        residency = psm.residency()
        sleep_time = sum(
            (duration.seconds for state, duration in residency.items() if not state.is_on), 0.0
        )
        assert sleep_time > 0.01
        assert soc.instance("ip0").lem.sleep_decisions > 0

    def test_short_idles_stop_triggering_sleep_once_trained(self):
        # 20 us gaps are far below every break-even time.  The cold-start
        # predictor may mispredict the first few idles, but once trained the
        # LEM must stop paying for useless sleep transitions.
        workload = periodic_workload(task_count=10, cycles=50_000, idle=us(20))
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(1))
        psm = soc.instance("ip0").psm
        sleep_entries = sum(
            count
            for key, count in psm.transition_counts.items()
            if "->SL" in key or "->OFF" in key
        )
        assert sleep_entries <= 4  # only the early mispredictions

    def test_timeout_policy_sleeps_after_timeout(self):
        workload = periodic_workload(task_count=3, cycles=50_000, idle=ms(6))
        soc = build_single_ip_soc(workload, dpm=DpmSetup.fixed_timeout(ms(2), PowerState.SL2))
        soc.run_until_done(max_time=sec(1))
        psm = soc.instance("ip0").psm
        assert any("->SL2" in key for key in psm.transition_counts)

    def test_oracle_policy_uses_hint(self):
        # Idle gaps far below any break-even time: the oracle must never sleep,
        # even though the (untrained) predictor would have guessed 1 ms.
        workload = periodic_workload(task_count=5, cycles=50_000, idle=us(40))
        soc = build_single_ip_soc(workload, dpm=DpmSetup.oracle())
        soc.run_until_done(max_time=sec(1))
        psm = soc.instance("ip0").psm
        assert all("SL" not in key and "OFF" not in key for key in psm.transition_counts)

    def test_predictor_trained_with_observed_idles(self):
        workload = periodic_workload(task_count=6, cycles=50_000, idle=ms(3))
        soc = build_single_ip_soc(workload)
        soc.run_until_done(max_time=sec(1))
        predictor = soc.instance("ip0").lem.predictor
        assert predictor.observation_count == 5  # gaps between 6 tasks
        assert predictor.predict().seconds == pytest.approx(3e-3, rel=0.2)


class TestGem:
    def make_multi_ip_soc(self, battery_soc, priorities=(1, 2, 3, 4), idle=ms(2), dpm=None):
        workload = periodic_workload(task_count=3, cycles=100_000, idle=idle)
        specs = [
            IpSpec(name=f"ip{p}", workload=workload, static_priority=p) for p in priorities
        ]
        config = SocConfig(
            battery=BatteryConfig(capacity_j=250.0, initial_state_of_charge=battery_soc),
            thermal=ThermalConfig(ambient_c=35.0, initial_c=35.0, thermal_resistance_c_per_w=15.0),
            use_gem=True,
        )
        return build_soc(specs, config, dpm or DpmSetup.paper())

    def test_gem_config_validation(self):
        with pytest.raises(ConfigurationError):
            GemConfig(high_priority_count=0)
        with pytest.raises(ConfigurationError):
            GemConfig(evaluation_interval=ms(0))
        with pytest.raises(ConfigurationError):
            GemConfig(forced_state=PowerState.ON1)

    def test_all_enabled_with_good_battery(self):
        soc = self.make_multi_ip_soc(battery_soc=0.95)
        soc.run_until_done(max_time=sec(1))
        assert soc.all_done
        assert all(soc.gem.enabled_map.values())
        assert soc.gem.fan_activations == 0

    def test_low_battery_restricts_low_priority(self):
        soc = self.make_multi_ip_soc(battery_soc=0.20)
        soc.simulator.elaborate()
        soc.simulator.run(ms(1))
        enabled = soc.gem.enabled_map
        assert enabled["ip1"] and enabled["ip2"]
        # ip3/ip4 may be temporarily disabled while higher-priority requests wait.
        assert soc.gem.evaluation_count > 0
        soc.run_until_done(max_time=sec(2))
        assert soc.all_done  # low-priority IPs are delayed, not starved

    def test_pending_energy_bookkeeping(self):
        soc = self.make_multi_ip_soc(battery_soc=0.95)
        soc.simulator.elaborate()
        gem = soc.gem
        gem.register_request("ip1", 0.5)
        gem.register_request("ip2", 0.25)
        assert gem.pending_energy_excluding("ip1") == pytest.approx(0.25)
        assert gem.pending_energy_excluding("ip3") == pytest.approx(0.75)
        gem.clear_request("ip1")
        assert gem.pending_energy_excluding("ip3") == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            gem.register_request("ghost", 0.1)
        with pytest.raises(ConfigurationError):
            gem.register_request("ip1", -1.0)
        with pytest.raises(ConfigurationError):
            gem.clear_request("ghost")

    def test_priority_registration(self):
        soc = self.make_multi_ip_soc(battery_soc=0.95)
        assert soc.gem.priority_of("ip1") == 1
        assert soc.gem.priority_of("ip4") == 4
        assert set(soc.gem.ip_names) == {"ip1", "ip2", "ip3", "ip4"}
        with pytest.raises(ConfigurationError):
            soc.gem.priority_of("ghost")

    def test_duplicate_lem_registration_rejected(self):
        soc = self.make_multi_ip_soc(battery_soc=0.95)
        lem = soc.instance("ip1").lem
        with pytest.raises(ConfigurationError):
            soc.gem.register_lem(lem, 1)

    def test_fan_switched_on_in_thermal_emergency(self):
        # Start the chip above the High threshold with an empty-ish battery:
        # the GEM's third branch must disable everything and start the fan.
        workload = periodic_workload(task_count=2, cycles=50_000, idle=ms(1))
        specs = [IpSpec(name="ip1", workload=workload, static_priority=1)]
        config = SocConfig(
            battery=BatteryConfig(capacity_j=250.0, initial_state_of_charge=0.20),
            thermal=ThermalConfig(ambient_c=70.0, initial_c=90.0),
            use_gem=True,
        )
        soc = build_soc(specs, config, DpmSetup.paper())
        soc.run_until_done(max_time=sec(2))
        assert soc.gem.fan_activations > 0
        assert soc.fan.total_on_time.femtoseconds > 0

    def test_low_battery_run_prefers_slow_states(self):
        soc = self.make_multi_ip_soc(battery_soc=0.20, idle=ms(6))
        soc.run_until_done(max_time=sec(3))
        assert soc.all_done
        for name in ("ip1", "ip2", "ip3", "ip4"):
            decisions = soc.instance(name).lem.decisions
            assert decisions
            assert all(d.selected_state is PowerState.ON4 for d in decisions)


class TestBusAwareResourceView:
    """The GEM's resource view and the LEM context include bus occupation."""

    def make_bus_soc(self, timing="event_driven", words=4096):
        workload = periodic_workload(task_count=3, cycles=100_000, idle=ms(1))
        specs = [
            IpSpec(name=f"ip{p}", workload=workload, static_priority=p,
                   bus_words_per_task=words)
            for p in (1, 2)
        ]
        config = SocConfig(
            use_gem=True,
            with_bus=True,
            bus_words_per_second=2e6,
            bus_timing=timing,
            bus_words_per_cycle=8,
        )
        return build_soc(specs, config, DpmSetup.paper())

    def test_resource_view_without_a_bus(self):
        workload = periodic_workload(task_count=1, cycles=50_000, idle=ms(1))
        soc = build_soc(
            [IpSpec(name="ip0", workload=workload)],
            SocConfig(use_gem=True),
            DpmSetup.paper(),
        )
        soc.run_until_done(max_time=sec(1))
        view = soc.gem.resource_view()
        assert view.bus is BusLevel.LOW
        assert view.bus_occupancy == 0.0
        assert view.battery is soc.battery.level
        assert view.temperature is soc.thermal.level
        assert "bus=low" in view.describe()

    def test_resource_view_reports_bus_occupation(self):
        soc = self.make_bus_soc()
        soc.run_until_done(max_time=sec(1))
        assert soc.all_done
        view = soc.gem.resource_view()
        assert view.bus_occupancy > 0.0
        assert view.bus is soc.bus.occupancy_level()
        assert soc.gem.bus_level() is soc.bus.occupancy_level()
        assert soc.bus.stats.transfer_count == 6  # 2 IPs x 3 tasks

    def test_lem_context_records_the_bus_level(self):
        soc = self.make_bus_soc()
        soc.run_until_done(max_time=sec(1))
        decisions = [d for lem in soc.lems for d in lem.decisions]
        assert decisions
        levels = {decision.bus for decision in decisions}
        assert levels <= {"low", "medium", "high"}
        # Heavy per-task traffic on a slow bus: at least one decision was
        # taken while the bus was measurably occupied.
        assert soc.bus.occupancy() > 0.0

    def test_cycle_accurate_bus_soc_runs_end_to_end(self):
        soc = self.make_bus_soc(timing="cycle_accurate")
        soc.run_until_done(max_time=sec(1))
        assert soc.all_done
        # Batched arbitration: the CA bus owns a clock but never
        # materialises it — edges are computed analytically.
        assert soc.bus.clock is not None and not soc.bus.clock.is_materialized
        assert soc.bus.stats.transfer_count == 6
