"""Tests for idle-time predictors and DPM policies."""

import pytest
from hypothesis import given, strategies as st

from repro.dpm import (
    AdaptivePredictor,
    AlwaysOnPolicy,
    BatteryLevel,
    DpmSetup,
    ExponentialAveragePredictor,
    FixedPredictor,
    FixedTimeoutPolicy,
    GreedySleepPolicy,
    LastValuePredictor,
    OraclePolicy,
    RuleBasedPolicy,
    RuleContext,
    TaskPriority,
    TemperatureLevel,
    default_predictor,
)
from repro.errors import ConfigurationError
from repro.power import (
    BreakEvenAnalyzer,
    PowerState,
    default_characterization,
    default_transition_table,
)
from repro.sim import SimTime, ms, sec, us


@pytest.fixture(scope="module")
def analyzer():
    return BreakEvenAnalyzer(default_characterization(), default_transition_table())


def context(priority=TaskPriority.MEDIUM, battery=BatteryLevel.FULL, temp=TemperatureLevel.LOW):
    return RuleContext(priority, battery, temp)


class TestPredictors:
    def test_fixed_predictor(self):
        predictor = FixedPredictor(ms(2))
        assert predictor.predict() == ms(2)
        predictor.update(ms(10))
        assert predictor.predict() == ms(2)
        assert predictor.observation_count == 1

    def test_last_value_predictor(self):
        predictor = LastValuePredictor(initial=ms(1))
        assert predictor.predict() == ms(1)
        predictor.update(ms(4))
        assert predictor.predict() == ms(4)
        predictor.reset()
        assert predictor.predict() == ms(1)

    def test_ewma_converges_to_constant_input(self):
        predictor = ExponentialAveragePredictor(alpha=0.5, initial=ms(1))
        for _ in range(20):
            predictor.update(ms(8))
        assert predictor.predict().seconds == pytest.approx(0.008, rel=1e-3)

    def test_ewma_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialAveragePredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialAveragePredictor(alpha=1.5)

    def test_adaptive_clamps_to_bounds(self):
        predictor = AdaptivePredictor(floor=us(100), ceiling=ms(2), initial=ms(1))
        for _ in range(50):
            predictor.update(sec(1))
        assert predictor.predict() == ms(2)
        for _ in range(50):
            predictor.update(us(1))
        assert predictor.predict() == us(100)

    def test_adaptive_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptivePredictor(grow_factor=0.5)
        with pytest.raises(ConfigurationError):
            AdaptivePredictor(shrink_factor=0.0)
        with pytest.raises(ConfigurationError):
            AdaptivePredictor(floor=ms(10), ceiling=ms(1))

    def test_mean_absolute_error_tracking(self):
        predictor = LastValuePredictor(initial=ms(1))
        assert predictor.mean_absolute_error() is None
        predictor.predict()
        predictor.update(ms(3))
        predictor.predict()
        predictor.update(ms(3))
        error = predictor.mean_absolute_error()
        assert error is not None
        assert error.seconds == pytest.approx(0.001, rel=1e-6)

    def test_default_predictor_is_ewma(self):
        assert isinstance(default_predictor(), ExponentialAveragePredictor)

    @given(st.lists(st.integers(min_value=1, max_value=10**7), min_size=1, max_size=50))
    def test_ewma_prediction_bounded_by_observations(self, idles_us):
        predictor = ExponentialAveragePredictor(alpha=0.5, initial=us(idles_us[0]))
        for value in idles_us:
            predictor.update(us(value))
        prediction = predictor.predict()
        assert us(min(idles_us)).femtoseconds <= prediction.femtoseconds <= us(max(idles_us)).femtoseconds + 1

    @given(
        st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=30),
        st.sampled_from(["fixed", "last-value", "ewma", "adaptive"]),
    )
    def test_all_predictors_return_valid_times(self, idles_us, kind):
        factories = {
            "fixed": FixedPredictor,
            "last-value": LastValuePredictor,
            "ewma": ExponentialAveragePredictor,
            "adaptive": AdaptivePredictor,
        }
        predictor = factories[kind]()
        for value in idles_us:
            predictor.update(us(value))
            prediction = predictor.predict()
            assert isinstance(prediction, SimTime)
            assert prediction.femtoseconds >= 0


class TestPolicies:
    def test_rule_based_policy_uses_table1(self, analyzer):
        policy = RuleBasedPolicy()
        assert policy.select_on_state(context(TaskPriority.VERY_HIGH)) is PowerState.ON1
        assert policy.select_on_state(context(TaskPriority.LOW)) is PowerState.ON2
        assert (
            policy.select_on_state(context(TaskPriority.LOW, BatteryLevel.EMPTY))
            is PowerState.SL1
        )

    def test_rule_based_idle_uses_breakeven(self, analyzer):
        policy = RuleBasedPolicy()
        assert policy.select_idle_state(us(1), analyzer) is None
        assert policy.select_idle_state(sec(10), analyzer) in (PowerState.SL4, PowerState.OFF)

    def test_rule_based_allow_off_false(self, analyzer):
        policy = RuleBasedPolicy(allow_off=False)
        state = policy.select_idle_state(sec(100), analyzer)
        assert state is PowerState.SL4

    def test_always_on_policy(self, analyzer):
        policy = AlwaysOnPolicy()
        assert policy.select_on_state(context(TaskPriority.LOW, BatteryLevel.EMPTY)) is PowerState.ON1
        assert policy.select_idle_state(sec(10), analyzer) is None

    def test_greedy_sleep_policy(self, analyzer):
        policy = GreedySleepPolicy()
        assert policy.select_on_state(context(TaskPriority.LOW, BatteryLevel.LOW)) is PowerState.ON1
        assert policy.select_idle_state(sec(10), analyzer) is not None

    def test_fixed_timeout_policy(self, analyzer):
        policy = FixedTimeoutPolicy(timeout=ms(3), sleep_state=PowerState.SL3)
        assert policy.uses_timeout
        assert policy.idle_timeout == ms(3)
        assert policy.select_on_state(context()) is PowerState.ON1
        assert policy.select_idle_state(us(1), analyzer) is PowerState.SL3

    def test_fixed_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            FixedTimeoutPolicy(sleep_state=PowerState.ON2)
        with pytest.raises(ConfigurationError):
            FixedTimeoutPolicy(on_state=PowerState.SL1)

    def test_oracle_policy_flags(self, analyzer):
        policy = OraclePolicy()
        assert policy.uses_idle_hint
        assert policy.select_on_state(context()) is PowerState.ON1
        assert policy.select_idle_state(sec(1), analyzer) is not None


class TestDpmSetup:
    def test_paper_preset(self):
        setup = DpmSetup.paper()
        policy = setup.make_policy()
        assert isinstance(policy, RuleBasedPolicy)
        assert setup.make_policy() is not policy  # fresh instance per LEM

    def test_named_presets(self):
        assert isinstance(DpmSetup.always_on().make_policy(), AlwaysOnPolicy)
        assert isinstance(DpmSetup.greedy_sleep().make_policy(), GreedySleepPolicy)
        assert isinstance(DpmSetup.oracle().make_policy(), OraclePolicy)
        timeout_setup = DpmSetup.fixed_timeout(ms(5), PowerState.SL3)
        policy = timeout_setup.make_policy()
        assert policy.idle_timeout == ms(5)
        assert policy.timeout_state is PowerState.SL3

    def test_predictor_presets(self):
        assert isinstance(DpmSetup.with_predictor("ewma").make_predictor(), ExponentialAveragePredictor)
        assert isinstance(DpmSetup.with_predictor("adaptive").make_predictor(), AdaptivePredictor)
        assert isinstance(DpmSetup.with_predictor("fixed").make_predictor(), FixedPredictor)
        assert isinstance(DpmSetup.with_predictor("last-value").make_predictor(), LastValuePredictor)
        with pytest.raises(ValueError):
            DpmSetup.with_predictor("crystal-ball")
