"""Corpus entries gain a ``<hash>.lint.json`` sidecar at save time."""

import json

from repro.fuzz.corpus import Corpus
from repro.platform import IpDef, PlatformSpec, WorkloadDef


def tiny_spec(name="sidecar"):
    return PlatformSpec(name=name, ips=[IpDef(
        name="cpu",
        workload=WorkloadDef(kind="periodic", task_count=4, cycles=10_000,
                             idle_us=200.0),
    )])


class TestLintSidecar:
    def test_save_writes_sidecar(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = corpus.save(tiny_spec(), reason="oracle X disagreed")
        sidecar = entry.with_name(f"{entry.stem}.lint.json")
        assert sidecar.is_file()
        data = json.loads(sidecar.read_text(encoding="utf-8"))
        assert data["spec"] == entry.name
        assert set(data["counts"]) == {"error", "warn", "info"}
        # The paper table's kept-verbatim shadowed row shows up as info.
        assert data["counts"]["info"] >= 1
        assert all(f["code"] and f["severity"] and f["path"]
                   for f in data["findings"])

    def test_entries_exclude_sidecars(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = corpus.save(tiny_spec())
        assert corpus.entries() == [entry]

    def test_resaving_is_still_a_noop(self, tmp_path):
        corpus = Corpus(tmp_path)
        first = corpus.save(tiny_spec())
        assert corpus.save(tiny_spec()) == first
        assert len(list(tmp_path.glob("*.json"))) == 2  # spec + sidecar

    def test_load_by_hash_prefix_unaffected(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = corpus.save(tiny_spec())
        assert corpus.load(entry.stem[:6]).name == "sidecar"

    def test_shipped_corpus_has_sidecars(self):
        corpus = Corpus()
        entries = corpus.entries()
        assert entries, "shipped corpus is empty?"
        for entry in entries:
            assert entry.with_name(f"{entry.stem}.lint.json").is_file()
