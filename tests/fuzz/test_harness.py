"""The fuzz loop end-to-end: green runs, shrinking, corpus saving, replay."""

from __future__ import annotations

import pytest

from repro.fuzz import Corpus, replay_corpus, run_fuzz
from repro.soc.sampling import FastSampleEngine


class TestGreenRun:
    def test_small_green_run(self):
        report = run_fuzz(examples=5, seed=0)
        assert report.ok
        assert report.runs == 5
        assert report.failure is None and report.saved_path is None
        assert "all oracles agreed" in report.summary()

    def test_same_seed_reproduces_the_same_run(self):
        first = run_fuzz(examples=5, seed=3, oracles=["structural"])
        second = run_fuzz(examples=5, seed=3, oracles=["structural"])
        assert first.ok and second.ok
        assert first.runs == second.runs
        assert first.skips == second.skips


class TestFailingRun:
    @pytest.fixture
    def broken_fast_recording(self, monkeypatch):
        original = FastSampleEngine.record

        def buggy(self, energy_j, span_fs, end_fs=0):
            return original(self, energy_j * 1.001, span_fs, end_fs)

        monkeypatch.setattr(FastSampleEngine, "record", buggy)

    def test_injected_bug_is_shrunk_saved_and_replayable(
        self, broken_fast_recording, tmp_path
    ):
        corpus = Corpus(tmp_path)
        report = run_fuzz(examples=50, seed=0, corpus=corpus)
        assert not report.ok
        assert {v.oracle for v in report.failure.result.failures} == {"exact_vs_fast"}
        assert report.saved_path is not None
        assert len(corpus.entries()) == 1
        # the saved spec is a valid platform and replays deterministically:
        # still failing under the planted bug...
        results = replay_corpus([report.saved_path], corpus=corpus)
        assert len(results) == 1 and not results[0].ok

    def test_without_corpus_nothing_is_saved(self, broken_fast_recording):
        report = run_fuzz(examples=50, seed=0, corpus=None)
        assert not report.ok and report.saved_path is None

    def test_saved_spec_passes_once_the_bug_is_fixed(self, tmp_path):
        # companion to the test above: the same fuzz campaign against the
        # unbroken code is green, so the finding was the bug, not noise.
        report = run_fuzz(examples=50, seed=0, corpus=Corpus(tmp_path))
        assert report.ok, report.summary()
