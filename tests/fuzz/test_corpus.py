"""The content-addressed corpus: save/load/resolve semantics."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.fuzz import Corpus
from repro.platform import PlatformSpec, load_platform, spec_hash


def small_spec(name: str = "corpus-spec") -> PlatformSpec:
    return PlatformSpec.from_dict(
        {
            "format": "repro-platform/1",
            "name": name,
            "ips": [{"name": "ip0", "workload": {"kind": "periodic", "task_count": 2}}],
        }
    )


class TestCorpus:
    def test_save_is_content_addressed(self, tmp_path):
        corpus = Corpus(tmp_path)
        path = corpus.save(small_spec())
        stored = load_platform(path)
        assert path.name == f"{spec_hash(stored)[:16]}.json"

    def test_save_embeds_the_failure_reason(self, tmp_path):
        corpus = Corpus(tmp_path)
        path = corpus.save(small_spec(), reason="policy: deficit too large")
        stored = load_platform(path)
        assert "fuzz regression: policy: deficit too large" in stored.description
        # ...and the filename hashes the *stored* bytes, reason included
        assert path.name == f"{spec_hash(stored)[:16]}.json"

    def test_save_twice_is_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path)
        first = corpus.save(small_spec(), reason="r")
        second = corpus.save(small_spec(), reason="r")
        assert first == second
        assert len(corpus.entries()) == 1

    def test_different_reasons_are_different_findings(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.save(small_spec(), reason="oracle A")
        corpus.save(small_spec(), reason="oracle B")
        assert len(corpus.entries()) == 2

    def test_load_by_hash_prefix(self, tmp_path):
        corpus = Corpus(tmp_path)
        path = corpus.save(small_spec())
        loaded = corpus.load(path.stem[:8])
        assert loaded.name == "corpus-spec"

    def test_load_unknown_prefix_raises(self, tmp_path):
        corpus = Corpus(tmp_path)
        with pytest.raises(PlatformError, match="no corpus entry"):
            corpus.load("deadbeef")

    def test_load_ambiguous_prefix_raises(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.save(small_spec(), reason="x")
        corpus.save(small_spec(), reason="y")
        with pytest.raises(PlatformError, match="ambiguous"):
            corpus.load("")

    def test_entries_on_missing_directory(self, tmp_path):
        corpus = Corpus(tmp_path / "nonexistent")
        assert corpus.entries() == []

    def test_entries_sorted_for_deterministic_replay(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.save(small_spec("a"))
        corpus.save(small_spec("b"))
        corpus.save(small_spec("c"))
        entries = corpus.entries()
        assert entries == sorted(entries)
