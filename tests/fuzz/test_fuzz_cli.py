"""The ``repro-dpm fuzz`` command group: run, replay, minimize."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.fuzz import Corpus
from repro.platform import PlatformSpec, save_platform
from repro.soc.sampling import FastSampleEngine


def write_spec(path, **overrides) -> str:
    data = {
        "format": "repro-platform/1",
        "name": "cli-fuzz-spec",
        "ips": [
            {
                "name": "ip0",
                "workload": {
                    "kind": "periodic",
                    "task_count": 3,
                    "cycles": 10_000,
                    "idle_us": 400.0,
                },
            }
        ],
        "max_time_ms": 150.0,
    }
    data.update(overrides)
    save_platform(PlatformSpec.from_dict(data), str(path))
    return str(path)


class TestParser:
    def test_fuzz_appears_in_help(self):
        assert "fuzz" in build_parser().format_help()

    def test_run_defaults(self):
        args = build_parser().parse_args(["fuzz", "run"])
        assert args.examples == 100 and args.seed == 0
        assert args.oracles is None and args.backend is None

    def test_replay_accepts_targets(self):
        args = build_parser().parse_args(["fuzz", "replay", "abc123", "def456"])
        assert args.targets == ["abc123", "def456"]

    def test_missing_subcommand_is_an_error(self, capsys):
        assert main(["fuzz"]) == 2
        assert "subcommand" in capsys.readouterr().err


class TestFuzzRun:
    def test_small_run_is_green(self, capsys):
        assert main(["fuzz", "run", "--examples", "3", "--seed", "1",
                     "--corpus", "none", "--oracles", "structural"]) == 0
        assert "all oracles agreed" in capsys.readouterr().out

    def test_failing_run_saves_and_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        original = FastSampleEngine.record

        def buggy(self, energy_j, span_fs, end_fs=0):
            return original(self, energy_j * 1.001, span_fs, end_fs)

        monkeypatch.setattr(FastSampleEngine, "record", buggy)
        corpus_dir = tmp_path / "corpus"
        assert main(["fuzz", "run", "--examples", "40", "--seed", "0",
                     "--corpus", str(corpus_dir),
                     "--oracles", "exact_vs_fast"]) == 1
        out = capsys.readouterr().out
        assert "exact_vs_fast" in out
        assert len(Corpus(corpus_dir).entries()) == 1


class TestFuzzReplay:
    def test_empty_corpus_is_a_clean_no_op(self, tmp_path, capsys):
        assert main(["fuzz", "replay", "--corpus", str(tmp_path / "empty")]) == 0
        assert "no corpus entries" in capsys.readouterr().out

    def test_replays_a_saved_entry_by_prefix(self, tmp_path, capsys):
        corpus = Corpus(tmp_path)
        spec = PlatformSpec.from_dict(json.loads(
            open(write_spec(tmp_path / "spec.json"), encoding="utf-8").read()
        ))
        saved = corpus.save(spec)
        assert main(["fuzz", "replay", saved.stem[:8], "--corpus", str(tmp_path),
                     "--oracles", "structural"]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 spec(s), 0 failing" in out

    def test_default_targets_are_the_whole_corpus(self, tmp_path, capsys):
        corpus = Corpus(tmp_path)
        spec_path = write_spec(tmp_path / "spec.json")
        corpus.save(PlatformSpec.from_dict(json.loads(
            open(spec_path, encoding="utf-8").read()
        )))
        os.remove(spec_path)  # only the corpus entry remains
        assert main(["fuzz", "replay", "--corpus", str(tmp_path),
                     "--oracles", "structural"]) == 0
        assert "replayed 1 spec(s)" in capsys.readouterr().out


class TestFuzzMinimize:
    def test_passing_spec_is_rejected(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path / "spec.json")
        assert main(["fuzz", "minimize", spec_path,
                     "--oracles", "structural"]) == 2
        assert "nothing to minimize" in capsys.readouterr().err

    def test_minimizes_a_failing_spec(self, tmp_path, monkeypatch, capsys):
        original = FastSampleEngine.record

        def buggy(self, energy_j, span_fs, end_fs=0):
            return original(self, energy_j * 1.001, span_fs, end_fs)

        monkeypatch.setattr(FastSampleEngine, "record", buggy)
        spec_path = write_spec(
            tmp_path / "spec.json",
            ips=[
                {
                    "name": "ip0",
                    "workload": {
                        "kind": "periodic",
                        "task_count": 6,
                        "cycles": 10_000,
                        "idle_us": 400.0,
                    },
                    "idle_activity": 0.3,
                },
                {
                    "name": "ip1",
                    "workload": {"kind": "random", "task_count": 4, "seed": 9},
                },
            ],
            battery={"condition": "medium"},
        )
        out_path = tmp_path / "minimized.json"
        assert main(["fuzz", "minimize", spec_path, "--out", str(out_path),
                     "--oracles", "exact_vs_fast"]) == 0
        assert out_path.exists()
        minimized = PlatformSpec.from_dict(
            json.loads(out_path.read_text(encoding="utf-8"))
        )
        # strictly simpler than the input, and still failing under the bug
        assert len(minimized.ips) == 1
        assert "minimized spec written" in capsys.readouterr().out
