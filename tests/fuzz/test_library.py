"""The named workload library: registration, shipped specs, differential health."""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_differential
from repro.platform import (
    LIBRARY_PLATFORM_NAMES,
    library_platforms,
    load_platform,
    platform_by_name,
    spec_to_json,
)

_REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
_SPEC_DIR = os.path.join(_REPO_ROOT, "examples", "specs")


def test_every_library_platform_is_registered():
    for name in LIBRARY_PLATFORM_NAMES:
        spec = platform_by_name(name)
        assert spec.name == name


def test_library_platforms_cover_the_advertised_names():
    specs = library_platforms()
    assert [spec.name for spec in specs] == list(LIBRARY_PLATFORM_NAMES)


@pytest.mark.parametrize("name", LIBRARY_PLATFORM_NAMES)
def test_shipped_spec_file_matches_the_builder(name):
    # examples/specs/*.json are the canonical serialized form of the library
    # builders; drift between file and code would make the CI spec-validate
    # job test something other than what users import.
    path = os.path.join(_SPEC_DIR, f"{name.replace('-', '_')}.json")
    assert os.path.exists(path), f"missing shipped spec {path}"
    on_disk = load_platform(path)
    built = platform_by_name(name)
    assert on_disk.to_dict() == built.to_dict()
    with open(path, "r", encoding="utf-8") as handle:
        assert handle.read() == spec_to_json(built)


@pytest.mark.parametrize("name", LIBRARY_PLATFORM_NAMES)
def test_library_platform_validates(name):
    assert platform_by_name(name).validation_error() is None


def test_phone_bursty_survives_all_oracles():
    # One full differential pass in tier-1: phone-bursty is the library entry
    # that exercises the contended multi-master cycle-accurate bus path.
    result = run_differential(platform_by_name("phone-bursty"))
    assert result.ok, result.summary()
