"""The differential-oracle harness: verdicts, tolerances, bug detection.

The centrepiece is the injected-bug pair: scaling the fast-path energy
recording by one part in a thousand MUST be caught by the exact-vs-fast
oracle (and by the end-to-end fuzz loop, which shrinks and saves the
counterexample), while the unmodified code passes the exact same specs.
A differential harness that cannot see a planted bug is just an expensive
random walk.
"""

from __future__ import annotations

import pytest

from repro.dpm import DpmSetup
from repro.errors import ExperimentError
from repro.experiments import (
    ALL_ORACLES,
    run_differential,
    run_scenario,
)
from repro.experiments.differential import OracleVerdict
from repro.platform import PlatformSpec
from repro.soc.sampling import FastSampleEngine


def tiny_spec(**overrides) -> PlatformSpec:
    data = {
        "format": "repro-platform/1",
        "name": "tiny",
        "ips": [
            {
                "name": "ip0",
                "workload": {
                    "kind": "random",
                    "task_count": 3,
                    "seed": 5,
                    "cycles_min": 5_000,
                    "cycles_max": 40_000,
                    "idle_min_us": 100.0,
                    "idle_max_us": 1_200.0,
                },
            }
        ],
        "max_time_ms": 200.0,
        "sample_interval_us": 1000.0,
    }
    data.update(overrides)
    return PlatformSpec.from_dict(data)


def bus_spec() -> PlatformSpec:
    return tiny_spec(
        ips=[
            {
                "name": "ip0",
                "workload": {
                    "kind": "periodic",
                    "task_count": 4,
                    "cycles": 20_000,
                    "idle_us": 500.0,
                },
                "bus_words_per_task": 32,
            }
        ],
        bus={
            "enabled": True,
            "words_per_second": 1_000_000.0,
            "timing": "cycle_accurate",
            "words_per_cycle": 4,
        },
    )


class TestRunDifferential:
    def test_all_oracles_pass_on_a_small_platform(self):
        result = run_differential(bus_spec())
        assert result.ok, result.summary()
        assert [v.oracle for v in result.verdicts] == list(ALL_ORACLES)
        statuses = {v.oracle: v.status for v in result.verdicts}
        assert statuses["exact_vs_fast"] == "pass"
        assert statuses["bus_timing"] == "pass"
        assert statuses["policy"] == "pass"
        assert statuses["structural"] == "pass"
        assert statuses["backend_parity"] in ("pass", "skip")

    def test_bus_oracle_skips_without_a_bus(self):
        result = run_differential(tiny_spec(), oracles=["bus_timing"])
        verdict = result.verdict("bus_timing")
        assert verdict.status == "skip"
        assert "no bus" in verdict.detail

    def test_oracle_subset_runs_only_selected(self):
        result = run_differential(tiny_spec(), oracles=["structural"])
        assert [v.oracle for v in result.verdicts] == ["structural"]

    def test_unknown_oracle_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown oracle"):
            run_differential(tiny_spec(), oracles=["nonsense"])

    def test_summary_names_every_verdict(self):
        result = run_differential(tiny_spec(), oracles=["structural", "policy"])
        summary = result.summary()
        assert "structural" in summary and "policy" in summary
        assert result.spec_hash[:12] in summary

    def test_spec_policy_is_honoured_by_the_base_run(self):
        spec = tiny_spec(policy={"name": "greedy-sleep"})
        result = run_differential(spec, oracles=["exact_vs_fast"])
        assert result.ok, result.summary()


class TestLintReachOracle:
    def test_decisions_contained_in_static_envelope(self):
        result = run_differential(tiny_spec(), oracles=["lint_reach"])
        assert result.ok, result.summary()
        verdict = result.verdicts[0]
        assert verdict.status == "pass"
        assert "contained" in verdict.detail

    def test_part_of_the_default_oracle_set(self):
        assert "lint_reach" in ALL_ORACLES

    def test_shadowed_custom_rule_never_fires(self):
        from repro.dpm.rules import paper_rule_table

        rules = paper_rule_table().as_dicts()
        rules.append({
            "state": "SL4", "priorities": ["low"], "batteries": ["full"],
            "temperatures": ["low"], "buses": ["high"], "label": "dead",
        })
        spec = tiny_spec(policy={"name": "paper", "rules": rules})
        result = run_differential(spec, oracles=["lint_reach"])
        assert result.ok, result.summary()

    def test_lint_errors_on_the_spec_are_advisory(self):
        # A structurally over-committed bus is an error-severity lint
        # finding, but the generator produces such platforms legitimately:
        # the oracle reports it without failing (only static/dynamic
        # disagreement fails).
        spec = bus_spec()
        spec = PlatformSpec.from_dict({
            **spec.to_dict(),
            "bus": {"enabled": True, "words_per_second": 20_000.0},
        })
        from repro.lint import lint_spec

        assert lint_spec(spec).errors  # precondition: really an error
        result = run_differential(spec, oracles=["lint_reach"])
        assert result.ok, result.summary()
        assert "advisory" in result.verdicts[0].detail


class TestPolicyOracle:
    def test_micro_workload_deficit_stays_within_transition_overhead(self):
        # 4 tiny tasks with 50 us gaps: sleeping is a net loss, but the loss
        # must be bounded by the transition energy the policy invested.
        spec = tiny_spec(
            ips=[
                {
                    "name": "ip0",
                    "workload": {
                        "kind": "periodic",
                        "task_count": 4,
                        "cycles": 2_000,
                        "idle_us": 50.0,
                    },
                    "idle_activity": 0.25,
                }
            ],
            max_time_ms=150.0,
            sample_interval_us=500.0,
            with_fan=False,
        )
        paper = run_scenario(spec, DpmSetup.paper(), accuracy="exact", trace=False)
        base = run_scenario(spec, DpmSetup.always_on(), accuracy="exact", trace=False)
        assert paper.total_energy_j > base.total_energy_j  # genuinely adversarial
        result = run_differential(spec, oracles=["policy"])
        assert result.ok, result.summary()


class TestInjectedFastModeBug:
    @pytest.fixture
    def broken_fast_recording(self, monkeypatch):
        original = FastSampleEngine.record

        def buggy(self, energy_j, span_fs, end_fs=0):
            return original(self, energy_j * 1.001, span_fs, end_fs)

        monkeypatch.setattr(FastSampleEngine, "record", buggy)

    def test_exact_vs_fast_catches_energy_scaling(self, broken_fast_recording):
        result = run_differential(tiny_spec(), oracles=["exact_vs_fast"])
        verdict = result.verdict("exact_vs_fast")
        assert verdict.status == "fail"
        assert "rel" in verdict.detail

    def test_same_spec_passes_without_the_bug(self):
        result = run_differential(tiny_spec(), oracles=["exact_vs_fast"])
        assert result.ok, result.summary()


class TestVerdictPlumbing:
    def test_verdict_dict_round_trip_fields(self):
        verdict = OracleVerdict("policy", "fail", "detail text")
        assert verdict.as_dict() == {
            "oracle": "policy",
            "status": "fail",
            "detail": "detail text",
        }
        assert verdict.failed and not verdict.passed

    def test_result_as_dict_carries_all_verdicts(self):
        result = run_differential(tiny_spec(), oracles=["structural"])
        data = result.as_dict()
        assert data["ok"] is True
        assert data["verdicts"][0]["oracle"] == "structural"
