"""Tier-1 corpus replay: every saved fuzz regression must stay green.

This is the gate that turns a one-off fuzz finding into a permanent
regression test: each entry under ``tests/fuzz/corpus/`` is a platform spec
that once tripped (or pins the boundary of) a differential oracle, and this
module replays every one of them through the full harness on every test run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_differential
from repro.fuzz import Corpus, DEFAULT_CORPUS_DIR
from repro.platform import load_platform, spec_hash

_REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
CORPUS = Corpus(os.path.join(_REPO_ROOT, DEFAULT_CORPUS_DIR))
ENTRIES = CORPUS.entries()


def test_the_shipped_corpus_is_not_empty():
    assert ENTRIES, f"expected seeded corpus entries under {CORPUS.root}"


@pytest.mark.parametrize("path", ENTRIES, ids=[path.stem for path in ENTRIES])
def test_corpus_entry_replays_green(path):
    spec = load_platform(path)
    result = run_differential(spec)
    assert result.ok, f"{path.name} regressed:\n{result.summary()}"


@pytest.mark.parametrize("path", ENTRIES, ids=[path.stem for path in ENTRIES])
def test_corpus_entry_is_content_addressed(path):
    # The filename must be the hash of exactly the bytes on disk, so an
    # edited entry cannot masquerade as the original finding.
    spec = load_platform(path)
    assert path.stem == spec_hash(spec)[:16], (
        f"{path.name}: filename does not match the content hash "
        f"{spec_hash(spec)[:16]!r}; re-save it through Corpus.save"
    )
