"""Unit tests for the spec-level minimizer with an injectable predicate.

No simulations here: the predicates inspect the spec structurally, so these
tests only exercise the reduction search itself.
"""

from __future__ import annotations

from repro.fuzz import minimize_spec
from repro.platform import PlatformSpec


def rich_spec() -> PlatformSpec:
    return PlatformSpec.from_dict(
        {
            "format": "repro-platform/1",
            "name": "rich",
            "ips": [
                {
                    "name": "cpu",
                    "workload": {"kind": "periodic", "task_count": 8, "cycles": 10_000},
                    "idle_activity": 0.2,
                    "bus_words_per_task": 16,
                },
                {
                    "name": "dma",
                    "workload": {"kind": "random", "task_count": 6, "seed": 3},
                },
            ],
            "bus": {"enabled": True, "words_per_second": 1_000_000.0},
            "battery": {"condition": "medium"},
            "thermal": {"condition": "low"},
            "policy": {"name": "paper"},
        }
    )


class TestMinimizeSpec:
    def test_passing_spec_is_returned_unchanged(self):
        spec = rich_spec()
        result = minimize_spec(spec, lambda candidate: False)
        assert result.to_dict() == spec.to_dict()

    def test_reduces_to_the_failing_core(self):
        # "Fails whenever an IP named cpu exists" — everything else must go.
        def still_fails(candidate: PlatformSpec) -> bool:
            return any(ip.name == "cpu" for ip in candidate.ips)

        result = minimize_spec(rich_spec(), still_fails)
        assert [ip.name for ip in result.ips] == ["cpu"]
        assert not result.bus.enabled
        assert result.policy is None
        assert result.battery.to_dict() == {}
        # count fields are halved down to 1
        assert result.ips[0].workload.task_count == 1

    def test_keeps_what_the_failure_needs(self):
        def still_fails(candidate: PlatformSpec) -> bool:
            return candidate.bus.enabled and len(candidate.ips) == 2

        result = minimize_spec(rich_spec(), still_fails)
        assert result.bus.enabled and len(result.ips) == 2

    def test_result_always_validates(self):
        def still_fails(candidate: PlatformSpec) -> bool:
            return any(ip.name == "dma" for ip in candidate.ips)

        result = minimize_spec(rich_spec(), still_fails)
        assert result.validation_error() is None

    def test_explicit_items_are_dropped_one_by_one(self):
        spec = PlatformSpec.from_dict(
            {
                "format": "repro-platform/1",
                "name": "explicit",
                "ips": [
                    {
                        "name": "ip0",
                        "workload": {
                            "kind": "explicit",
                            "items": [
                                {"task": "a", "cycles": 1_000, "idle_after_fs": 10**9},
                                {"task": "b", "cycles": 2_000, "idle_after_fs": 10**9},
                                {"task": "c", "cycles": 3_000, "idle_after_fs": 10**9},
                            ],
                        },
                    }
                ],
            }
        )

        def still_fails(candidate: PlatformSpec) -> bool:
            items = candidate.ips[0].workload.items or []
            return any(item["task"] == "b" for item in items)

        result = minimize_spec(spec, still_fails)
        items = result.ips[0].workload.items
        assert [item["task"] for item in items] == ["b"]
