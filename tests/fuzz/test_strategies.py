"""Property tests of the strategies themselves: validity and round-trips.

Every platform the fuzzer can generate must (a) pass the full
``PlatformSpec`` validation, (b) round-trip losslessly and idempotently
through JSON and TOML, and (c) hash stably through the canonical form —
otherwise a shrunk failure saved to the corpus would not replay the same
platform that failed.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.fuzz import platform_specs
from repro.platform import (
    PlatformSpec,
    spec_from_json,
    spec_from_toml,
    spec_hash,
    spec_to_json,
    spec_to_toml,
)


class TestGeneratedSpecValidity:
    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_generated_specs_validate(self, spec):
        assert spec.validation_error() is None

    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_idempotent(self, spec):
        text = spec_to_json(spec)
        once = spec_from_json(text)
        assert once.to_dict() == spec.to_dict()
        assert spec_to_json(once) == text  # second pass changes nothing

    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_toml_round_trip_is_idempotent(self, spec):
        text = spec_to_toml(spec)
        once = spec_from_toml(text)
        assert once.to_dict() == spec.to_dict()
        assert spec_to_toml(once) == text

    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_spec_hash_is_canonical(self, spec):
        rebuilt = PlatformSpec.from_dict(spec.to_dict())
        assert spec_hash(rebuilt) == spec_hash(spec)

    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_bus_traffic_is_cycle_aligned(self, spec):
        # The single-master bus_timing bound relies on CA durations equal to
        # ED durations: generated traffic must be whole bus cycles.
        if not spec.bus.enabled:
            return
        for ip in spec.ips:
            assert ip.bus_words_per_task % spec.bus.words_per_cycle == 0
        assert any(ip.bus_words_per_task for ip in spec.ips)

    @given(spec=platform_specs())
    @settings(max_examples=60, deadline=None)
    def test_random_workloads_carry_explicit_seeds(self, spec):
        # Replay of a saved spec must not depend on builder-default seeds.
        for ip in spec.ips:
            if ip.workload.kind in ("random", "bursty", "high_activity", "low_activity"):
                assert ip.workload.seed is not None
