"""Integration tests: the qualitative claims of the paper must hold.

These tests run complete scenario comparisons (DPM vs always-on baseline) and
check the *shape* of Table 2 rather than exact percentages: low battery
trades a much larger delay for a larger energy saving, the GEM scenarios save
the most, the DPM controls the chip temperature, and every task eventually
executes.
"""

import pytest

from repro.dpm import DpmSetup
from repro.experiments import (
    run_comparison,
    run_scenario,
    scenario_by_name,
    single_ip_scenario,
)
from repro.power import PowerState


@pytest.fixture(scope="module")
def a1():
    return run_comparison(scenario_by_name("A1"))


@pytest.fixture(scope="module")
def a2():
    return run_comparison(scenario_by_name("A2"))


@pytest.fixture(scope="module")
def a3():
    return run_comparison(scenario_by_name("A3"))


@pytest.fixture(scope="module")
def b_row():
    return run_comparison(scenario_by_name("B"))


class TestSingleIpShape:
    def test_a1_saves_energy_at_small_delay(self, a1):
        assert 25.0 < a1.energy_saving_pct < 60.0
        assert a1.average_delay_overhead_pct < 80.0
        assert a1.temperature_reduction_pct > 10.0

    def test_a2_trades_delay_for_bigger_saving(self, a1, a2):
        assert a2.energy_saving_pct > a1.energy_saving_pct + 10.0
        assert a2.average_delay_overhead_pct > 250.0
        assert a2.average_delay_overhead_pct > 5 * a1.average_delay_overhead_pct

    def test_a3_behaves_like_a1_for_energy_and_delay(self, a1, a3):
        assert abs(a3.energy_saving_pct - a1.energy_saving_pct) < 15.0
        assert a3.average_delay_overhead_pct < 120.0

    def test_a3_smaller_temperature_margin_than_a1(self, a1, a3):
        assert a3.temperature_reduction_pct <= a1.temperature_reduction_pct + 5.0

    def test_all_rows_positive_savings(self, a1, a2, a3):
        for row in (a1, a2, a3):
            assert row.energy_saving_pct > 0.0
            assert row.temperature_reduction_pct > 0.0


class TestMultiIpShape:
    def test_b_has_largest_saving(self, a1, b_row):
        assert b_row.energy_saving_pct > a1.energy_saving_pct
        assert b_row.energy_saving_pct > 50.0

    def test_b_delay_is_large_but_bounded(self, b_row):
        assert 150.0 < b_row.average_delay_overhead_pct < 600.0

    def test_b_all_ips_completed(self, b_row):
        assert b_row.tasks_executed == sum(
            int(stats["tasks"]) for stats in b_row.per_ip.values()
        )
        assert len(b_row.per_ip) == 4
        assert all(stats["tasks"] > 0 for stats in b_row.per_ip.values())


class TestThermalControl:
    def test_dpm_keeps_peak_temperature_below_baseline(self):
        scenario = scenario_by_name("A3")
        dpm_run = run_scenario(scenario, DpmSetup.paper())
        baseline_run = run_scenario(scenario, DpmSetup.always_on())
        assert dpm_run.peak_temperature_c < baseline_run.peak_temperature_c

    def test_baseline_crosses_high_threshold_dpm_does_not(self):
        scenario = scenario_by_name("A3")
        dpm_run = run_scenario(scenario, DpmSetup.paper())
        baseline_run = run_scenario(scenario, DpmSetup.always_on())
        threshold = dpm_run.soc.thermal.config.thresholds.high_c
        assert baseline_run.peak_temperature_c > threshold - 2.0
        assert dpm_run.peak_temperature_c < baseline_run.peak_temperature_c


class TestPolicyOrdering:
    def test_oracle_never_worse_than_greedy_on_energy(self):
        scenario = single_ip_scenario("policy-order", "full", "low", task_count=16)
        oracle = run_comparison(scenario, dpm=DpmSetup.oracle())
        greedy = run_comparison(scenario, dpm=DpmSetup.greedy_sleep())
        # Both sleep aggressively; the oracle avoids mispredicted shutdowns so
        # it must not consume more energy (small tolerance for bookkeeping).
        assert oracle.dpm_energy_j <= greedy.dpm_energy_j * 1.05

    def test_paper_policy_saves_more_than_greedy_under_low_battery(self):
        scenario = single_ip_scenario("policy-low-batt", "low", "low", task_count=16)
        paper = run_comparison(scenario, dpm=DpmSetup.paper())
        greedy = run_comparison(scenario, dpm=DpmSetup.greedy_sleep())
        # The paper's policy additionally slows execution down (DVFS), which
        # the pure shutdown policy cannot do.
        assert paper.energy_saving_pct > greedy.energy_saving_pct

    def test_always_on_baseline_runs_only_on1(self):
        scenario = single_ip_scenario("baseline-check", "low", "high", task_count=12)
        run = run_scenario(scenario, DpmSetup.always_on())
        for execution in run.executions:
            assert execution.power_state is PowerState.ON1
        psm = run.soc.instances[0].psm
        assert psm.transition_count == 0
