"""Integration tests for the sweep/ablation helpers and the example scripts."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

from repro.experiments import condition_sweep, policy_ablation, predictor_ablation, single_ip_scenario
from repro.sim import ms
from repro.dpm import DpmSetup


class TestConditionSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return condition_sweep(
            battery_levels=("full", "low"),
            temperature_levels=("low",),
            task_count=12,
        )

    def test_sweep_covers_grid(self, sweep):
        names = {metrics.scenario for metrics in sweep}
        assert names == {"full/low", "low/low"}

    def test_sweep_trend_matches_rules(self, sweep):
        by_name = {metrics.scenario: metrics for metrics in sweep}
        assert by_name["low/low"].energy_saving_pct > by_name["full/low"].energy_saving_pct - 5.0
        assert (
            by_name["low/low"].average_delay_overhead_pct
            > by_name["full/low"].average_delay_overhead_pct
        )


class TestAblationHelpers:
    def test_policy_ablation_contains_all_setups(self):
        scenario = single_ip_scenario("abl", "full", "low", task_count=10)
        setups = [DpmSetup.always_on(), DpmSetup.paper()]
        results = policy_ablation(scenario, setups)
        assert set(results) == {"always-on", "paper"}
        assert results["paper"].energy_saving_pct > results["always-on"].energy_saving_pct

    def test_predictor_ablation_contains_all_kinds(self):
        scenario = single_ip_scenario("pred", "full", "low", task_count=10)
        results = predictor_ablation(scenario, predictor_kinds=("ewma", "fixed"))
        assert set(results) == {"ewma", "fixed"}
        for metrics in results.values():
            assert metrics.energy_saving_pct > 0.0


class TestExampleScripts:
    """Smoke tests: the shipped examples must run end to end."""

    def _run_example(self, name, argv=()):
        path = str(EXAMPLES_DIR / name)
        old_argv = sys.argv
        sys.argv = [path, *argv]
        try:
            runpy.run_path(path, run_name="__main__")
        finally:
            sys.argv = old_argv

    def test_quickstart_example(self, capsys):
        self._run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "energy saving" in out
        assert "paper DPM" in out

    def test_custom_ip_example(self, capsys):
        self._run_example("custom_ip_and_rules.py")
        out = capsys.readouterr().out
        assert "Break-even times" in out
        assert "LEM decisions by selected state" in out

    def test_multi_ip_gem_example(self, capsys, tmp_path):
        vcd = tmp_path / "states.vcd"
        self._run_example("multi_ip_gem_soc.py", argv=[str(vcd)])
        out = capsys.readouterr().out
        assert "Per-IP summary" in out
        assert "GEM:" in out
        assert vcd.exists()
        assert "$timescale" in vcd.read_text()

    def test_table2_example_subset(self, capsys):
        self._run_example("table2_reproduction.py", argv=["A1"])
        out = capsys.readouterr().out
        assert "Paper vs. reproduction" in out
        assert "Simulation speed" in out
