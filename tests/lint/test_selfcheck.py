"""The determinism self-check catches planted violations — and passes on
the real tree (the same invocation CI runs as ``repro-dpm lint --self``)."""

import textwrap

from repro.lint import lint_paths, lint_source, selfcheck
from repro.lint.findings import Severity


def lint(source, relpath="repro/module.py"):
    return lint_source(textwrap.dedent(source), relpath)


def codes(findings):
    return [finding.code for finding in findings]


class TestWallClock:
    def test_time_time_call(self):
        findings = lint("""
            import time
            started = time.time()
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]
        assert findings[0].path == "repro/module.py:3"
        assert findings[0].severity is Severity.ERROR

    def test_aliased_time_module(self):
        findings = lint("""
            import time as _wallclock
            t = _wallclock.perf_counter()
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]

    def test_from_time_import(self):
        findings = lint("""
            from time import perf_counter
            t = perf_counter()
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]

    def test_datetime_now(self):
        findings = lint("""
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]

    def test_datetime_module_utcnow(self):
        findings = lint("""
            import datetime
            stamp = datetime.datetime.utcnow()
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]

    def test_sleep_is_not_a_wall_clock_read(self):
        assert lint("""
            import time
            time.sleep(0.1)
        """) == []


class TestRandom:
    def test_module_global_random(self):
        findings = lint("""
            import random
            x = random.random()
        """)
        assert codes(findings) == ["DET-RANDOM"]

    def test_from_random_import_function(self):
        findings = lint("""
            from random import choice
        """)
        assert codes(findings) == ["DET-RANDOM"]

    def test_seeded_random_instance_is_fine(self):
        assert lint("""
            import random
            rng = random.Random(42)
            x = rng.random()
        """) == []

    def test_from_random_import_random_class_is_fine(self):
        assert lint("""
            from random import Random
            rng = Random(7)
        """) == []


class TestFloatTime:
    def test_float_literal_times_fs_in_sim(self):
        findings = lint("""
            def f(delay_fs):
                return delay_fs * 1.5
        """, relpath="repro/sim/kernel.py")
        assert codes(findings) == ["DET-FLOAT-TIME"]

    def test_float_addition_to_fs_attribute_in_sim(self):
        findings = lint("""
            def f(event):
                return 0.5 + event.t_fs
        """, relpath="repro/sim/kernel.py")
        assert codes(findings) == ["DET-FLOAT-TIME"]

    def test_same_code_outside_sim_is_not_flagged(self):
        assert lint("""
            def f(delay_fs):
                return delay_fs * 1.5
        """, relpath="repro/analysis/report.py") == []

    def test_integer_fs_math_is_fine(self):
        assert lint("""
            def f(delay_fs):
                return delay_fs * 2 + 7
        """, relpath="repro/sim/kernel.py") == []


class TestSetOrder:
    def test_for_over_set_literal(self):
        findings = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert codes(findings) == ["DET-SET-ORDER"]
        assert findings[0].severity is Severity.WARN

    def test_comprehension_over_set_call(self):
        findings = lint("""
            out = [x for x in set(items)]
        """)
        assert codes(findings) == ["DET-SET-ORDER"]

    def test_sorted_set_is_fine(self):
        assert lint("""
            for x in sorted({1, 2, 3}):
                print(x)
        """) == []


class TestPragma:
    def test_same_line_pragma_suppresses(self):
        assert lint("""
            import time
            t = time.time()  # repro-lint: allow[DET-WALLCLOCK]
        """) == []

    def test_pragma_is_code_specific(self):
        findings = lint("""
            import time
            t = time.time()  # repro-lint: allow[DET-RANDOM]
        """)
        assert codes(findings) == ["DET-WALLCLOCK"]

    def test_pragma_accepts_code_lists(self):
        assert lint("""
            import time
            t = time.time()  # repro-lint: allow[DET-RANDOM, DET-WALLCLOCK]
        """) == []


class TestTreeAndPaths:
    def test_planted_file_is_caught_via_lint_paths(self, tmp_path):
        bad = tmp_path / "sim" / "planted.py"
        bad.parent.mkdir()
        bad.write_text(
            "import time\n"
            "def f(now_fs):\n"
            "    return time.time() + now_fs * 0.5\n",
            encoding="utf-8",
        )
        findings = lint_paths([tmp_path])
        assert sorted(codes(findings)) == ["DET-FLOAT-TIME", "DET-WALLCLOCK"]

    def test_real_tree_is_clean(self):
        # The exact check CI runs as `repro-dpm lint --self`.
        report = selfcheck()
        assert report.is_clean(strict=True), report.describe()
