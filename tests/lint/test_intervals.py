"""Interval arithmetic and crossing-time solvers behind the reach engine."""

import math

import pytest

from repro.lint.intervals import (
    Interval,
    exp_crossing_time,
    exp_value,
    linear_crossing_time,
)


class TestInterval:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_point_and_width(self):
        interval = Interval.point(3.5)
        assert interval.lo == interval.hi == 3.5
        assert interval.width == 0.0
        assert Interval(1.0, 4.0).width == 3.0

    def test_contains_is_inclusive(self):
        interval = Interval(0.0, 1.0)
        assert interval.contains(0.0)
        assert interval.contains(1.0)
        assert interval.contains(0.5)
        assert not interval.contains(-1e-9)
        assert not interval.contains(1.0 + 1e-9)

    def test_hull(self):
        assert Interval(0.0, 1.0).hull(Interval(3.0, 4.0)) == Interval(0.0, 4.0)
        assert Interval(2.0, 5.0).hull(Interval(1.0, 3.0)) == Interval(1.0, 5.0)

    def test_expand(self):
        assert Interval(1.0, 2.0).expand(below=0.5, above=0.25) == Interval(0.5, 2.25)
        with pytest.raises(ValueError):
            Interval(1.0, 2.0).expand(below=-0.1)
        with pytest.raises(ValueError):
            Interval(1.0, 2.0).expand(above=-0.1)

    def test_clamp_inside_and_partial(self):
        assert Interval(0.0, 10.0).clamp(2.0, 4.0) == Interval(2.0, 4.0)
        assert Interval(3.0, 10.0).clamp(0.0, 5.0) == Interval(3.0, 5.0)

    def test_clamp_disjoint_collapses_to_nearer_bound(self):
        # Entirely below the clamp window -> collapses to its lower edge.
        assert Interval(-2.0, -1.0).clamp(0.0, 1.0) == Interval.point(0.0)
        # Entirely above -> collapses to the upper edge.
        assert Interval(5.0, 6.0).clamp(0.0, 1.0) == Interval.point(1.0)

    def test_widen_stable_bounds_are_kept(self):
        old = Interval(0.2, 0.8)
        new = Interval(0.3, 0.7)  # contained: nothing escapes
        assert old.widen(new, lo_limit=0.0, hi_limit=1.0) == Interval(0.2, 0.8)

    def test_widen_escaping_bounds_jump_to_limits(self):
        old = Interval(0.4, 0.6)
        widened = old.widen(Interval(0.3, 0.9), lo_limit=0.0, hi_limit=1.0)
        # Both bounds escaped, so both jump straight to the limits: a
        # widening chain terminates after one step per escaping bound.
        assert widened == Interval(0.0, 1.0)
        # And widening is idempotent at the limits.
        assert widened.widen(Interval(0.1, 0.95), 0.0, 1.0) == widened


class TestLinearCrossing:
    def test_downward_crossing(self):
        # start 1.0, rate -0.1/s, threshold 0.5 -> 5 s
        assert linear_crossing_time(1.0, -0.1, 0.5) == pytest.approx(5.0)

    def test_upward_crossing(self):
        assert linear_crossing_time(0.0, 2.0, 10.0) == pytest.approx(5.0)

    def test_already_past_in_direction_of_travel_is_zero(self):
        assert linear_crossing_time(0.4, -0.1, 0.5) == 0.0
        assert linear_crossing_time(12.0, 2.0, 10.0) == 0.0

    def test_moving_away_counts_as_already_past(self):
        # Entry bounds are sound over-approximations: a trajectory at or
        # beyond the threshold in its direction of travel "entered" at 0.
        assert linear_crossing_time(1.0, 0.1, 0.5) == 0.0
        assert linear_crossing_time(0.0, -1.0, 10.0) == 0.0

    def test_zero_rate(self):
        assert linear_crossing_time(0.5, 0.0, 0.5) == 0.0
        assert linear_crossing_time(0.4, 0.0, 0.5) is None


class TestExpValue:
    def test_zero_or_negative_time_is_start(self):
        assert exp_value(20.0, 80.0, 10.0, 0.0) == 20.0
        assert exp_value(20.0, 80.0, 10.0, -1.0) == 20.0

    def test_nonpositive_tau_jumps_to_steady(self):
        assert exp_value(20.0, 80.0, 0.0, 1e-9) == 80.0

    def test_relaxation_toward_steady(self):
        # After one time constant: start + (1 - 1/e) of the gap.
        value = exp_value(20.0, 80.0, 10.0, 10.0)
        assert value == pytest.approx(20.0 + 60.0 * (1.0 - math.exp(-1.0)))
        # Monotone toward, never past, the steady state.
        assert 20.0 < value < 80.0
        assert exp_value(20.0, 80.0, 10.0, 1e6) == pytest.approx(80.0)


class TestExpCrossing:
    def test_crossing_matches_closed_form(self):
        t = exp_crossing_time(20.0, 80.0, 10.0, 50.0)
        assert t is not None
        assert exp_value(20.0, 80.0, 10.0, t) == pytest.approx(50.0)

    def test_start_at_threshold_is_zero(self):
        assert exp_crossing_time(50.0, 80.0, 10.0, 50.0) == 0.0

    def test_threshold_beyond_steady_never_crossed(self):
        # Relaxing up toward 80 never reaches 90 (ratio <= 0).
        assert exp_crossing_time(20.0, 80.0, 10.0, 90.0) is None
        # Cooling toward 20 never reaches 10.
        assert exp_crossing_time(80.0, 20.0, 10.0, 10.0) is None

    def test_nonpositive_tau_is_instantaneous(self):
        assert exp_crossing_time(20.0, 80.0, 0.0, 50.0) == 0.0

    def test_cooling_direction(self):
        t = exp_crossing_time(80.0, 20.0, 5.0, 40.0)
        assert t is not None and t > 0.0
        assert exp_value(80.0, 20.0, 5.0, t) == pytest.approx(40.0)
