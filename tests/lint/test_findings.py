"""Tests for the typed findings model and the exit-code contract."""

from repro.lint import CODES, Finding, LintReport, Severity


def finding(code="RULES-SHADOWED", severity=Severity.ERROR, path="platform",
            message="msg", suggestion=""):
    return Finding(code=code, severity=severity, path=path, message=message,
                   suggestion=suggestion)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank > Severity.WARN.rank > Severity.INFO.rank

    def test_values_are_cli_words(self):
        assert [s.value for s in Severity] == ["error", "warn", "info"]


class TestFinding:
    def test_describe_contains_all_parts(self):
        rendered = finding(suggestion="do less").describe()
        assert "error" in rendered
        assert "RULES-SHADOWED" in rendered
        assert "platform: msg" in rendered
        assert "(do less)" in rendered

    def test_describe_omits_empty_suggestion(self):
        assert "(" not in finding().describe()

    def test_to_dict_round_trips_severity_as_string(self):
        data = finding(suggestion="fix").to_dict()
        assert data["severity"] == "error"
        assert data["suggestion"] == "fix"
        assert "suggestion" not in finding().to_dict()

    def test_all_codes_documented(self):
        for code, doc in CODES.items():
            assert code.isupper()
            assert doc


class TestLintReport:
    def test_clean_report(self):
        report = LintReport(subject="x")
        assert report.worst is None
        assert report.is_clean()
        assert report.is_clean(strict=True)
        assert "clean" in report.describe()

    def test_sorted_most_severe_first(self):
        report = LintReport(subject="x")
        report.extend([
            finding(severity=Severity.INFO),
            finding(severity=Severity.ERROR),
            finding(severity=Severity.WARN),
        ])
        assert [f.severity for f in report.sorted()] == [
            Severity.ERROR, Severity.WARN, Severity.INFO,
        ]

    def test_info_only_is_clean_unless_strict(self):
        report = LintReport(subject="x", findings=[finding(severity=Severity.INFO)])
        assert report.worst is Severity.INFO
        assert report.is_clean()
        assert not report.is_clean(strict=True)

    def test_warnings_and_errors_fail(self):
        for severity in (Severity.WARN, Severity.ERROR):
            report = LintReport(subject="x", findings=[finding(severity=severity)])
            assert not report.is_clean()

    def test_counts_and_summary_line(self):
        report = LintReport(subject="x")
        report.extend([finding(severity=Severity.ERROR),
                       finding(severity=Severity.ERROR),
                       finding(severity=Severity.INFO)])
        assert report.count(Severity.ERROR) == 2
        assert report.count(Severity.WARN) == 0
        assert "2 error(s), 0 warning(s), 1 info" in report.describe()
        assert len(report.errors) == 2
