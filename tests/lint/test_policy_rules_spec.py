"""The ``policy.rules`` spec field: validation, round-trip and build wiring."""

import pytest

from repro.dpm.rules import paper_rule_table
from repro.errors import PlatformError
from repro.platform import (
    IpDef,
    PlatformSpec,
    PolicyDef,
    WorkloadDef,
    spec_from_json,
    spec_to_json,
)
from repro.platform.build import build_dpm_setup


def periodic():
    return WorkloadDef(kind="periodic", task_count=4, cycles=10_000, idle_us=200.0)


def spec_with_rules(rules):
    return PlatformSpec(
        name="custom", ips=[IpDef(name="cpu", workload=periodic())],
        policy=PolicyDef(name="paper", rules=rules),
    )


WILDCARD = {"state": "ON2", "label": "catch-all"}


class TestValidation:
    def test_valid_rules_pass(self):
        spec_with_rules([
            {"state": "ON1", "priorities": ["low", "medium"],
             "batteries": ["full"], "temperatures": None, "buses": ["high"],
             "label": "r"},
            WILDCARD,
        ]).validate()

    def test_rules_require_paper_policy(self):
        spec = PlatformSpec(
            name="x", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="always-on", rules=[WILDCARD]),
        )
        with pytest.raises(PlatformError, match="paper"):
            spec.validate()

    def test_empty_rule_list_rejected(self):
        with pytest.raises(PlatformError):
            spec_with_rules([]).validate()

    def test_unknown_state_rejected(self):
        with pytest.raises(PlatformError, match="state"):
            spec_with_rules([{"state": "WARP9"}]).validate()

    def test_unknown_level_rejected(self):
        with pytest.raises(PlatformError):
            spec_with_rules([{"state": "ON1", "batteries": ["overcharged"]}]).validate()

    def test_empty_dimension_list_rejected(self):
        # [] would match nothing; null is the explicit don't-care.
        with pytest.raises(PlatformError, match="empty list"):
            spec_with_rules([{"state": "ON1", "priorities": []}]).validate()

    def test_unknown_key_rejected(self):
        with pytest.raises(PlatformError):
            spec_with_rules([{"state": "ON1", "colour": "red"}]).validate()


class TestRoundTrip:
    def test_rules_survive_json_round_trip(self):
        spec = spec_with_rules(paper_rule_table().as_dicts())
        spec.validate()
        restored = spec_from_json(spec_to_json(spec))
        assert restored.policy.rules == spec.policy.rules
        restored.validate()

    def test_rules_default_to_none(self):
        spec = PlatformSpec(
            name="plain", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper"),
        )
        restored = spec_from_json(spec_to_json(spec))
        assert restored.policy.rules is None


class TestBuildWiring:
    def test_custom_rules_reach_the_policy(self):
        setup = build_dpm_setup(PolicyDef(name="paper", rules=[WILDCARD]))
        policy = setup.policy_factory()
        assert policy.rules.name == "policy-rules"
        assert len(policy.rules.rules) == 1
        assert str(policy.rules.rules[0].state) == "ON2"

    def test_no_rules_means_paper_table(self):
        setup = build_dpm_setup(PolicyDef(name="paper"))
        policy = setup.policy_factory()
        assert policy.rules.name == paper_rule_table().name
        assert len(policy.rules.rules) == len(paper_rule_table().rules)
