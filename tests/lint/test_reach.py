"""The trajectory-reachability engine: envelopes, pins and edge cases.

The soundness direction (envelope contains every traced decision) lives in
``tests/lint/test_crosscheck.py`` and the fuzz oracle; these tests pin the
*precision* side — the envelope is tight enough to kill trajectory-dead
rules on the paper platforms — plus the interval edge cases of the issue.
"""

import math

import pytest

from repro.battery.status import BatteryLevel
from repro.dpm.levels import RuleContext
from repro.dpm.rules import paper_rule_table
from repro.lint import Severity, build_model, compute_reach, lint_spec
from repro.lint.findings import CODES
from repro.lint.reach import (
    WIDEN_LIMIT,
    _battery_envelope,
    _temperature_envelope,
)
from repro.platform import (
    BatteryDef,
    IpDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    ThermalDef,
    TransitionDef,
    WorkloadDef,
)
from repro.platform.build import build_battery_config, build_thermal_config
from repro.platform.registry import platform_by_name
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel


def reach_for(name):
    return compute_reach(build_model(platform_by_name(name)))


class TestPaperPins:
    """Empirical pins over the registered paper/library platforms."""

    def test_a1_battery_never_leaves_full(self):
        reach = reach_for("A1")
        assert reach.battery_set == {BatteryLevel.FULL}
        assert reach.soc.hi == pytest.approx(0.95)
        assert reach.soc.lo == pytest.approx(0.934, abs=2e-3)
        assert reach.converged
        assert reach.iterations == 2

    def test_a1_resident_states_refined_by_fixpoint(self):
        reach = reach_for("A1")
        resident = {str(s) for s in reach.ips[0].resident_states}
        # The paper table never selects ON3 for A1's contexts, so the
        # fixpoint drops it from the resident set.
        assert resident == {"ON1", "ON2", "ON4"}

    def test_a1_thermal_high_has_positive_entry_bound(self):
        reach = reach_for("A1")
        spans = {str(span.level): span.earliest_s for span in reach.temperature_levels}
        assert spans["low"] == 0.0
        assert "high" in spans
        # Heating to the high band takes time; the bound must be a real
        # positive crossing, not the degenerate "reachable from t=0".
        assert spans["high"] > 0.1

    def test_a1_lint_reports_trajectory_dead_table_rows(self):
        report = lint_spec(platform_by_name("A1"), reach=True)
        dead = [f for f in report.findings if f.code == "RULE-DEAD-TRAJECTORY"]
        assert len(dead) == 12
        assert all(f.severity is Severity.INFO for f in dead)
        dead_indices = {int(f.path.rsplit("[", 1)[1].rstrip("]")) for f in dead}
        # Table 1 row 1 (index 0: emergency high-priority grant at battery
        # empty) looked feasible to the static analyzers but cannot fire
        # inside A1's horizon — the acceptance pin of this PR.
        assert 0 in dead_indices
        assert dead_indices == {0, 2, 4, 6, 7, 8, 9, 12, 15, 16, 17, 18}
        # The reach pass is additive: no new warnings or errors on A1.
        assert report.count(Severity.ERROR) == 0
        assert report.count(Severity.WARN) == 0

    def test_iot_duty_cycle_never_heats_to_high(self):
        reach = reach_for("iot-duty-cycle")
        assert TemperatureLevel.HIGH not in reach.temperature_set

    def test_reach_describe_mentions_fixpoint(self):
        text = reach_for("A1").describe()
        assert "reach: A1" in text
        assert "fixpoint" in text
        assert "ip[0]" in text


class TestUncoveredDowngrade:
    """An uncovered-but-unreachable context is an error without the
    envelope and an info with it."""

    def spec(self):
        # Covers only full/high battery contexts; a huge battery pinned
        # near full keeps the envelope inside those levels, so the
        # uncovered medium/low/empty contexts are trajectory-dead.
        return PlatformSpec(
            name="uncovered-downgrade",
            ips=[IpDef(name="cpu", workload=WorkloadDef(
                kind="periodic", task_count=4, cycles=10_000, idle_us=200.0,
            ))],
            policy=PolicyDef(name="paper", rules=[
                {"state": "ON1", "batteries": ["full", "high"], "label": "top"},
            ]),
            battery=BatteryDef(capacity_j=1e6, state_of_charge=0.95),
            max_time_ms=100.0,
        )

    def test_error_without_reach(self):
        report = lint_spec(self.spec())
        uncovered = [f for f in report.findings if f.code == "RULES-UNCOVERED"]
        assert any(f.severity is Severity.ERROR for f in uncovered)

    def test_downgraded_to_info_with_reach(self):
        report = lint_spec(self.spec(), reach=True)
        uncovered = [f for f in report.findings if f.code == "RULES-UNCOVERED"]
        assert uncovered
        assert all(f.severity is not Severity.ERROR for f in uncovered)
        assert any("outside the reachable trajectory" in f.message for f in uncovered)


class TestEnvelopeEdgeCases:
    """The interval edge cases called out by the issue."""

    def battery_cfg(self, **overrides):
        return build_battery_config(BatteryDef(**overrides))

    def thermal_cfg(self, **overrides):
        return build_thermal_config(ThermalDef(**overrides), ip_count=1)

    def test_zero_length_horizon_battery_is_a_point(self):
        cfg = self.battery_cfg(state_of_charge=0.7)
        envelope, spans = _battery_envelope(cfg, 0.0, 1e9, 0.0, False, 0.0)
        assert envelope.lo == envelope.hi == 0.7
        assert [span.level for span in spans] == [BatteryLevel.HIGH]
        assert spans[0].earliest_s == 0.0

    def test_zero_length_horizon_temperature_is_initial(self):
        cfg = self.thermal_cfg(initial_c=30.0, ambient_c=25.0)
        envelope, spans = _temperature_envelope(
            cfg, 0.0, 1e9, 0.0, False, steady_proj_c=-math.inf, proj_decay=1.0,
        )
        assert envelope.lo == envelope.hi == 30.0
        assert [span.level for span in spans] == [TemperatureLevel.LOW]

    def test_battery_exactly_at_level_boundary(self):
        # soc exactly at the high threshold classifies as FULL
        # (classify is strict-below), and any drain at all makes HIGH
        # enterable immediately — entry bound 0, not a negative crossing.
        cfg = self.battery_cfg(state_of_charge=0.85)
        envelope, spans = _battery_envelope(cfg, 10.0, 1.0, 0.0, False, 0.0)
        assert envelope.hi == 0.85
        levels = {str(span.level): span.earliest_s for span in spans}
        assert levels["full"] == 0.0
        assert "high" in levels
        assert levels["high"] == 0.0

    def test_boundary_soc_through_public_api(self):
        spec = PlatformSpec(
            name="boundary",
            ips=[IpDef(name="cpu", workload=WorkloadDef(
                kind="periodic", task_count=2, cycles=5_000, idle_us=100.0,
            ))],
            battery=BatteryDef(state_of_charge=0.85),
            max_time_ms=10.0,
        )
        reach = compute_reach(build_model(spec))
        assert BatteryLevel.FULL in reach.battery_set

    def test_never_crossing_thermal_envelope(self):
        # Steady state at the power ceiling sits far below the medium
        # band, so the envelope never crosses and only LOW is reachable.
        cfg = self.thermal_cfg(initial_c=25.0, ambient_c=25.0)
        envelope, spans = _temperature_envelope(
            cfg, 1e6, 0.1, 0.0, False, steady_proj_c=-math.inf, proj_decay=1.0,
        )
        assert envelope.hi < cfg.thresholds.medium_c
        assert [span.level for span in spans] == [TemperatureLevel.LOW]

    @pytest.mark.parametrize("name", ["A1", "B", "C", "phone-bursty", "sustained-throttled"])
    def test_fixpoint_terminates_on_oscillating_workloads(self, name):
        # phone-bursty alternates burst/idle phases and C mixes three IPs
        # with different cadences; the downward iteration must still hit a
        # fixpoint inside the cap (every iterate stays sound regardless).
        reach = reach_for(name)
        assert reach.iterations <= WIDEN_LIMIT
        assert reach.converged
        assert "widened" not in " ".join(reach.assumptions)


class TestDegradation:
    """Unknown workloads and unbounded transition rates degrade honestly."""

    def test_zero_latency_transition_degrades_to_trivial_bounds(self):
        spec = PlatformSpec(
            name="unbounded-transition",
            ips=[IpDef(
                name="cpu",
                workload=WorkloadDef(
                    kind="periodic", task_count=2, cycles=5_000, idle_us=100.0,
                ),
                psm=PsmDef(transitions=[TransitionDef(
                    source="ON1", target="SL1", energy_j=1e-6, latency_us=0.0,
                )]),
            )],
            max_time_ms=10.0,
        )
        reach = compute_reach(build_model(spec))
        assert any("zero latency" in note for note in reach.assumptions)
        # The battery envelope honestly widens to [0, soc0].
        assert reach.run_soc.lo == 0.0
        assert not math.isfinite(reach.window_power_w)
        # Trivial is still sound: every battery level at/below the start
        # is reachable from t=0.
        assert BatteryLevel.EMPTY in reach.battery_set

    def test_uninstantiable_workload_assumes_worst_case(self):
        spec = PlatformSpec(
            name="unknown-workload",
            ips=[IpDef(name="cpu", workload=WorkloadDef(
                kind="explicit", items=[{"task": "t0", "cycles": 0}],
            ))],
            max_time_ms=10.0,
        )
        spec.validate()  # validates, but the workload cannot instantiate
        reach = compute_reach(build_model(spec))
        assert any("uninstantiable" in note for note in reach.assumptions)
        # Worst case on every axis: all priorities, no idle-gap bound.
        assert set(reach.ips[0].priorities) == set(TaskPriority)
        assert reach.ips[0].max_idle_gap_s is None
        # The raw run envelope stays finite (idle/active power ceilings are
        # spec-level), but the decision-visible one widens all the way down:
        # no finite task-energy ceiling means unbounded projection slack.
        assert reach.ips[0].projection_slack_j == math.inf
        assert reach.soc.lo == 0.0


class TestResultQueries:
    def test_new_codes_registered(self):
        for code in ("RULE-DEAD-TRAJECTORY", "PSM-BREAK-EVEN-IDLE",
                     "POLICY-GEM-UNREACHABLE"):
            assert code in CODES

    def test_is_reachable_checks_every_axis(self):
        reach = reach_for("A1")
        live = RuleContext(
            TaskPriority.HIGH, BatteryLevel.FULL, TemperatureLevel.LOW,
            bus=BusLevel.LOW,
        )
        assert reach.is_reachable(live)
        # A1 never leaves FULL, so a LOW-battery context is out.
        dead_battery = RuleContext(
            TaskPriority.HIGH, BatteryLevel.LOW, TemperatureLevel.LOW,
            bus=BusLevel.LOW,
        )
        assert not reach.is_reachable(dead_battery)

    def test_is_reachable_rejects_energy_beyond_gem_bound(self):
        # A1 is single-IP: the GEM can never report pending other-IP energy.
        reach = reach_for("A1")
        assert reach.other_energy_bound_j == 0.0
        context = RuleContext(
            TaskPriority.HIGH, BatteryLevel.FULL, TemperatureLevel.LOW,
            bus=BusLevel.LOW, other_ip_energy_j=1.0,
        )
        assert not reach.is_reachable(context)

    def test_live_rules_exclude_trajectory_dead_and_shadowed(self):
        reach = reach_for("A1")
        table = paper_rule_table()
        live = reach.live_rule_indices(table)
        dead = {0, 2, 4, 6, 7, 8, 9, 12, 15, 16, 17, 18}
        assert live.isdisjoint(dead)
        assert 5 not in live  # statically shadowed row never first-matches
        assert live  # the platform does decide through the table
        selected = {str(s) for s in reach.selected_on_states(table)}
        assert selected == {"ON1", "ON2", "ON4"}
