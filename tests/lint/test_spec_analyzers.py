"""Each spec analyzer flags a hand-built failing platform — and stays quiet
on every shipped one.

The failing specs are minimal: one IP, one deliberate defect each.  The
clean sweep over the registered platforms is the other half of the
contract: lint must not cry wolf on the specs the repo actually ships.
"""

import pytest

from repro.lint import CODES, Severity, lint_spec, spec_rule_table
from repro.platform import (
    BatteryDef,
    BusDef,
    GemDef,
    IpDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    TransitionDef,
    WorkloadDef,
    platform_by_name,
    platform_names,
)

ALL_STATES = ["ON1", "ON2", "ON3", "ON4", "SL2", "SL3", "SL4", "OFF"]


def periodic():
    return WorkloadDef(kind="periodic", task_count=4, cycles=10_000, idle_us=200.0)


def lint(spec):
    spec.validate()
    return lint_spec(spec)


def codes_of(report):
    return {finding.code for finding in report.findings}


def by_code(report, code):
    matches = [f for f in report.findings if f.code == code]
    assert matches, f"no {code} in {[f.code for f in report.findings]}"
    return matches[0]


WILDCARD = {"state": "ON2", "priorities": None, "batteries": None,
            "temperatures": None, "buses": None, "label": "catch-all"}


class TestRulesAnalyzer:
    def test_shadowed_custom_rule_is_error(self):
        dead = {"state": "SL1", "priorities": ["low"], "batteries": None,
                "temperatures": None, "buses": None, "label": "dead"}
        report = lint(PlatformSpec(
            name="shadow", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[WILDCARD, dead]),
        ))
        finding = by_code(report, "RULES-SHADOWED")
        assert finding.severity is Severity.ERROR
        assert finding.path == "platform.policy.rules[1]"
        assert "dead" in finding.message

    def test_contradiction_same_inputs_different_state(self):
        first = {"state": "ON1", "priorities": ["low"], "batteries": None,
                 "temperatures": None, "buses": None, "label": "a"}
        second = dict(first, state="SL1", label="b")
        report = lint(PlatformSpec(
            name="contra", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[WILDCARD, first, second]),
        ))
        finding = by_code(report, "RULES-CONTRADICTION")
        assert finding.severity is Severity.ERROR
        assert finding.path == "platform.policy.rules[2]"

    def test_duplicate_same_inputs_same_state(self):
        first = {"state": "ON1", "priorities": ["low"], "batteries": None,
                 "temperatures": None, "buses": None, "label": "a"}
        report = lint(PlatformSpec(
            name="dup", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[WILDCARD, first, dict(first, label="b")]),
        ))
        finding = by_code(report, "RULES-DUPLICATE")
        assert finding.severity is Severity.WARN

    def test_uncovered_lattice_regions(self):
        only_low = {"state": "ON1", "priorities": ["low"], "batteries": None,
                    "temperatures": None, "buses": None, "label": "only-low"}
        report = lint(PlatformSpec(
            name="uncov", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[only_low]),
        ))
        finding = by_code(report, "RULES-UNCOVERED")
        assert finding.severity is Severity.ERROR
        assert "raise at runtime" in finding.message

    def test_infeasible_uncovered_contexts_are_info_on_ac(self):
        # Covers every priority on AC power only: battery-level contexts are
        # uncovered but the battery model can never produce them.
        ac_only = {"state": "ON1", "priorities": None, "batteries": ["ac_power"],
                   "temperatures": None, "buses": None, "label": "ac"}
        report = lint(PlatformSpec(
            name="ac", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[ac_only]),
            battery=BatteryDef(on_ac_power=True),
        ))
        severities = {f.severity for f in report.findings
                      if f.code == "RULES-UNCOVERED"}
        assert severities == {Severity.INFO}

    def test_library_table1_row6_is_info_not_error(self):
        report = lint(PlatformSpec(
            name="plain", ips=[IpDef(name="cpu", workload=periodic())],
        ))
        finding = by_code(report, "RULES-SHADOWED")
        assert finding.severity is Severity.INFO
        assert "kept verbatim" in finding.message
        assert "t1-row6" in finding.message


class TestPsmAnalyzer:
    def test_absorbing_sleep_state(self):
        report = lint(PlatformSpec(name="absorb", ips=[IpDef(
            name="cpu", workload=periodic(),
            psm=PsmDef(transitions=[TransitionDef("SL1", s, allowed=False)
                                    for s in ALL_STATES]),
        )]))
        finding = by_code(report, "PSM-NO-WAKE")
        assert finding.severity is Severity.ERROR
        assert "SL1" in finding.message

    def test_unreachable_sleep_state(self):
        report = lint(PlatformSpec(name="unreach", ips=[IpDef(
            name="cpu", workload=periodic(),
            psm=PsmDef(transitions=[TransitionDef(s, "SL1", allowed=False)
                                    for s in ALL_STATES]),
        )]))
        assert by_code(report, "PSM-UNREACHABLE").severity is Severity.WARN

    def test_sleep_power_not_below_idle(self):
        report = lint(PlatformSpec(name="sleeppower", ips=[IpDef(
            name="cpu", workload=periodic(), residual_fraction={"SL1": 1.0},
        )]))
        finding = by_code(report, "PSM-SLEEP-POWER")
        assert finding.severity is Severity.WARN
        assert "SL1" in finding.message

    def test_break_even_beyond_horizon(self):
        report = lint(PlatformSpec(name="brkeven", max_time_ms=1.0, ips=[IpDef(
            name="cpu", workload=periodic(),
            psm=PsmDef(transitions=[
                TransitionDef("ON1", "SL4", energy_j=10.0, latency_us=5.0),
                TransitionDef("SL4", "ON1", energy_j=10.0, latency_us=5.0),
            ]),
        )]))
        assert by_code(report, "PSM-BREAK-EVEN").severity is Severity.WARN


class TestPolicyAnalyzer:
    def test_timeout_below_break_even(self):
        report = lint(PlatformSpec(
            name="timeout", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="fixed-timeout", timeout_ms=0.0001),
        ))
        finding = by_code(report, "POLICY-TIMEOUT")
        assert finding.severity is Severity.WARN
        assert finding.path == "platform.policy.timeout_ms"

    def test_gem_inert_on_ac_power(self):
        report = lint(PlatformSpec(
            name="geminert", ips=[IpDef(name="cpu", workload=periodic())],
            gem=GemDef(enabled=True), battery=BatteryDef(on_ac_power=True),
        ))
        assert by_code(report, "POLICY-GEM-INERT").severity is Severity.WARN


class TestBusAnalyzer:
    def test_saturated_bus(self):
        report = lint(PlatformSpec(
            name="bussat", max_time_ms=10.0,
            ips=[IpDef(name="cpu",
                       workload=WorkloadDef(kind="periodic", task_count=100,
                                            cycles=1000, idle_us=1.0),
                       bus_words_per_task=1_000_000)],
            bus=BusDef(enabled=True, words_per_second=1000.0),
        ))
        finding = by_code(report, "BUS-SATURATED")
        assert finding.severity is Severity.ERROR
        assert finding.path == "platform.bus.words_per_second"

    def test_cycle_accurate_divisibility(self):
        report = lint(PlatformSpec(
            name="busdiv",
            ips=[IpDef(name="cpu", workload=periodic(), bus_words_per_task=7)],
            bus=BusDef(enabled=True, timing="cycle_accurate", words_per_cycle=4),
        ))
        assert by_code(report, "BUS-CA-DIVISIBILITY").severity is Severity.WARN

    def test_enabled_but_unused_bus(self):
        report = lint(PlatformSpec(
            name="busunused", ips=[IpDef(name="cpu", workload=periodic())],
            bus=BusDef(enabled=True),
        ))
        assert by_code(report, "BUS-UNUSED").severity is Severity.INFO


class TestWorkloadAnalyzer:
    def test_zero_cycle_explicit_item(self):
        report = lint(PlatformSpec(name="wzero", ips=[IpDef(
            name="cpu",
            workload=WorkloadDef(kind="explicit", items=[{"task": "t0", "cycles": 0}]),
        )]))
        assert by_code(report, "WORKLOAD-EMPTY-TASK").severity is Severity.ERROR

    def test_unfinishable_workload(self):
        report = lint(PlatformSpec(name="wunfin", max_time_ms=0.01, ips=[IpDef(
            name="cpu",
            workload=WorkloadDef(kind="periodic", task_count=100,
                                 cycles=10_000_000, idle_us=100.0),
        )]))
        finding = by_code(report, "WORKLOAD-UNFINISHABLE")
        assert finding.severity is Severity.ERROR

    def test_never_idle_workload(self):
        report = lint(PlatformSpec(name="wnoidle", ips=[IpDef(
            name="cpu",
            workload=WorkloadDef(kind="periodic", task_count=4, cycles=1000,
                                 idle_us=0.0),
        )]))
        assert by_code(report, "WORKLOAD-NEVER-IDLE").severity is Severity.INFO


class TestShippedPlatformsClean:
    @pytest.mark.parametrize("name", platform_names())
    def test_registered_platform_lints_clean(self, name):
        report = lint_spec(platform_by_name(name))
        assert report.is_clean(), report.describe()

    @pytest.mark.parametrize("name", platform_names())
    def test_every_emitted_code_is_registered(self, name):
        for finding in lint_spec(platform_by_name(name)).findings:
            assert finding.code in CODES


class TestSpecRuleTable:
    def test_default_policy_uses_paper_table(self):
        spec = PlatformSpec(name="p", ips=[IpDef(name="cpu", workload=periodic())])
        assert spec_rule_table(spec) is not None

    def test_non_rule_policy_has_no_table(self):
        spec = PlatformSpec(
            name="p", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="always-on"),
        )
        assert spec_rule_table(spec) is None

    def test_custom_rules_build_a_named_table(self):
        spec = PlatformSpec(
            name="custom", ips=[IpDef(name="cpu", workload=periodic())],
            policy=PolicyDef(name="paper", rules=[WILDCARD]),
        )
        table = spec_rule_table(spec)
        assert table.name == "custom-rules"
        assert len(table.rules) == 1
