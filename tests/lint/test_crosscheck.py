"""Dynamic cross-validation: static unreachability vs the traced event stream.

Two directions: (a) across the paper's six scenarios, the statically-dead
Table 1 row never wins a decision; (b) an injected shadowed rule is caught
by lint *and* fires zero times at runtime — a true positive end to end.
"""

import pytest

from repro.dpm.rules import paper_rule_table
from repro.experiments import (
    crosscheck_paper_platforms,
    crosscheck_scenario,
    decision_contexts,
)
from repro.experiments.lint_crosscheck import PAPER_SCENARIO_NAMES
from repro.lint import Severity, lint_spec
from repro.platform import IpDef, PlatformSpec, PolicyDef, WorkloadDef


class TestPaperScenarios:
    @pytest.mark.parametrize("name", PAPER_SCENARIO_NAMES)
    def test_statically_dead_rules_never_fire(self, name, tmp_path):
        result = crosscheck_scenario(name, trace_dir=tmp_path)
        assert result.ok, result.violations
        assert result.decision_count > 0
        # Table 1's row 6 (index 5) is the statically-dead rule under test.
        assert 5 in result.unreachable
        assert result.fire_counts.get(5, 0) == 0
        # Every decision was replayed against the same table the run used.
        assert sum(result.fire_counts.values()) == result.decision_count
        # The trajectory envelope ran and contained every decision; the
        # narrow paper platforms always leave some Table 1 rows dead.
        assert result.reach_checked
        assert result.trajectory_dead
        for index in result.trajectory_dead:
            assert result.fire_counts.get(index, 0) == 0

    def test_reach_can_be_disabled(self, tmp_path):
        result = crosscheck_scenario("A1", trace_dir=tmp_path, reach=False)
        assert result.ok
        assert not result.reach_checked
        assert result.trajectory_dead == ()

    def test_sweep_helper_covers_all_six(self, tmp_path):
        results = crosscheck_paper_platforms(names=("A1",), trace_dir=tmp_path)
        assert [result.scenario for result in results] == ["A1"]
        assert "ok" in results[0].describe()


def injected_shadowed_spec() -> PlatformSpec:
    """Paper Table 1 plus a deliberately shadowed rule appended at the end."""
    rules = paper_rule_table().as_dicts()
    # A proper subset of t1-row12's match set (bus high only): shadowed, but
    # not an exact duplicate — so lint diagnoses RULES-SHADOWED, not the
    # sharper RULES-CONTRADICTION.
    rules.append({
        "state": "SL4",
        "priorities": ["low"],
        "batteries": ["full"],
        "temperatures": ["low"],
        "buses": ["high"],
        "label": "injected-dead",
    })
    spec = PlatformSpec(
        name="injected",
        ips=[IpDef(
            name="cpu",
            workload=WorkloadDef(kind="periodic", task_count=6,
                                 cycles=20_000, idle_us=300.0),
        )],
        policy=PolicyDef(name="paper", rules=rules),
    )
    spec.validate()
    return spec


class TestInjectedShadowedRule:
    def test_caught_statically_and_dynamically(self, tmp_path):
        spec = injected_shadowed_spec()
        injected = len(spec.policy.rules) - 1

        # Statically: lint flags the injected rule as a hard error
        # (custom tables get ERROR severity, unlike the library table).
        report = lint_spec(spec)
        shadowed = [f for f in report.findings if f.code == "RULES-SHADOWED"
                    and f"rules[{injected}]" in f.path]
        assert shadowed and shadowed[0].severity is Severity.ERROR

        # Dynamically: a traced run never lets the injected rule win.
        result = crosscheck_scenario(spec, trace_dir=tmp_path)
        assert injected in result.unreachable
        assert result.fire_counts.get(injected, 0) == 0
        assert result.ok
        assert result.table_name == "injected-rules"


class TestDecisionContexts:
    def test_trace_parsing_ignores_other_events(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            '{"t_fs": 0, "kind": "sim.backend", "source": "sim"}\n'
            '{"t_fs": 1, "kind": "lem.decision", "source": "cpu",'
            ' "priority": "low", "battery": "full", "temperature": "low",'
            ' "bus": "medium", "other_ip_energy_j": 0.5}\n',
            encoding="utf-8",
        )
        contexts = decision_contexts(trace)
        assert len(contexts) == 1
        assert contexts[0].bus.value == "medium"
        assert contexts[0].other_ip_energy_j == 0.5

    def test_malformed_decision_raises(self, tmp_path):
        from repro.errors import ExperimentError

        trace = tmp_path / "t.jsonl"
        trace.write_text(
            '{"t_fs": 1, "kind": "lem.decision", "source": "cpu",'
            ' "priority": "nope", "battery": "full", "temperature": "low"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ExperimentError):
            decision_contexts(trace)
