"""CLI contract of ``repro-dpm lint`` and ``repro-dpm rules --explain``.

Exit codes: 0 clean (info-level findings allowed), 1 findings,
2 unreadable/invalid input — the same contract the CI jobs rely on.
"""

import json

import pytest

from repro.cli import main


def write_spec(tmp_path, name, **overrides):
    data = {
        "format": "repro-platform/1",
        "name": name,
        "ips": [{
            "name": "cpu",
            "workload": {"kind": "periodic", "task_count": 4,
                         "cycles": 10000, "idle_us": 200.0},
        }],
    }
    data.update(overrides)
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


class TestLintExitCodes:
    def test_default_sweep_over_registered_platforms_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "A1:" in out and "C:" in out

    def test_strict_fails_on_info_findings(self):
        # The library Table 1 carries the kept-verbatim shadowed row 6.
        assert main(["lint", "--strict"]) == 1

    def test_self_check_is_clean(self, capsys):
        assert main(["lint", "--self"]) == 0
        assert "determinism self-check" in capsys.readouterr().out

    def test_findings_exit_1(self, tmp_path, capsys):
        shadowed = write_spec(tmp_path, "shadowed", policy={
            "name": "paper",
            "rules": [
                {"state": "ON2"},
                {"state": "SL1", "priorities": ["low"], "label": "dead"},
            ],
        })
        assert main(["lint", shadowed]) == 1
        assert "RULES-SHADOWED" in capsys.readouterr().out

    def test_clean_file_exit_0(self, tmp_path):
        assert main(["lint", write_spec(tmp_path, "clean")]) == 0

    def test_reach_flag_reports_trajectory_dead_rules(self, capsys):
        # Info severity: exit 0, but the envelope findings are printed.
        assert main(["lint", "A1", "--reach"]) == 0
        out = capsys.readouterr().out
        assert "RULE-DEAD-TRAJECTORY" in out

    def test_reach_sweep_over_registered_platforms(self, capsys):
        assert main(["lint", "--reach"]) == 0
        out = capsys.readouterr().out
        assert "A1:" in out and "RULE-DEAD-TRAJECTORY" in out

    def test_unknown_platform_exit_2(self, capsys):
        assert main(["lint", "no-such-platform"]) == 2
        assert "no-such-platform" in capsys.readouterr().err

    def test_invalid_spec_file_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"format": "repro-platform/1", "name": "x"}',
                        encoding="utf-8")
        assert main(["lint", str(path)]) == 2

    def test_campaign_spec_is_skipped(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps({"scenarios": ["A1"], "setups": ["paper"]}),
                        encoding="utf-8")
        assert main(["lint", str(path)]) == 0
        assert "campaign spec" in capsys.readouterr().out

    def test_registered_platform_by_name(self, capsys):
        assert main(["lint", "A1"]) == 0
        assert "A1:" in capsys.readouterr().out


class TestRulesExplain:
    def test_explain_prints_trace_and_winner(self, capsys):
        assert main(["rules", "--explain", "low", "full", "low"]) == 0
        out = capsys.readouterr().out
        assert "=>" in out  # the matched rule marker
        assert "skipped" in out
        # Every earlier rule appears with its skip reason.
        assert "not accepted" in out

    def test_explain_with_bus_level(self, capsys):
        assert main(["rules", "--explain", "low", "full", "low", "high"]) == 0
        assert "bus=high" in capsys.readouterr().out

    def test_explain_rejects_bad_level(self, capsys):
        assert main(["rules", "--explain", "low", "bogus", "low"]) == 2
        assert "error" in capsys.readouterr().err

    def test_explain_rejects_wrong_arity(self, capsys):
        assert main(["rules", "--explain", "low"]) == 2

    def test_explain_against_spec_table(self, tmp_path, capsys):
        import json as _json

        path = tmp_path / "custom.json"
        path.write_text(_json.dumps({
            "format": "repro-platform/1",
            "name": "custom",
            "ips": [{"name": "cpu",
                     "workload": {"kind": "periodic", "task_count": 4,
                                  "cycles": 10000, "idle_us": 200.0}}],
            "policy": {"name": "paper",
                       "rules": [{"state": "ON3", "label": "everything"}]},
        }), encoding="utf-8")
        assert main(["rules", "--spec", str(path),
                     "--explain", "low", "full", "low"]) == 0
        out = capsys.readouterr().out
        assert "everything" in out
        assert "ON3" in out

    def test_spec_without_rule_table_exit_2(self, tmp_path, capsys):
        path = tmp_path / "noname.json"
        path.write_text(json.dumps({
            "format": "repro-platform/1",
            "name": "always",
            "ips": [{"name": "cpu",
                     "workload": {"kind": "periodic", "task_count": 4,
                                  "cycles": 10000, "idle_us": 200.0}}],
            "policy": {"name": "always-on"},
        }), encoding="utf-8")
        assert main(["rules", "--spec", str(path),
                     "--explain", "low", "full", "low"]) == 2
        assert "non-rule-based" in capsys.readouterr().err

    def test_select_accepts_bus_flag(self, capsys):
        assert main(["rules", "--priority", "low", "--battery", "full",
                     "--temperature", "low", "--bus", "high"]) == 0
        assert "bus=high" in capsys.readouterr().out
