"""Tests for the battery model, status coding and monitor."""

import pytest
from hypothesis import given, strategies as st

from repro.battery import Battery, BatteryConfig, BatteryLevel, BatteryMonitor, BatteryThresholds
from repro.errors import BatteryError
from repro.power import EnergyLedger
from repro.sim import Simulator, ms, sec


class TestThresholds:
    def test_default_classification(self):
        thresholds = BatteryThresholds()
        assert thresholds.classify(0.01) is BatteryLevel.EMPTY
        assert thresholds.classify(0.20) is BatteryLevel.LOW
        assert thresholds.classify(0.45) is BatteryLevel.MEDIUM
        assert thresholds.classify(0.70) is BatteryLevel.HIGH
        assert thresholds.classify(0.95) is BatteryLevel.FULL
        assert thresholds.classify(1.0) is BatteryLevel.FULL

    def test_boundaries_are_half_open(self):
        thresholds = BatteryThresholds()
        assert thresholds.classify(0.05) is BatteryLevel.LOW
        assert thresholds.classify(0.30) is BatteryLevel.MEDIUM
        assert thresholds.classify(0.60) is BatteryLevel.HIGH
        assert thresholds.classify(0.85) is BatteryLevel.FULL

    def test_invalid_soc_rejected(self):
        with pytest.raises(BatteryError):
            BatteryThresholds().classify(1.5)
        with pytest.raises(BatteryError):
            BatteryThresholds().classify(-0.1)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(BatteryError):
            BatteryThresholds(empty=0.5, low=0.4, medium=0.6, high=0.8)
        with pytest.raises(BatteryError):
            BatteryThresholds(empty=0.0)

    def test_representative_soc_round_trip(self):
        thresholds = BatteryThresholds()
        for level in (BatteryLevel.EMPTY, BatteryLevel.LOW, BatteryLevel.MEDIUM,
                      BatteryLevel.HIGH, BatteryLevel.FULL):
            assert thresholds.classify(thresholds.representative_soc(level)) is level
        with pytest.raises(BatteryError):
            thresholds.representative_soc(BatteryLevel.AC_POWER)

    def test_level_ordering_helpers(self):
        assert BatteryLevel.FULL.at_least(BatteryLevel.MEDIUM)
        assert not BatteryLevel.LOW.at_least(BatteryLevel.MEDIUM)
        assert BatteryLevel.AC_POWER.rank > BatteryLevel.FULL.rank
        assert not BatteryLevel.AC_POWER.is_battery
        assert BatteryLevel.EMPTY.is_battery

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_classification_total(self, soc):
        assert BatteryThresholds().classify(soc) in set(BatteryLevel) - {BatteryLevel.AC_POWER}


class TestBatteryModel:
    def test_initial_state(self):
        battery = Battery(BatteryConfig(capacity_j=100.0, initial_state_of_charge=0.5))
        assert battery.remaining_j == pytest.approx(50.0)
        assert battery.state_of_charge == pytest.approx(0.5)
        assert battery.level is BatteryLevel.MEDIUM

    def test_discharge_reduces_charge(self):
        battery = Battery(BatteryConfig(capacity_j=100.0))
        removed = battery.draw_energy(10.0)
        assert removed == pytest.approx(10.0)
        assert battery.remaining_j == pytest.approx(90.0)
        assert battery.drawn_j == pytest.approx(10.0)

    def test_high_rate_discharge_wastes_energy(self):
        config = BatteryConfig(capacity_j=100.0, nominal_power_w=0.1, peukert_exponent=1.2)
        battery = Battery(config)
        removed = battery.draw_energy(1.0, over=sec(1))  # 1 W >> 0.1 W nominal
        assert removed > 1.0
        assert battery.wasted_j == pytest.approx(removed - 1.0)

    def test_nominal_rate_discharge_is_lossless(self):
        config = BatteryConfig(capacity_j=100.0, nominal_power_w=1.0)
        battery = Battery(config)
        removed = battery.draw_energy(0.5, over=sec(1))
        assert removed == pytest.approx(0.5)

    def test_cannot_go_negative(self):
        battery = Battery(BatteryConfig(capacity_j=10.0))
        battery.draw_energy(50.0)
        assert battery.remaining_j == 0.0
        assert battery.is_exhausted
        assert battery.level is BatteryLevel.EMPTY

    def test_recharge_clamped_to_capacity(self):
        battery = Battery(BatteryConfig(capacity_j=10.0, initial_state_of_charge=0.5))
        battery.recharge(100.0)
        assert battery.remaining_j == pytest.approx(10.0)

    def test_ac_power_bypasses_battery(self):
        battery = Battery(BatteryConfig(capacity_j=10.0, on_ac_power=True))
        battery.draw_energy(5.0)
        assert battery.remaining_j == pytest.approx(10.0)
        assert battery.level is BatteryLevel.AC_POWER
        assert battery.level_if_drawn(100.0) is BatteryLevel.AC_POWER

    def test_level_if_drawn_projection(self):
        battery = Battery(BatteryConfig(capacity_j=100.0, initial_state_of_charge=0.35))
        assert battery.level is BatteryLevel.MEDIUM
        assert battery.level_if_drawn(10.0) is BatteryLevel.LOW
        assert battery.level is BatteryLevel.MEDIUM  # projection has no side effect

    def test_self_discharge(self):
        config = BatteryConfig(capacity_j=100.0, self_discharge_w=1.0)
        battery = Battery(config)
        battery.draw_energy(0.0, over=sec(10))
        assert battery.remaining_j == pytest.approx(90.0)

    def test_invalid_inputs_rejected(self):
        battery = Battery()
        with pytest.raises(BatteryError):
            battery.draw_energy(-1.0)
        with pytest.raises(BatteryError):
            battery.recharge(-1.0)
        with pytest.raises(BatteryError):
            battery.level_if_drawn(-1.0)
        with pytest.raises(BatteryError):
            BatteryConfig(capacity_j=0.0)
        with pytest.raises(BatteryError):
            BatteryConfig(initial_state_of_charge=1.5)
        with pytest.raises(BatteryError):
            BatteryConfig(peukert_exponent=0.9)

    def test_snapshot_keys(self):
        snapshot = Battery().snapshot()
        assert {"remaining_j", "state_of_charge", "level", "drawn_j", "wasted_j", "on_ac_power"} <= set(snapshot)

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=40))
    def test_state_of_charge_monotonically_decreases(self, draws):
        battery = Battery(BatteryConfig(capacity_j=50.0))
        previous = battery.state_of_charge
        for amount in draws:
            battery.draw_energy(amount)
            assert battery.state_of_charge <= previous + 1e-12
            previous = battery.state_of_charge
            assert 0.0 <= battery.state_of_charge <= 1.0


class TestBatteryMonitor:
    def test_monitor_drains_battery_from_ledger(self):
        sim = Simulator()
        ledger = EnergyLedger()
        battery = Battery(BatteryConfig(capacity_j=10.0))
        monitor = BatteryMonitor(sim.kernel, "battery", battery, ledger, sample_interval=ms(1))
        sim.add_module(monitor)

        def consumer():
            while True:
                yield ms(1)
                ledger.account("ip0").add_energy(0.05)

        sim.kernel.create_thread(consumer, "consumer")
        sim.run(ms(100))
        assert battery.state_of_charge < 1.0
        assert monitor.level is battery.level
        assert len(monitor.history) >= 99

    def test_monitor_level_signal_tracks_depletion(self):
        sim = Simulator()
        ledger = EnergyLedger()
        battery = Battery(BatteryConfig(capacity_j=1.0))
        monitor = BatteryMonitor(sim.kernel, "battery", battery, ledger, sample_interval=ms(1))
        sim.add_module(monitor)

        def consumer():
            while True:
                yield ms(1)
                ledger.account("ip0").add_energy(0.02)

        sim.kernel.create_thread(consumer, "consumer")
        sim.run(ms(60))
        assert monitor.level in (BatteryLevel.EMPTY, BatteryLevel.LOW)

    def test_sample_now_forces_update(self):
        sim = Simulator()
        ledger = EnergyLedger()
        battery = Battery(BatteryConfig(capacity_j=10.0))
        monitor = BatteryMonitor(sim.kernel, "battery", battery, ledger)
        sim.add_module(monitor)
        ledger.account("ip0").add_energy(5.0)
        level = monitor.sample_now()
        assert level is BatteryLevel.MEDIUM

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(BatteryError):
            BatteryMonitor(sim.kernel, "battery", Battery(), EnergyLedger(), sample_interval=ms(0))
