"""Tests for the functional IP and the SoC builder."""

import pytest

from repro.dpm import DpmSetup
from repro.errors import ConfigurationError
from repro.power import (
    EnergyAccount,
    PowerState,
    PowerStateMachine,
    default_characterization,
    default_transition_table,
)
from repro.sim import Simulator, ms, sec, us
from repro.soc import (
    FunctionalIP,
    IpSpec,
    ServiceChannel,
    ServiceRequestGenerator,
    SocConfig,
    Task,
    build_soc,
    periodic_workload,
)


class ImmediateGrantStub:
    """Minimal LEM stand-in: grants every request instantly at the current state."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.completions = []

    def submit_task_request(self, task):
        class _Grant:
            granted = True
            event = None
            state = None
        return _Grant()

    def notify_task_complete(self, task, next_idle_hint=None):
        self.completions.append((task.name, next_idle_hint))


def build_ip(workload=None, channel=None):
    sim = Simulator()
    characterization = default_characterization()
    account = EnergyAccount("ip0")
    psm = PowerStateMachine(
        sim.kernel,
        "psm",
        characterization=characterization,
        transitions=default_transition_table(),
        energy_account=account,
    )
    sim.add_module(psm)
    ip = FunctionalIP(
        sim.kernel,
        "ip0",
        characterization=characterization,
        psm=psm,
        energy_account=account,
        workload=workload,
        service_channel=channel,
    )
    sim.add_module(ip)
    stub = ImmediateGrantStub(sim.kernel)
    ip.connect_lem(stub)
    return sim, ip, stub, account


class TestFunctionalIP:
    def test_requires_exactly_one_task_source(self):
        sim = Simulator()
        characterization = default_characterization()
        account = EnergyAccount("ip0")
        psm = PowerStateMachine(
            sim.kernel, "psm", characterization, default_transition_table(), account
        )
        with pytest.raises(ConfigurationError):
            FunctionalIP(sim.kernel, "ip0", characterization, psm, account)
        with pytest.raises(ConfigurationError):
            FunctionalIP(
                sim.kernel,
                "ip1",
                characterization,
                psm,
                account,
                workload=periodic_workload(1),
                service_channel=ServiceChannel(sim.kernel),
            )

    def test_bus_words_without_bus_rejected(self):
        sim = Simulator()
        characterization = default_characterization()
        account = EnergyAccount("ip0")
        psm = PowerStateMachine(
            sim.kernel, "psm", characterization, default_transition_table(), account
        )
        with pytest.raises(ConfigurationError):
            FunctionalIP(
                sim.kernel,
                "ip0",
                characterization,
                psm,
                account,
                workload=periodic_workload(1),
                bus_words_per_task=16,
            )

    def test_executes_workload_and_records(self):
        workload = periodic_workload(task_count=4, cycles=100_000, idle=ms(1))
        sim, ip, stub, account = build_ip(workload=workload)
        sim.run(sec(1))
        assert ip.done
        assert ip.tasks_executed == 4
        assert len(ip.executions) == 4
        assert len(stub.completions) == 4
        # Executed at ON1 (the PSM's initial state): zero delay overhead.
        for record in ip.executions:
            assert record.power_state is PowerState.ON1
            assert record.delay_overhead == pytest.approx(0.0, abs=1e-9)
        assert ip.total_task_energy_j == pytest.approx(
            4 * ip.reference_energy_j(workload[0].task), rel=1e-9
        )

    def test_idle_hint_passed_to_lem(self):
        workload = periodic_workload(task_count=2, cycles=1000, idle=ms(3))
        sim, ip, stub, _ = build_ip(workload=workload)
        sim.run(sec(1))
        assert stub.completions[0][1] == ms(3)

    def test_cannot_run_without_lem(self):
        sim = Simulator()
        characterization = default_characterization()
        account = EnergyAccount("ip0")
        psm = PowerStateMachine(
            sim.kernel, "psm", characterization, default_transition_table(), account
        )
        sim.add_module(psm)
        ip = FunctionalIP(
            sim.kernel,
            "ip0",
            characterization,
            psm,
            account,
            workload=periodic_workload(1),
        )
        sim.add_module(ip)
        with pytest.raises(ConfigurationError):
            sim.run(ms(1))

    def test_double_lem_rejected(self):
        sim, ip, stub, _ = build_ip(workload=periodic_workload(1))
        with pytest.raises(ConfigurationError):
            ip.connect_lem(stub)

    def test_channel_driven_ip(self):
        sim = Simulator()
        characterization = default_characterization()
        account = EnergyAccount("ip0")
        psm = PowerStateMachine(
            sim.kernel, "psm", characterization, default_transition_table(), account
        )
        sim.add_module(psm)
        channel = ServiceChannel(sim.kernel, "svc")
        ip = FunctionalIP(
            sim.kernel,
            "ip0",
            characterization,
            psm,
            account,
            service_channel=channel,
        )
        sim.add_module(ip)
        ip.connect_lem(ImmediateGrantStub(sim.kernel))
        generator = ServiceRequestGenerator(
            sim.kernel, "gen", periodic_workload(task_count=3, cycles=50_000, idle=ms(1)), channel
        )
        sim.add_module(generator)
        sim.run(sec(1))
        assert ip.done
        assert ip.tasks_executed == 3


class TestSocBuilder:
    def test_build_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            build_soc([])
        spec = IpSpec(name="ip0", workload=periodic_workload(1))
        with pytest.raises(ConfigurationError):
            build_soc([spec, IpSpec(name="ip0", workload=periodic_workload(1))])
        with pytest.raises(ConfigurationError):
            IpSpec(name="", workload=periodic_workload(1))
        with pytest.raises(ConfigurationError):
            IpSpec(name="x", workload=periodic_workload(1), static_priority=0)

    def test_build_structure_matches_fig1(self):
        specs = [
            IpSpec(name=f"ip{i}", workload=periodic_workload(2, idle=ms(1)), static_priority=i + 1)
            for i in range(3)
        ]
        soc = build_soc(specs, SocConfig(use_gem=True, with_bus=True), DpmSetup.paper())
        assert len(soc.instances) == 3
        assert soc.gem is not None
        assert soc.bus is not None
        assert soc.fan is not None
        assert soc.battery_monitor is not None
        assert soc.temperature_sensor is not None
        assert {ip.basename for ip in soc.ips} == {"ip0", "ip1", "ip2"}
        assert soc.instance("ip1").spec.static_priority == 2
        with pytest.raises(ConfigurationError):
            soc.instance("ghost")
        tree = soc.design_tree()
        assert "gem" in tree and "ip0" in tree and "battery_monitor" in tree

    def test_run_until_done_completes_workloads(self):
        specs = [IpSpec(name="ip0", workload=periodic_workload(3, cycles=50_000, idle=ms(1)))]
        soc = build_soc(specs, SocConfig(), DpmSetup.paper())
        end = soc.run_until_done(max_time=sec(2))
        assert soc.all_done
        assert end.seconds < 2.0
        assert soc.total_energy_j() > 0.0

    def test_max_time_caps_run(self):
        # A workload with huge idle gaps cannot finish within the budget.
        specs = [IpSpec(name="ip0", workload=periodic_workload(100, cycles=50_000, idle=ms(50)))]
        soc = build_soc(specs, SocConfig(), DpmSetup.paper())
        end = soc.run_until_done(max_time=ms(20))
        assert not soc.all_done
        assert end.femtoseconds <= ms(25).femtoseconds
        with pytest.raises(ConfigurationError):
            soc.run_until_done(max_time=ms(0))

    def test_baseline_setup_never_sleeps(self):
        specs = [IpSpec(name="ip0", workload=periodic_workload(3, cycles=50_000, idle=ms(2)))]
        soc = build_soc(specs, SocConfig(), DpmSetup.always_on())
        soc.run_until_done(max_time=sec(2))
        psm = soc.instance("ip0").psm
        assert psm.transition_count == 0
        assert psm.state is PowerState.ON1

    def test_paper_setup_sleeps_during_long_idle(self):
        specs = [IpSpec(name="ip0", workload=periodic_workload(3, cycles=50_000, idle=ms(5)))]
        soc = build_soc(specs, SocConfig(), DpmSetup.paper())
        soc.run_until_done(max_time=sec(2))
        psm = soc.instance("ip0").psm
        assert psm.transition_count > 0
        residency = psm.residency()
        assert any(not state.is_on and duration.femtoseconds > 0 for state, duration in residency.items())
