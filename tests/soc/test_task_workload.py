"""Tests for tasks, priorities and workload generators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.power import InstructionClass, PowerState, default_characterization
from repro.sim import ms, us, ZERO_TIME
from repro.soc import (
    Task,
    TaskExecution,
    TaskPriority,
    Workload,
    WorkloadItem,
    bursty_workload,
    high_activity_workload,
    low_activity_workload,
    periodic_workload,
    random_workload,
)


class TestTaskPriority:
    def test_four_classes(self):
        assert len(TaskPriority) == 4

    def test_rank_ordering(self):
        assert TaskPriority.VERY_HIGH.rank > TaskPriority.HIGH.rank
        assert TaskPriority.HIGH.rank > TaskPriority.MEDIUM.rank
        assert TaskPriority.MEDIUM.rank > TaskPriority.LOW.rank

    def test_at_least(self):
        assert TaskPriority.HIGH.at_least(TaskPriority.MEDIUM)
        assert not TaskPriority.LOW.at_least(TaskPriority.MEDIUM)
        assert TaskPriority.MEDIUM.at_least(TaskPriority.MEDIUM)


class TestTask:
    def test_valid_task(self):
        task = Task("t0", 1000, TaskPriority.HIGH, InstructionClass.DSP)
        assert task.cycles == 1000
        assert task.priority is TaskPriority.HIGH

    def test_invalid_tasks_rejected(self):
        with pytest.raises(WorkloadError):
            Task("", 1000)
        with pytest.raises(WorkloadError):
            Task("t0", 0)
        with pytest.raises(WorkloadError):
            Task("t0", -5)

    def test_reference_duration(self):
        task = Task("t0", 200_000)
        assert task.reference_duration(200e6).seconds == pytest.approx(1e-3)
        with pytest.raises(WorkloadError):
            task.reference_duration(0.0)


class TestTaskExecution:
    def test_delay_overhead(self):
        task = Task("t0", 200_000)
        record = TaskExecution(
            task=task,
            ip_name="ip0",
            request_time=ZERO_TIME,
            grant_time=us(100),
            completion_time=us(1100),
            reference_duration=us(1000),
            reference_energy_j=1.0,
            energy_j=0.5,
        )
        assert record.waiting_time == us(100)
        assert record.execution_time == us(1000)
        assert record.total_latency == us(1100)
        assert record.delay_overhead == pytest.approx(0.1)
        assert record.energy_saving == pytest.approx(0.5)

    def test_missing_reference_rejected(self):
        record = TaskExecution(task=Task("t0", 10), ip_name="ip0")
        with pytest.raises(WorkloadError):
            record.delay_overhead  # noqa: B018
        with pytest.raises(WorkloadError):
            record.energy_saving  # noqa: B018

    def test_as_dict(self):
        record = TaskExecution(
            task=Task("t0", 10),
            ip_name="ip0",
            reference_duration=us(1),
            completion_time=us(2),
        )
        record.power_state = PowerState.ON2
        data = record.as_dict()
        assert data["task"] == "t0"
        assert data["state"] == "ON2"


class TestWorkloadContainer:
    def test_statistics(self):
        workload = periodic_workload(task_count=5, cycles=100_000, idle=ms(1))
        assert len(workload) == 5
        assert workload.total_cycles == 500_000
        assert workload.total_idle == ms(5)
        assert 0.0 < workload.busy_fraction(200e6) < 1.0

    def test_iteration_and_indexing(self):
        workload = periodic_workload(task_count=3)
        assert [item.task.name for item in workload] == [w.task.name for w in workload.items]
        assert workload[0].task.cycles == workload.items[0].task.cycles

    def test_with_priority(self):
        workload = periodic_workload(task_count=3, priority=TaskPriority.LOW)
        promoted = workload.with_priority(TaskPriority.VERY_HIGH)
        assert all(item.task.priority is TaskPriority.VERY_HIGH for item in promoted)
        # original untouched
        assert all(item.task.priority is TaskPriority.LOW for item in workload)

    def test_scaled_idle(self):
        workload = periodic_workload(task_count=3, idle=ms(1))
        scaled = workload.scaled_idle(2.0)
        assert scaled.total_idle == ms(6)
        with pytest.raises(WorkloadError):
            workload.scaled_idle(-1.0)

    def test_serialisation_round_trip(self):
        workload = random_workload(task_count=8, seed=3)
        rebuilt = Workload.from_dicts(workload.as_dicts(), name="rebuilt")
        assert rebuilt.task_count == workload.task_count
        assert rebuilt.total_cycles == workload.total_cycles
        assert [i.task.priority for i in rebuilt] == [i.task.priority for i in workload]

    def test_serialisation_is_lossless_to_the_femtosecond(self):
        # random_workload draws idle gaps at femtosecond granularity; a float
        # microsecond round trip used to destroy the low-order digits.
        workload = random_workload(task_count=16, seed=5)
        rebuilt = Workload.from_dicts(workload.as_dicts())
        assert [i.idle_after for i in rebuilt] == [i.idle_after for i in workload]
        # Stable representation: two round trips serialize identically (this
        # is what keeps campaign job hashes reproducible).
        assert rebuilt.as_dicts() == workload.as_dicts()

    def test_serialisation_accepts_legacy_microsecond_key_with_warning(self):
        entries = [
            {"task": "t0", "cycles": 1000, "priority": "medium",
             "instruction_class": "alu", "idle_after_us": 2.5}
        ]
        with pytest.warns(DeprecationWarning, match="idle_after_us"):
            workload = Workload.from_dicts(entries)
        assert workload[0].idle_after == us(2.5)

    def test_serialisation_emits_only_the_lossless_key(self):
        workload = random_workload(task_count=3, seed=9)
        for entry in workload.as_dicts():
            assert "idle_after_fs" in entry
            assert "idle_after_us" not in entry

    def test_invalid_items_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(items=["not an item"])


class TestGenerators:
    def test_periodic_workload_valid(self):
        workload = periodic_workload(task_count=4, cycles=1000)
        assert all(item.task.cycles == 1000 for item in workload)
        with pytest.raises(WorkloadError):
            periodic_workload(task_count=0)

    def test_random_workload_determinism(self):
        first = random_workload(task_count=20, seed=7)
        second = random_workload(task_count=20, seed=7)
        assert first.as_dicts() == second.as_dicts()
        different = random_workload(task_count=20, seed=8)
        assert first.as_dicts() != different.as_dicts()

    def test_random_workload_validation(self):
        with pytest.raises(WorkloadError):
            random_workload(task_count=0)
        with pytest.raises(WorkloadError):
            random_workload(task_count=1, cycles_range=(100, 10))
        with pytest.raises(WorkloadError):
            random_workload(task_count=1, idle_range=(ms(2), ms(1)))

    def test_activity_levels_differ(self):
        busy = high_activity_workload(task_count=30, seed=1)
        idle = low_activity_workload(task_count=30, seed=1)
        assert busy.busy_fraction(200e6) > 0.5
        assert idle.busy_fraction(200e6) < 0.3

    def test_bursty_structure(self):
        workload = bursty_workload(burst_count=3, tasks_per_burst=4)
        assert len(workload) == 12
        # Last item of each burst carries the long inter-burst idle.
        idles = [item.idle_after for item in workload]
        assert idles[3] > idles[0]
        assert idles[7] > idles[4]
        with pytest.raises(WorkloadError):
            bursty_workload(burst_count=0)

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=10_000))
    def test_random_workload_sizes(self, count, seed):
        workload = random_workload(task_count=count, seed=seed)
        assert workload.task_count == count
        assert workload.total_cycles > 0
        assert all(item.task.cycles > 0 for item in workload)
