"""Tests for the shared bus and the service-request channel."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim import Kernel, Simulator, ms, us
from repro.soc import Bus, ServiceChannel, ServiceRequestGenerator, Task, periodic_workload
from repro.soc.service import ServiceRequest


class TestBus:
    def make_bus(self, arbitration="priority", words_per_second=1e6):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=words_per_second, arbitration=arbitration)
        sim.add_module(bus)
        return sim, bus

    def test_invalid_configuration_rejected(self):
        kernel = Kernel()
        with pytest.raises(ConfigurationError):
            Bus(kernel, "bus", words_per_second=0.0)
        with pytest.raises(ConfigurationError):
            Bus(kernel, "bus2", arbitration="lottery")

    def test_transfer_duration(self):
        _, bus = self.make_bus()
        assert bus.transfer_duration(1000).seconds == pytest.approx(1e-3)
        with pytest.raises(ConfigurationError):
            bus.transfer_duration(0)

    def test_single_master_transfer(self):
        sim, bus = self.make_bus()
        log = []

        def master():
            yield from bus.transfer("m0", 500)
            log.append(sim.now.seconds)

        sim.kernel.create_thread(master, "m0")
        sim.run(ms(10))
        assert log == [pytest.approx(5e-4)]
        assert bus.stats.transfer_count == 1
        assert bus.stats.words_transferred == 500
        assert bus.stats.per_master_words["m0"] == 500
        assert not bus.is_busy

    def test_contention_serialises_transfers(self):
        sim, bus = self.make_bus(arbitration="fifo")
        completions = []

        def master(name):
            def proc():
                yield from bus.transfer(name, 1000)
                completions.append((name, sim.now.seconds))
            return proc

        sim.kernel.create_thread(master("m0"), "m0")
        sim.kernel.create_thread(master("m1"), "m1")
        sim.run(ms(10))
        assert [name for name, _ in completions] == ["m0", "m1"]
        assert completions[0][1] == pytest.approx(1e-3)
        assert completions[1][1] == pytest.approx(2e-3)
        assert bus.stats.busy_time.seconds == pytest.approx(2e-3)

    def test_priority_arbitration_prefers_low_number(self):
        sim, bus = self.make_bus(arbitration="priority")
        completions = []

        def holder():
            yield from bus.transfer("holder", 1000, priority=0)
            completions.append("holder")

        def low_priority():
            yield us(10)
            yield from bus.transfer("low", 1000, priority=5)
            completions.append("low")

        def high_priority():
            yield us(20)
            yield from bus.transfer("high", 1000, priority=1)
            completions.append("high")

        sim.kernel.create_thread(holder, "holder")
        sim.kernel.create_thread(low_priority, "low")
        sim.kernel.create_thread(high_priority, "high")
        sim.run(ms(10))
        # While the holder owns the bus both others queue; the high-priority
        # master (lower number) wins the next grant despite arriving later.
        assert completions == ["holder", "high", "low"]

    def test_occupancy_and_waiting_stats(self):
        sim, bus = self.make_bus()

        def master(name, delay):
            def proc():
                yield delay
                yield from bus.transfer(name, 2000)
            return proc

        sim.kernel.create_thread(master("m0", us(0)), "m0")
        sim.kernel.create_thread(master("m1", us(10)), "m1")
        sim.run(ms(10))
        assert 0.0 < bus.occupancy() <= 1.0
        assert bus.stats.average_wait().seconds > 0.0
        assert bus.stats.occupancy(ms(4)) == pytest.approx(1.0)


class TestServiceChannel:
    def test_push_pop_counts(self):
        kernel = Kernel()
        channel = ServiceChannel(kernel, "svc")
        channel.push_task(Task("t0", 100))
        channel.push_task(Task("t1", 100))
        assert channel.pending == 2
        request = channel.try_pop()
        assert request.task.name == "t0"
        assert channel.pending == 1
        assert channel.pushed_count == 2
        assert channel.popped_count == 1

    def test_try_pop_empty_returns_none(self):
        channel = ServiceChannel(Kernel(), "svc")
        assert channel.try_pop() is None

    def test_closed_channel_rejects_push(self):
        channel = ServiceChannel(Kernel(), "svc")
        channel.close()
        assert channel.is_closed
        with pytest.raises(WorkloadError):
            channel.push(ServiceRequest(task=Task("t0", 1)))

    def test_consumer_waits_for_producer(self):
        sim = Simulator()
        channel = ServiceChannel(sim.kernel, "svc")
        consumed = []

        def consumer():
            while True:
                request = yield from channel.wait_and_pop()
                if request is None:
                    return
                consumed.append((request.task.name, sim.now.seconds))

        def producer():
            yield ms(1)
            channel.push_task(Task("a", 10))
            yield ms(1)
            channel.push_task(Task("b", 10))
            channel.close()

        sim.kernel.create_thread(consumer, "consumer")
        sim.kernel.create_thread(producer, "producer")
        sim.run(ms(10))
        assert [name for name, _ in consumed] == ["a", "b"]
        assert consumed[0][1] == pytest.approx(1e-3)

    def test_generator_module_pushes_workload(self):
        sim = Simulator()
        channel = ServiceChannel(sim.kernel, "svc")
        workload = periodic_workload(task_count=5, cycles=1000, idle=ms(1))
        generator = ServiceRequestGenerator(sim.kernel, "generator", workload, channel)
        sim.add_module(generator)
        sim.run(ms(20))
        assert generator.issued == 5
        assert channel.pushed_count == 5
        assert channel.is_closed
