"""Tests for the shared bus and the service-request channel."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim import AnyOf, Kernel, Simulator, ms, us
from repro.soc import (
    Bus,
    BusLevel,
    BusThresholds,
    ServiceChannel,
    ServiceRequestGenerator,
    Task,
    periodic_workload,
)
from repro.sim.native import available as _native_available
from repro.soc.service import ServiceRequest

#: both kernel backends, for the timing-mode equivalence contract
BACKENDS = [
    "python",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not _native_available(), reason="native core extension not built"
        ),
    ),
]


class TestBus:
    def make_bus(self, arbitration="priority", words_per_second=1e6):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=words_per_second, arbitration=arbitration)
        sim.add_module(bus)
        return sim, bus

    def test_invalid_configuration_rejected(self):
        kernel = Kernel()
        with pytest.raises(ConfigurationError):
            Bus(kernel, "bus", words_per_second=0.0)
        with pytest.raises(ConfigurationError):
            Bus(kernel, "bus2", arbitration="lottery")

    def test_transfer_duration(self):
        _, bus = self.make_bus()
        assert bus.transfer_duration(1000).seconds == pytest.approx(1e-3)
        with pytest.raises(ConfigurationError):
            bus.transfer_duration(0)

    def test_single_master_transfer(self):
        sim, bus = self.make_bus()
        log = []

        def master():
            yield from bus.transfer("m0", 500)
            log.append(sim.now.seconds)

        sim.kernel.create_thread(master, "m0")
        sim.run(ms(10))
        assert log == [pytest.approx(5e-4)]
        assert bus.stats.transfer_count == 1
        assert bus.stats.words_transferred == 500
        assert bus.stats.per_master_words["m0"] == 500
        assert not bus.is_busy

    def test_contention_serialises_transfers(self):
        sim, bus = self.make_bus(arbitration="fifo")
        completions = []

        def master(name):
            def proc():
                yield from bus.transfer(name, 1000)
                completions.append((name, sim.now.seconds))
            return proc

        sim.kernel.create_thread(master("m0"), "m0")
        sim.kernel.create_thread(master("m1"), "m1")
        sim.run(ms(10))
        assert [name for name, _ in completions] == ["m0", "m1"]
        assert completions[0][1] == pytest.approx(1e-3)
        assert completions[1][1] == pytest.approx(2e-3)
        assert bus.stats.busy_time.seconds == pytest.approx(2e-3)

    def test_priority_arbitration_prefers_low_number(self):
        sim, bus = self.make_bus(arbitration="priority")
        completions = []

        def holder():
            yield from bus.transfer("holder", 1000, priority=0)
            completions.append("holder")

        def low_priority():
            yield us(10)
            yield from bus.transfer("low", 1000, priority=5)
            completions.append("low")

        def high_priority():
            yield us(20)
            yield from bus.transfer("high", 1000, priority=1)
            completions.append("high")

        sim.kernel.create_thread(holder, "holder")
        sim.kernel.create_thread(low_priority, "low")
        sim.kernel.create_thread(high_priority, "high")
        sim.run(ms(10))
        # While the holder owns the bus both others queue; the high-priority
        # master (lower number) wins the next grant despite arriving later.
        assert completions == ["holder", "high", "low"]

    def test_occupancy_and_waiting_stats(self):
        sim, bus = self.make_bus()

        def master(name, delay):
            def proc():
                yield delay
                yield from bus.transfer(name, 2000)
            return proc

        sim.kernel.create_thread(master("m0", us(0)), "m0")
        sim.kernel.create_thread(master("m1", us(10)), "m1")
        sim.run(ms(10))
        assert 0.0 < bus.occupancy() <= 1.0
        assert bus.stats.average_wait().seconds > 0.0
        assert bus.stats.occupancy(ms(4)) == pytest.approx(1.0)

    def test_fifo_contention_grants_in_arrival_order(self):
        sim, bus = self.make_bus(arbitration="fifo")
        completions = []

        def master(name, delay, priority):
            def proc():
                yield delay
                yield from bus.transfer(name, 1000, priority=priority)
                completions.append(name)
            return proc

        # Later arrivals carry *better* priority numbers: FIFO must ignore them.
        sim.kernel.create_thread(master("m0", us(0), 9), "m0")
        sim.kernel.create_thread(master("m1", us(10), 1), "m1")
        sim.kernel.create_thread(master("m2", us(20), 0), "m2")
        sim.run(ms(10))
        assert completions == ["m0", "m1", "m2"]

    def test_priority_contention_is_unfair_by_design(self):
        sim, bus = self.make_bus(arbitration="priority")
        completions = []

        def master(name, delay, priority):
            def proc():
                yield delay
                yield from bus.transfer(name, 1000, priority=priority)
                completions.append(name)
            return proc

        sim.kernel.create_thread(master("m0", us(0), 9), "m0")
        sim.kernel.create_thread(master("m1", us(10), 1), "m1")
        sim.kernel.create_thread(master("m2", us(20), 0), "m2")
        sim.run(ms(10))
        # Same arrival pattern as the FIFO test, opposite outcome: the best
        # priority number wins every re-arbitration.
        assert completions == ["m0", "m2", "m1"]


class TestBusStatisticsMidRun:
    """The statistics bugs: mid-run reads must not under/over-report."""

    def make_bus(self, **kwargs):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6, **kwargs)
        sim.add_module(bus)
        return sim, bus

    def test_mid_transfer_occupancy_credits_in_flight_portion(self):
        sim, bus = self.make_bus()

        def master():
            yield from bus.transfer("m0", 1000)  # 1 ms at 1e6 words/s

        sim.kernel.create_thread(master, "m0")
        sim.run(us(500))
        # Half the transfer elapsed and the bus was busy the whole time; the
        # stats have credited nothing yet (release has not happened).
        assert bus.stats.busy_time.is_zero
        assert bus.occupancy() == pytest.approx(1.0)
        assert bus.busy_time_so_far().seconds == pytest.approx(500e-6)
        sim.run(ms(10))
        assert bus.occupancy() < 1.0
        assert bus.stats.busy_time.seconds == pytest.approx(1e-3)

    def test_average_wait_counts_granted_population_mid_run(self):
        sim, bus = self.make_bus()

        def master(name, delay):
            def proc():
                yield delay
                yield from bus.transfer(name, 1000)
            return proc

        sim.kernel.create_thread(master("m0", us(0)), "m0")
        sim.kernel.create_thread(master("m1", us(100)), "m1")
        sim.run(us(1500))
        # m0 waited 0 and completed; m1 waited 900 us, was granted at 1 ms
        # and is still transferring.  Release-based counting would divide
        # m1's wait by m0's lone completed transfer (900 us); the grant-based
        # figures agree: two grants, 450 us average.
        assert bus.stats.transfer_count == 1
        assert bus.stats.grant_count == 2
        assert bus.stats.average_wait().seconds == pytest.approx(450e-6)

    def test_wait_time_is_recorded_on_the_request(self):
        sim, bus = self.make_bus()
        handles = []

        def master(name, delay):
            def proc():
                yield delay
                handle = bus.request(name, 1000)
                handles.append(handle)
                if not handle.granted:
                    yield handle.event
                yield handle.duration
                bus.complete(handle)
            return proc

        sim.kernel.create_thread(master("m0", us(0)), "m0")
        sim.kernel.create_thread(master("m1", us(100)), "m1")
        sim.run(ms(5))
        assert handles[0].wait_time.is_zero
        assert handles[1].wait_time.seconds == pytest.approx(900e-6)


class TestBusCancellation:
    """Cancellation-safe arbitration: dead masters can never wedge the bus."""

    def make_bus(self, **kwargs):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6, **kwargs)
        sim.add_module(bus)
        return sim, bus

    def _spawn_transfer(self, sim, bus, name, delay, words=1000, log=None):
        def proc():
            yield delay
            yield from bus.transfer(name, words)
            if log is not None:
                log.append((name, sim.now.seconds))
        return sim.kernel.create_thread(proc, name)

    def test_killed_queued_waiter_is_dropped_not_granted(self):
        sim, bus = self.make_bus()
        log = []
        self._spawn_transfer(sim, bus, "holder", us(0), log=log)
        victim = self._spawn_transfer(sim, bus, "victim", us(10), log=log)
        self._spawn_transfer(sim, bus, "late", us(20), log=log)
        sim.run(us(500))  # victim and late are both queued behind the holder
        assert bus.queue_length == 2
        victim.kill()
        sim.run(ms(10))
        # Pre-fix behaviour: the grant went to the dead victim, the bus was
        # never released and "late" starved forever.
        assert [name for name, _ in log] == ["holder", "late"]
        assert log[1][1] == pytest.approx(2e-3)
        assert not bus.is_busy
        assert bus.stats.cancelled_count == 1
        assert bus.stats.grant_count == 2

    def test_killed_owner_frees_the_bus_mid_transfer(self):
        sim, bus = self.make_bus()
        log = []
        owner = self._spawn_transfer(sim, bus, "owner", us(0), log=log)
        self._spawn_transfer(sim, bus, "next", us(10), log=log)
        sim.run(us(400))  # owner is mid-transfer (1 ms long)
        owner.kill()
        sim.run(ms(10))
        assert [name for name, _ in log] == ["next"]
        # The aborted portion of the owner's occupation is still busy time.
        assert bus.stats.busy_time.seconds == pytest.approx(400e-6 + 1e-3)
        assert bus.stats.transfer_count == 1  # only "next" completed
        assert bus.stats.words_transferred == 1000
        assert bus.stats.cancelled_count == 1

    def test_timed_out_waiter_is_dropped_at_grant_time(self):
        # A master that stops waiting *without* cancelling (AnyOf timeout)
        # must be skipped when its turn comes.
        sim, bus = self.make_bus()
        outcomes = []

        def holder():
            yield from bus.transfer("holder", 1000)
            outcomes.append("holder")

        def impatient():
            yield us(10)
            handle = bus.request("impatient", 1000)
            timer = sim.kernel.event("timeout")
            timer.notify_after(us(100))
            yield AnyOf([handle.event, timer])
            if handle.granted:  # pragma: no cover - not reached in this test
                yield handle.duration
                bus.complete(handle)
                outcomes.append("impatient")
            else:
                outcomes.append("gave-up")

        def patient():
            yield us(20)
            yield from bus.transfer("patient", 1000)
            outcomes.append("patient")

        sim.kernel.create_thread(holder, "holder")
        sim.kernel.create_thread(impatient, "impatient")
        sim.kernel.create_thread(patient, "patient")
        sim.run(ms(10))
        assert outcomes == ["gave-up", "holder", "patient"]
        assert bus.stats.cancelled_count == 1
        assert not bus.is_busy

    def test_explicit_cancel_dequeues_and_reports(self):
        sim, bus = self.make_bus()
        results = {}

        def holder():
            yield from bus.transfer("holder", 1000)

        def fickle():
            yield us(10)
            handle = bus.request("fickle", 500)
            results["first_cancel"] = bus.cancel(handle)
            results["second_cancel"] = bus.cancel(handle)

        sim.kernel.create_thread(holder, "holder")
        sim.kernel.create_thread(fickle, "fickle")
        sim.run(ms(10))
        assert results == {"first_cancel": True, "second_cancel": False}
        assert bus.queue_length == 0
        assert bus.stats.cancelled_count == 1

    def test_third_party_cancel_wakes_the_parked_master(self):
        # A supervisor withdrawing someone else's queued request must wake
        # the parked master (which then observes request.cancelled).
        sim, bus = self.make_bus()
        log = []
        handles = {}

        def holder():
            yield from bus.transfer("holder", 1000)
            log.append(("holder", sim.now.seconds))

        def victim():
            yield us(10)
            yield from bus.transfer("victim", 1000)
            log.append(("victim", sim.now.seconds))

        def supervisor():
            yield us(100)
            queued = bus._queue[0]
            handles["victim"] = queued
            assert bus.cancel(queued) is True
            log.append(("cancelled", sim.now.seconds))

        sim.kernel.create_thread(holder, "holder")
        victim_process = sim.kernel.create_thread(victim, "victim")
        sim.kernel.create_thread(supervisor, "supervisor")
        sim.run(ms(10))
        # The victim woke at cancel time, saw the cancellation, skipped the
        # transfer and continued immediately instead of sleeping forever.
        assert [entry[0] for entry in log] == ["cancelled", "victim", "holder"]
        assert log[1][1] == pytest.approx(100e-6)  # woken at cancel time
        assert victim_process.terminated
        assert handles["victim"].cancelled and not handles["victim"].granted
        assert bus.stats.transfer_count == 1

    def test_cancel_after_completion_is_rejected(self):
        sim, bus = self.make_bus()
        handles = []

        def master():
            handle = bus.request("m0", 100)
            handles.append(handle)
            if not handle.granted:  # pragma: no cover - granted synchronously
                yield handle.event
            yield handle.duration
            bus.complete(handle)

        sim.kernel.create_thread(master, "m0")
        sim.run(ms(10))
        assert handles[0].completed
        assert bus.cancel(handles[0]) is False
        assert bus.stats.cancelled_count == 0

    def test_cancelled_request_does_not_shadow_live_one(self):
        # A cancelled high-priority entry must not win arbitration.
        sim, bus = self.make_bus(arbitration="priority")
        log = []

        def holder():
            yield from bus.transfer("holder", 1000, priority=0)
            log.append("holder")

        cancelled_handle = {}

        def urgent():
            yield us(10)
            handle = bus.request("urgent", 1000, priority=0)
            cancelled_handle["urgent"] = handle
            bus.cancel(handle)

        def background():
            yield us(20)
            yield from bus.transfer("background", 1000, priority=9)
            log.append("background")

        sim.kernel.create_thread(holder, "holder")
        sim.kernel.create_thread(urgent, "urgent")
        sim.kernel.create_thread(background, "background")
        sim.run(ms(10))
        assert log == ["holder", "background"]
        assert not cancelled_handle["urgent"].granted


class TestCycleAccurateBus:
    """The tentpole: posedge-arbitrated grants driven from Clock.out."""

    def make_bus(self, words_per_cycle=4, words_per_second=1e6, **kwargs):
        sim = Simulator()
        bus = Bus(
            sim.kernel,
            "bus",
            words_per_second=words_per_second,
            timing="cycle_accurate",
            words_per_cycle=words_per_cycle,
            **kwargs,
        )
        sim.add_module(bus)
        return sim, bus

    def test_configuration_validation(self):
        kernel = Kernel()
        with pytest.raises(ConfigurationError):
            Bus(kernel, "b1", timing="clairvoyant")
        with pytest.raises(ConfigurationError):
            Bus(kernel, "b2", timing="cycle_accurate", words_per_cycle=0)
        with pytest.raises(ConfigurationError):
            Bus(kernel, "b3", timing="cycle_accurate", words_per_cycle=2.5)

    def test_event_driven_bus_owns_no_clock(self):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus")
        sim.add_module(bus)
        assert bus.clock is None
        assert not bus.is_cycle_accurate

    def test_cycle_accurate_bus_keeps_its_clock_virtual(self):
        # Batched arbitration computes grant edges analytically from the
        # clock's schedule (Clock.next_posedge_fs), so the clock must stay
        # on the virtual fast path: no toggle thread, no per-cycle wakes.
        _, bus = self.make_bus()
        assert bus.is_cycle_accurate
        assert bus.clock is not None
        assert not bus.clock.is_materialized
        # words_per_second / words_per_cycle = 250 kHz -> 4 us period
        assert bus.clock.period == us(4)

    def test_batched_arbitration_wakes_only_on_interesting_edges(self):
        # An idle cycle-accurate bus must cost zero kernel work per cycle:
        # running 1000 bus periods with no traffic performs no time advances
        # beyond the run horizon itself.
        sim, bus = self.make_bus()
        sim.elaborate()
        sim.kernel.initialize()
        before = sim.kernel.stats.time_advances
        sim.kernel.run(ms(4))  # 1000 idle bus cycles at 4 us
        assert sim.kernel.stats.time_advances == before
        assert not bus.clock.is_materialized

    def test_durations_quantised_to_whole_cycles(self):
        _, bus = self.make_bus(words_per_cycle=4)
        period = bus.clock.period
        assert bus.cycles_for(1) == 1
        assert bus.cycles_for(4) == 1
        assert bus.cycles_for(5) == 2
        assert bus.transfer_duration(1) == period
        assert bus.transfer_duration(9) == us(12)
        with pytest.raises(ConfigurationError):
            bus.transfer_duration(0)

    def test_grants_land_only_on_posedges(self):
        sim, bus = self.make_bus()
        period_fs = int(bus.clock.period)
        grants = []

        def master(name, delay, words):
            def proc():
                yield delay
                handle = bus.request(name, words)
                assert not handle.granted  # never granted synchronously
                yield handle.event
                grants.append((name, sim.kernel.now_fs))
                yield handle.duration
                bus.complete(handle)
            return proc

        # Requests arrive off-grid; grants must still land on posedges.
        sim.kernel.create_thread(master("m0", us(3), 7), "m0")
        sim.kernel.create_thread(master("m1", us(5), 4), "m1")
        sim.kernel.create_thread(master("m2", us(11), 2), "m2")
        sim.run(ms(10))
        assert len(grants) == 3
        for name, instant in grants:
            assert instant > 0 and instant % period_fs == 0, (name, instant)
        # Back-to-back: the bus frees at a posedge and re-grants at that
        # same instant (m0: 2 cycles from 4 us -> release at 12 us).
        assert grants[0] == ("m0", 1 * period_fs)
        assert grants[1] == ("m1", 3 * period_fs)

    def test_busy_signal_rises_only_on_the_cycle_grid(self):
        sim, bus = self.make_bus()
        period_fs = int(bus.clock.period)
        edges = []
        bus.busy_signal.add_observer(lambda when, value: edges.append((int(when), value)))

        def master(name, delay, words):
            def proc():
                yield delay
                yield from bus.transfer(name, words)
            return proc

        sim.kernel.create_thread(master("m0", us(1), 6), "m0")
        sim.kernel.create_thread(master("m1", us(2), 3), "m1")
        sim.run(ms(10))
        assert edges, "the busy signal never toggled"
        for instant, value in edges:
            if value:  # rising edge == a grant
                assert instant % period_fs == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equivalence_with_event_driven_within_one_bus_period(self, backend):
        # Same contention pattern in both timing modes: every completion of
        # the cycle-accurate run lands within one bus period of its
        # event-driven counterpart (words are multiples of words_per_cycle,
        # so only the grant alignment differs, never the duration).  Runs on
        # both kernel backends: arbitration timing must not depend on the
        # event-heap implementation.
        pattern = [("m0", 0.0, 8), ("m1", 3.0, 12), ("m2", 7.0, 4)]

        def run(timing):
            sim = Simulator(backend=backend)
            bus = Bus(
                sim.kernel,
                "bus",
                words_per_second=1e6,
                timing=timing,
                words_per_cycle=4,
            )
            sim.add_module(bus)
            completions = {}

            def master(name, delay_us, words):
                def proc():
                    yield us(delay_us)
                    yield from bus.transfer(name, words)
                    completions[name] = sim.kernel.now_fs
                return proc

            for name, delay_us, words in pattern:
                sim.kernel.create_thread(master(name, delay_us, words), name)
            sim.run(ms(10))
            return bus, completions

        event_bus, event_times = run("event_driven")
        cycle_bus, cycle_times = run("cycle_accurate")
        period_fs = int(cycle_bus.clock.period)
        assert set(event_times) == set(cycle_times) == {"m0", "m1", "m2"}
        for name in event_times:
            shift = cycle_times[name] - event_times[name]
            assert 0 <= shift <= period_fs, (name, shift)
        assert event_bus.stats.words_transferred == cycle_bus.stats.words_transferred

    def test_killed_waiter_under_cycle_accurate_arbitration(self):
        sim, bus = self.make_bus()
        log = []

        def master(name, delay, words):
            def proc():
                yield delay
                yield from bus.transfer(name, words)
                log.append(name)
            return proc

        sim.kernel.create_thread(master("holder", us(0), 40), "holder")
        victim = sim.kernel.create_thread(master("victim", us(5), 8), "victim")
        sim.kernel.create_thread(master("late", us(6), 8), "late")
        sim.run(us(20))  # holder owns the bus; victim and late are queued
        victim.kill()
        sim.run(ms(10))
        assert log == ["holder", "late"]
        assert not bus.is_busy
        assert bus.stats.cancelled_count == 1


class TestBusLevel:
    def test_threshold_classification(self):
        thresholds = BusThresholds(medium=0.4, high=0.75)
        assert thresholds.classify(0.0) is BusLevel.LOW
        assert thresholds.classify(0.39) is BusLevel.LOW
        assert thresholds.classify(0.4) is BusLevel.MEDIUM
        assert thresholds.classify(0.74) is BusLevel.MEDIUM
        assert thresholds.classify(0.75) is BusLevel.HIGH
        assert thresholds.classify(1.0) is BusLevel.HIGH

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            BusThresholds(medium=0.8, high=0.5)
        with pytest.raises(ConfigurationError):
            BusThresholds(medium=0.0, high=0.5)

    def test_occupancy_level_tracks_traffic(self):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6)
        sim.add_module(bus)

        def master():
            yield from bus.transfer("m0", 1000)   # busy 1 ms...
            yield ms(9)                           # ...then idle 9 ms

        sim.kernel.create_thread(master, "m0")
        assert bus.occupancy_level() is BusLevel.LOW
        sim.run(us(800))
        # 0.8 ms elapsed, all of it busy (in-flight credit): occupancy 1.0.
        assert bus.occupancy_level() is BusLevel.HIGH
        sim.run(ms(10))  # 10.8 ms elapsed in total, 1 ms of it busy
        assert bus.occupancy() == pytest.approx(1.0 / 10.8, rel=1e-3)
        # The level decays once the busy interval ages out of the window.
        assert bus.occupancy_level() is BusLevel.LOW

    def test_level_tracks_current_contention_not_lifetime_average(self):
        # A late saturation burst on a long-idle run must register as HIGH
        # even though the lifetime occupancy is diluted toward zero, and
        # fade once the bus has been idle for a window again.
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6)  # window 8.192 ms
        sim.add_module(bus)

        def master():
            yield ms(100)  # a long idle era first
            for _ in range(4):
                yield from bus.transfer("m0", 2000)  # 8 ms saturated burst

        sim.kernel.create_thread(master, "m0")
        sim.run(ms(99))
        assert bus.occupancy_level() is BusLevel.LOW
        sim.run(ms(9))  # 108 ms: deep inside the burst
        assert bus.occupancy() < 0.1  # lifetime average is diluted...
        assert bus.recent_occupancy() > 0.9  # ...the window is not
        assert bus.occupancy_level() is BusLevel.HIGH
        sim.run(ms(30))  # burst over, idle for multiple windows
        assert bus.occupancy_level() is BusLevel.LOW

    def test_custom_window_reads_are_non_destructive(self):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6)  # window 8.192 ms
        sim.add_module(bus)

        def master():
            yield from bus.transfer("m0", 5000)  # busy 0..5 ms

        sim.kernel.create_thread(master, "m0")
        sim.run(ms(10))
        before = bus.recent_occupancy()
        assert before == pytest.approx((5 - (10 - 8.192)) / 8.192, rel=1e-6)
        # A narrower diagnostic read must not discard history the default
        # window still needs, and out-of-range windows are rejected.
        assert bus.recent_occupancy(ms(1)) == 0.0
        assert bus.recent_occupancy() == pytest.approx(before)
        with pytest.raises(ConfigurationError):
            bus.recent_occupancy(ms(0))
        with pytest.raises(ConfigurationError):
            bus.recent_occupancy(ms(100))  # beyond the retained history

    def test_level_signal_updates_only_while_observed(self):
        sim = Simulator()
        bus = Bus(sim.kernel, "bus", words_per_second=1e6)
        sim.add_module(bus)

        def master():
            yield from bus.transfer("m0", 2000)

        sim.kernel.create_thread(master, "m0")
        sim.run(us(100))
        # Nobody observes the signal: the mirror stays at its initial value
        # even though the windowed occupancy is saturated.
        assert bus.level_signal.read() is BusLevel.LOW
        assert bus.recent_occupancy() == pytest.approx(1.0)
        observed = []
        bus.level_signal.add_observer(lambda when, value: observed.append(value))
        sim.run(ms(10))
        # With an observer attached, the release refreshed the mirror with
        # the level *as of that transaction* (the documented semantics);
        # the on-demand level has decayed since.
        assert observed == [BusLevel.HIGH]
        assert bus.occupancy_level() is BusLevel.LOW


class TestServiceChannel:
    def test_push_pop_counts(self):
        kernel = Kernel()
        channel = ServiceChannel(kernel, "svc")
        channel.push_task(Task("t0", 100))
        channel.push_task(Task("t1", 100))
        assert channel.pending == 2
        request = channel.try_pop()
        assert request.task.name == "t0"
        assert channel.pending == 1
        assert channel.pushed_count == 2
        assert channel.popped_count == 1

    def test_try_pop_empty_returns_none(self):
        channel = ServiceChannel(Kernel(), "svc")
        assert channel.try_pop() is None

    def test_closed_channel_rejects_push(self):
        channel = ServiceChannel(Kernel(), "svc")
        channel.close()
        assert channel.is_closed
        with pytest.raises(WorkloadError):
            channel.push(ServiceRequest(task=Task("t0", 1)))

    def test_consumer_waits_for_producer(self):
        sim = Simulator()
        channel = ServiceChannel(sim.kernel, "svc")
        consumed = []

        def consumer():
            while True:
                request = yield from channel.wait_and_pop()
                if request is None:
                    return
                consumed.append((request.task.name, sim.now.seconds))

        def producer():
            yield ms(1)
            channel.push_task(Task("a", 10))
            yield ms(1)
            channel.push_task(Task("b", 10))
            channel.close()

        sim.kernel.create_thread(consumer, "consumer")
        sim.kernel.create_thread(producer, "producer")
        sim.run(ms(10))
        assert [name for name, _ in consumed] == ["a", "b"]
        assert consumed[0][1] == pytest.approx(1e-3)

    def test_generator_module_pushes_workload(self):
        sim = Simulator()
        channel = ServiceChannel(sim.kernel, "svc")
        workload = periodic_workload(task_count=5, cycles=1000, idle=ms(1))
        generator = ServiceRequestGenerator(sim.kernel, "generator", workload, channel)
        sim.add_module(generator)
        sim.run(ms(20))
        assert generator.issued == 5
        assert channel.pushed_count == 5
        assert channel.is_closed
