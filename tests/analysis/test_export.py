"""Tests for the markdown exporter."""

import pytest

from repro.analysis import (
    ScenarioMetrics,
    markdown_per_ip,
    markdown_report,
    markdown_speed,
    markdown_table2,
)


def make_metrics(name="A1", with_per_ip=True):
    per_ip = (
        {
            "ip1": {"tasks": 10.0, "energy_j": 0.005, "mean_delay_overhead_pct": 25.0, "transitions": 12.0},
            "ip2": {"tasks": 8.0, "energy_j": 0.003, "mean_delay_overhead_pct": 80.0, "transitions": 9.0},
        }
        if with_per_ip
        else {}
    )
    return ScenarioMetrics(
        scenario=name,
        energy_saving_pct=41.2,
        temperature_reduction_pct=35.7,
        average_delay_overhead_pct=33.1,
        per_ip=per_ip,
    )


class TestMarkdownTables:
    def test_table2_contains_paper_and_measured(self):
        text = markdown_table2([make_metrics("A1")])
        assert "| A1 |" in text
        assert "| 39 |" in text  # paper value
        assert "| 41 |" in text  # measured value
        assert text.startswith("| Scenario |")

    def test_table2_unknown_scenario_uses_dash(self):
        text = markdown_table2([make_metrics("Z9")])
        assert "| - |" in text

    def test_per_ip_rows(self):
        text = markdown_per_ip([make_metrics()])
        assert "| A1 | ip1 | 10 | 5.00 | 25 | 12 |" in text
        assert "ip2" in text

    def test_speed_table(self):
        text = markdown_speed({"A1": 1234.5, "B": 321.0})
        assert "| A1 | 35.0 | 1234.5 |" in text
        assert "| B | 7.5 | 321.0 |" in text

    def test_full_report_sections(self):
        text = markdown_report([make_metrics()], speeds={"A1": 100.0}, title="My report")
        assert text.startswith("# My report")
        assert "## Table 2" in text
        assert "## Per-IP breakdown" in text
        assert "## Simulation speed" in text

    def test_report_without_per_ip_or_speed(self):
        text = markdown_report([make_metrics(with_per_ip=False)])
        assert "Per-IP breakdown" not in text
        assert "Simulation speed" not in text

    def test_markdown_is_well_formed(self):
        text = markdown_table2([make_metrics("A1"), make_metrics("A2")])
        lines = text.splitlines()
        column_count = lines[0].count("|")
        assert all(line.count("|") == column_count for line in lines)


class TestCliReportCommand:
    def test_report_to_file(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "report.md"
        assert main(["report", "A1", "-o", str(output)]) == 0
        content = output.read_text()
        assert "# Reproduction report" in content
        assert "| A1 |" in content

    def test_report_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["report", "A1"]) == 0
        assert "Table 2" in capsys.readouterr().out
