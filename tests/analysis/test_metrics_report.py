"""Tests for the metrics, trace analysis and report rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    PAPER_TABLE2,
    ScenarioMetrics,
    average_delay_overhead,
    compare_runs,
    energy_breakdown,
    energy_saving,
    format_table,
    psm_residency,
    render_comparison,
    render_table2,
    temperature_reduction,
    transition_summary,
)
from repro.errors import ExperimentError
from repro.power import (
    EnergyAccount,
    PowerState,
    PowerStateMachine,
    default_characterization,
    default_transition_table,
)
from repro.sim import Simulator, ms, us, ZERO_TIME
from repro.soc import Task, TaskExecution


def make_execution(latency_us, reference_us, energy=1.0, reference_energy=2.0):
    return TaskExecution(
        task=Task("t", 1000),
        ip_name="ip0",
        request_time=ZERO_TIME,
        grant_time=ZERO_TIME,
        completion_time=us(latency_us),
        reference_duration=us(reference_us),
        energy_j=energy,
        reference_energy_j=reference_energy,
    )


class TestMetricFunctions:
    def test_energy_saving(self):
        assert energy_saving(10.0, 6.0) == pytest.approx(0.4)
        assert energy_saving(10.0, 10.0) == 0.0
        assert energy_saving(10.0, 12.0) == pytest.approx(-0.2)
        with pytest.raises(ExperimentError):
            energy_saving(0.0, 1.0)
        with pytest.raises(ExperimentError):
            energy_saving(1.0, -1.0)

    def test_temperature_reduction(self):
        assert temperature_reduction(10.0, 7.0) == pytest.approx(0.3)
        assert temperature_reduction(0.0, 0.0) == 0.0
        with pytest.raises(ExperimentError):
            temperature_reduction(-1.0, 0.0)

    def test_average_delay_overhead(self):
        executions = [make_execution(130, 100), make_execution(100, 100), make_execution(400, 100)]
        assert average_delay_overhead(executions) == pytest.approx((0.3 + 0.0 + 3.0) / 3)
        with pytest.raises(ExperimentError):
            average_delay_overhead([])

    def test_compare_runs_builds_percentages(self):
        executions = [make_execution(200, 100)]
        metrics = compare_runs(
            scenario="X",
            dpm_energy_j=6.0,
            baseline_energy_j=10.0,
            dpm_rise_c=7.0,
            baseline_rise_c=10.0,
            dpm_executions=executions,
            simulated_time_s=0.5,
            kilocycles_per_second=123.0,
        )
        assert metrics.energy_saving_pct == pytest.approx(40.0)
        assert metrics.temperature_reduction_pct == pytest.approx(30.0)
        assert metrics.average_delay_overhead_pct == pytest.approx(100.0)
        assert metrics.tasks_executed == 1
        data = metrics.as_dict()
        assert data["scenario"] == "X"
        assert data["kilocycles_per_second"] == pytest.approx(123.0)

    @given(
        baseline=st.floats(min_value=1e-6, max_value=1e3),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_energy_saving_bounded(self, baseline, fraction):
        saving = energy_saving(baseline, baseline * fraction)
        assert 0.0 <= saving <= 1.0


class TestTraceAnalysis:
    def build_psm(self):
        sim = Simulator()
        account = EnergyAccount("ip0")
        psm = PowerStateMachine(
            sim.kernel,
            "psm",
            default_characterization(),
            default_transition_table(),
            account,
        )
        sim.add_module(psm)
        return sim, psm, account

    def test_residency_fractions(self):
        sim, psm, _ = self.build_psm()

        def driver():
            yield ms(4)
            psm.request_state(PowerState.SL2)
            yield from psm.wait_for_state(PowerState.SL2)
            yield ms(4)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(20))
        psm.flush_energy()
        residency = psm_residency(psm)
        assert residency.total.femtoseconds > 0
        assert 0.0 < residency.fraction(PowerState.ON1) < 1.0
        assert residency.sleep_fraction() > 0.0
        assert residency.on_fraction() + residency.sleep_fraction() == pytest.approx(1.0)
        assert residency.dominant_state() in (PowerState.ON1, PowerState.SL2)
        assert set(residency.as_dict()) >= {"ON1", "SL2"}

    def test_transition_summary_aggregates(self):
        sim, psm, _ = self.build_psm()

        def driver():
            psm.request_state(PowerState.ON3)
            yield from psm.wait_for_state(PowerState.ON3)
            psm.request_state(PowerState.ON1)
            yield from psm.wait_for_state(PowerState.ON1)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(5))
        summary = transition_summary([psm])
        assert summary["ON1->ON3"] == 1
        assert summary["ON3->ON1"] == 1

    def test_energy_breakdown(self):
        account = EnergyAccount("ip0")
        account.add_energy(1.0, "active")
        breakdown = energy_breakdown([account])
        assert breakdown["ip0"]["active"] == pytest.approx(1.0)
        with pytest.raises(ExperimentError):
            energy_breakdown([])


class TestReportRendering:
    def make_metrics(self, name="A1"):
        return ScenarioMetrics(
            scenario=name,
            energy_saving_pct=40.0,
            temperature_reduction_pct=30.0,
            average_delay_overhead_pct=33.0,
        )

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_render_table2(self):
        text = render_table2([self.make_metrics("A1"), self.make_metrics("B")])
        assert "A1" in text and "B" in text
        assert "Energy saving" in text

    def test_render_comparison_includes_paper_values(self):
        text = render_comparison([self.make_metrics("A1")])
        assert "39" in text  # paper's A1 energy saving
        assert "40" in text  # ours

    def test_render_comparison_unknown_scenario(self):
        text = render_comparison([self.make_metrics("Z9")])
        assert "-" in text

    def test_paper_table2_shape(self):
        assert set(PAPER_TABLE2) == {"A1", "A2", "A3", "A4", "B", "C"}
        for row in PAPER_TABLE2.values():
            assert set(row) == {
                "energy_saving_pct",
                "temperature_reduction_pct",
                "average_delay_overhead_pct",
            }
