"""Tests for the content-addressed result store."""

import json

import pytest

from repro.campaign import ResultStore
from repro.errors import CampaignError


def record(job_id, status="ok", **extra):
    return {"job_id": job_id, "status": status, **extra}


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        store.put(record("abc123", metrics={"energy_saving_pct": 40.0}))
        loaded = store.get("abc123")
        assert loaded["metrics"]["energy_saving_pct"] == 40.0
        assert "abc123" in store
        assert "missing" not in store
        assert store.get("missing") is None

    def test_put_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(record("j1", status="error"))
        store.put(record("j1", status="ok"))
        assert store.get("j1")["status"] == "ok"
        assert len(store) == 1

    def test_record_without_job_id_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(CampaignError):
            store.put({"status": "ok"})

    def test_job_ids_filter_by_status(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(record("a", status="ok"))
        store.put(record("b", status="error"))
        store.put(record("c", status="ok"))
        assert store.job_ids() == {"a", "b", "c"}
        assert store.job_ids(status="ok") == {"a", "c"}
        assert store.job_ids(status="error") == {"b"}

    def test_records_sorted_and_corrupt_files_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(record("b"))
        store.put(record("a"))
        (store.records_dir / "broken.json").write_text("{not json")
        records = store.records()
        assert [entry["job_id"] for entry in records] == ["a", "b"]

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(record("x"))
        leftovers = [p for p in store.records_dir.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(CampaignError):
            store.read_manifest()
        store.write_manifest({"name": "camp", "scenarios": ["A1"]})
        assert store.read_manifest()["name"] == "camp"
        # valid JSON on disk
        json.loads(store.manifest_path.read_text())

    def test_corrupt_manifest_is_a_campaign_error(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_manifest({"name": "camp"})
        store.manifest_path.write_text("{truncated")
        with pytest.raises(CampaignError, match="corrupt"):
            store.read_manifest()

    def test_read_operations_have_no_filesystem_side_effects(self, tmp_path):
        root = tmp_path / "typo" / "path"
        store = ResultStore(root)
        assert store.records() == []
        assert store.job_ids() == set()
        assert len(store) == 0
        assert "x" not in store
        with pytest.raises(CampaignError):
            store.read_manifest()
        assert not root.exists()
