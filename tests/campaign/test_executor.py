"""Tests for campaign execution: pool fan-out, failure capture, resume."""

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    aggregate_records,
    campaign_status,
    execute_job,
    record_metrics,
    render_campaign_report,
    run_campaign,
)
from repro.errors import CampaignError


def small_spec(**extra):
    data = {
        "name": "test-grid",
        "scenarios": [
            {"kind": "single_ip", "name": "s1", "battery": "low",
             "temperature": "low", "task_count": 6},
        ],
        "setups": ["paper", "always-on"],
        "seeds": [1, 2],
    }
    data.update(extra)
    return CampaignSpec.from_dict(data)


class TestExecuteJob:
    def test_ok_record(self):
        job = small_spec().jobs()[0]
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        assert record["job_id"] == job.job_id
        assert record["metrics"]["tasks_executed"] == 6
        assert record["per_ip"]
        assert record["wall_clock_s"] > 0.0

    def test_failure_is_captured_not_raised(self):
        # 1 ms of simulated time is not enough to drain the workload, which
        # the runner reports as an ExperimentError.
        spec = small_spec(overrides=[{"max_time_ms": 1}])
        record = execute_job(spec.jobs()[0].to_dict())
        assert record["status"] == "error"
        assert record["error"]["type"] == "ExperimentError"
        assert "traceback" in record["error"]

    def test_unexpected_exception_is_captured_too(self, monkeypatch):
        # The 'never raises' contract must hold for arbitrary bugs, not just
        # ReproError — one bad grid cell must not kill the worker pool.
        import repro.experiments.runner as runner

        def boom(*_args, **_kwargs):
            raise AttributeError("simulated internal bug")

        monkeypatch.setattr(runner, "run_comparison", boom)
        record = execute_job(small_spec().jobs()[0].to_dict())
        assert record["status"] == "error"
        assert record["error"]["type"] == "AttributeError"

    def test_determinism_across_invocations(self):
        job = small_spec().jobs()[0].to_dict()
        first = execute_job(job)
        second = execute_job(job)
        assert first["metrics"]["energy_saving_pct"] == \
            second["metrics"]["energy_saving_pct"]
        assert first["metrics"]["dpm_energy_j"] == second["metrics"]["dpm_energy_j"]


class TestRunCampaign:
    def test_serial_run_persists_every_job(self, tmp_path):
        spec = small_spec()
        summary = run_campaign(spec, tmp_path / "camp", workers=1)
        assert summary.total_jobs == 4
        assert summary.executed == 4
        assert summary.ok == 4
        store = ResultStore(tmp_path / "camp")
        assert store.job_ids(status="ok") == {job.job_id for job in spec.jobs()}
        assert store.read_manifest()["name"] == "test-grid"

    def test_parallel_matches_serial(self, tmp_path):
        spec = small_spec()
        serial = run_campaign(spec, tmp_path / "serial", workers=1)
        parallel = run_campaign(spec, tmp_path / "parallel", workers=2)
        assert parallel.executed == serial.executed == 4
        key = lambda r: r["job_id"]
        for left, right in zip(sorted(serial.records, key=key),
                               sorted(parallel.records, key=key)):
            assert left["job_id"] == right["job_id"]
            assert left["metrics"]["energy_saving_pct"] == \
                right["metrics"]["energy_saving_pct"]

    def test_resume_executes_nothing_and_reproduces_metrics(self, tmp_path):
        spec = small_spec()
        first = run_campaign(spec, tmp_path / "camp", workers=1)
        again = run_campaign(spec, tmp_path / "camp", workers=2, resume=True)
        assert again.executed == 0
        assert again.skipped == 4
        assert aggregate_rows(first) == aggregate_rows(again)

    def test_resume_after_interruption_runs_only_missing_jobs(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "camp", workers=1)
        store = ResultStore(tmp_path / "camp")
        # Simulate an interrupted campaign: half the records never landed.
        victims = sorted(store.job_ids())[:2]
        for job_id in victims:
            (store.records_dir / f"{job_id}.json").unlink()
        status = campaign_status(store)
        assert status["counts"]["missing"] == 2
        resumed = run_campaign(spec, tmp_path / "camp", workers=1, resume=True)
        assert resumed.executed == 2
        assert resumed.skipped == 2
        assert {r["job_id"] for r in resumed.records if r["job_id"] in victims} == set(victims)
        assert campaign_status(store)["counts"]["missing"] == 0

    def test_without_resume_everything_reruns(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "camp", workers=1)
        second = run_campaign(spec, tmp_path / "camp", workers=1)
        assert second.executed == 4
        assert second.skipped == 0

    def test_failed_jobs_rerun_on_resume(self, tmp_path):
        broken = small_spec(overrides=[{"max_time_ms": 1}])
        summary = run_campaign(broken, tmp_path / "camp", workers=1)
        # always-on jobs fail too (baseline never finishes either way).
        assert summary.errors == summary.executed == 4
        fixed = small_spec()  # different grid (hashes differ) -> all pending
        resumed = run_campaign(fixed, tmp_path / "camp", workers=1, resume=True)
        assert resumed.executed == 4
        assert resumed.ok == 4

    def test_job_timeout_is_captured(self, tmp_path):
        spec = small_spec(
            scenarios=["B"],  # the four-IP GEM scenario takes tens of ms
            setups=["paper"],
            seeds=[1],
        )
        summary = run_campaign(spec, tmp_path / "camp", workers=1,
                               job_timeout_s=0.005)
        assert summary.timeouts == 1
        record = ResultStore(tmp_path / "camp").records()[0]
        assert record["status"] == "timeout"
        assert "timeout" in record["error"]["message"]

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=0)

    def test_progress_callback_sees_every_executed_job(self, tmp_path):
        seen = []
        run_campaign(small_spec(), tmp_path / "camp", workers=1,
                     progress=seen.append)
        assert len(seen) == 4
        assert all(record["status"] == "ok" for record in seen)


def aggregate_rows(summary):
    return [
        (row.scenario, round(row.energy_saving_pct, 9),
         round(row.average_delay_overhead_pct, 9))
        for row in aggregate_records(summary.records)
    ]


class TestAggregation:
    def test_record_metrics_round_trip(self, tmp_path):
        summary = run_campaign(small_spec(), tmp_path / "camp", workers=1)
        record = summary.records[0]
        metrics = record_metrics(record)
        assert metrics.energy_saving_pct == record["metrics"]["energy_saving_pct"]
        assert metrics.per_ip  # per-IP breakdown survives the store

    def test_record_metrics_rejects_failures(self):
        with pytest.raises(CampaignError):
            record_metrics({"job_id": "x", "status": "error"})

    def test_aggregate_means_over_seeds(self, tmp_path):
        summary = run_campaign(small_spec(), tmp_path / "camp", workers=1)
        rows = aggregate_records(summary.records)
        # one row per (scenario, setup) pair
        assert [row.scenario for row in rows] == ["s1/always-on", "s1/paper"]
        for row in rows:
            assert row.extra["jobs"] == 2.0
        by_setup = {r["setup"]: [] for r in summary.records}
        for record in summary.records:
            by_setup[record["setup"]].append(record["metrics"]["energy_saving_pct"])
        expected = sum(by_setup["paper"]) / len(by_setup["paper"])
        paper_row = [row for row in rows if row.scenario.endswith("/paper")][0]
        assert paper_row.energy_saving_pct == pytest.approx(expected)

    def test_report_renders_jobs_failures_and_aggregate(self, tmp_path):
        spec = small_spec()
        summary = run_campaign(spec, tmp_path / "camp", workers=1)
        failing = {"job_id": "dead", "status": "error", "label": "s1/broken",
                   "error": {"message": "boom"}}
        text = render_campaign_report(summary.records + [failing])
        assert "per job" in text
        assert "aggregate" in text
        assert "s1/paper/seed=1" in text
        assert "Failures" in text
        assert "boom" in text


#: ScenarioMetrics keys that vary run to run (host timing), excluded when
#: comparing shared-baseline results against standalone ones.
_VOLATILE_METRICS = ("wall_clock_s", "kilocycles_per_second")


def _stable_metrics(record):
    return {k: v for k, v in record["metrics"].items() if k not in _VOLATILE_METRICS}


class TestSharedBaselines:
    def test_baseline_runs_once_per_scenario_cell(self, tmp_path):
        # 2 setups x 2 seeds over one scenario: 4 jobs but only 2 distinct
        # (scenario, baseline, seed, accuracy) cells.
        summary = run_campaign(small_spec(), tmp_path / "camp", workers=1)
        assert summary.total_jobs == 4
        assert summary.baseline_runs == 2
        assert summary.baseline_reused == 0
        store = ResultStore(tmp_path / "camp")
        assert len(store.baseline_keys()) == 2

    def test_shared_baseline_metrics_identical_to_standalone(self, tmp_path):
        spec = small_spec()
        summary = run_campaign(spec, tmp_path / "camp", workers=1)
        store = ResultStore(tmp_path / "camp")
        for job in spec.jobs():
            standalone = execute_job(job.to_dict())
            stored = store.get(job.job_id)
            assert _stable_metrics(standalone) == _stable_metrics(stored)

    def test_resume_reuses_stored_baselines(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "camp", workers=1)
        # Drop one job record: the resume must re-run only that job and take
        # its baseline from the store instead of re-simulating it.
        store = ResultStore(tmp_path / "camp")
        victim = spec.jobs()[0]
        (store.records_dir / f"{victim.job_id}.json").unlink()
        summary = run_campaign(spec, tmp_path / "camp", workers=1, resume=True)
        assert summary.executed == 1
        assert summary.baseline_runs == 0
        assert summary.baseline_reused >= 1

    def test_baseline_key_ignores_dpm_setup(self):
        jobs = small_spec().jobs()
        by_cell = {}
        for job in jobs:
            by_cell.setdefault((job.scenario["name"], job.seed), set()).add(job.baseline_key)
        for keys in by_cell.values():
            assert len(keys) == 1  # setups share the cell's baseline

    def test_pool_workers_share_baselines(self, tmp_path):
        summary = run_campaign(small_spec(), tmp_path / "camp", workers=2)
        assert summary.ok == 4
        assert summary.baseline_runs == 2


class TestCampaignAccuracy:
    def test_accuracy_default_keeps_job_ids_stable(self):
        # Pre-accuracy job descriptions must hash identically, so existing
        # stores keep working with --resume.
        job = small_spec().jobs()[0]
        assert "accuracy" not in job.to_dict()

    def test_fast_jobs_hash_differently_and_carry_the_mode(self, tmp_path):
        exact_spec = small_spec()
        fast_spec = small_spec(accuracy="fast")
        assert fast_spec.jobs()[0].job_id != exact_spec.jobs()[0].job_id
        summary = run_campaign(fast_spec, tmp_path / "camp", workers=1)
        assert summary.ok == 4
        record = summary.records[0]
        assert record["accuracy"] == "fast"
        assert record["job"]["accuracy"] == "fast"

    def test_fast_campaign_matches_exact_within_tolerance(self, tmp_path):
        exact = run_campaign(small_spec(), tmp_path / "e", workers=1)
        fast = run_campaign(small_spec(accuracy="fast"), tmp_path / "f", workers=1)
        by_label_exact = {r["label"]: r for r in exact.records}
        for record in fast.records:
            reference = by_label_exact[record["label"]]
            for key in ("dpm_energy_j", "baseline_energy_j"):
                a = reference["metrics"][key]
                b = record["metrics"][key]
                assert abs(a - b) <= 1e-9 * max(abs(a), abs(b))
            assert record["metrics"]["tasks_executed"] == reference["metrics"]["tasks_executed"]

    def test_unknown_accuracy_rejected(self):
        with pytest.raises(CampaignError):
            small_spec(accuracy="sloppy")


class TestPreflight:
    """Reach-lint preflight over a campaign's platform scenarios."""

    def platform_grid(self, scenario):
        return CampaignSpec.from_dict({
            "name": "preflight-grid",
            "scenarios": [scenario],
            "setups": ["paper"],
            "seeds": [1],
        })

    def bad_platform(self):
        # Covers only a sliver of the context space: RULES-UNCOVERED at
        # error severity even after the trajectory envelope sharpens it
        # (medium/low battery is reachable on the default battery).
        return {
            "format": "repro-platform/1",
            "name": "bad-rules",
            "ips": [{"name": "cpu", "workload": {
                "kind": "periodic", "task_count": 4,
                "cycles": 10_000, "idle_us": 200.0,
            }}],
            "policy": {"name": "paper", "rules": [
                {"state": "ON1", "priorities": ["high"]},
            ]},
            "battery": {"state_of_charge": 0.4, "capacity_j": 50.0},
        }

    def test_clean_platform_passes_with_summary_line(self):
        from repro.campaign import preflight_campaign

        lines = preflight_campaign(self.platform_grid("iot-duty-cycle"))
        assert len(lines) == 1
        assert lines[0].startswith("preflight ok: iot-duty-cycle")

    def test_paper_row_scenarios_are_not_preflighted(self):
        from repro.campaign import preflight_campaign

        # A1 normalizes to a single_ip grid cell, not a platform spec.
        assert preflight_campaign(self.platform_grid("A1")) == []

    def test_error_findings_fail_fast(self, tmp_path):
        from repro.campaign import preflight_campaign

        spec = self.platform_grid({"kind": "platform", "spec": self.bad_platform()})
        with pytest.raises(CampaignError, match="preflight.*bad-rules"):
            preflight_campaign(spec)
        # run_campaign applies the same gate before executing anything.
        with pytest.raises(CampaignError, match="preflight"):
            run_campaign(spec, tmp_path / "camp", workers=1)
        assert not (tmp_path / "camp").exists() or not any(
            (tmp_path / "camp").rglob("*.json")
        )

    def test_preflight_can_be_disabled(self, tmp_path):
        spec = self.platform_grid({"kind": "platform", "spec": self.bad_platform()})
        summary = run_campaign(spec, tmp_path / "camp", workers=1, preflight=False)
        assert summary.ok == 1

    def test_duplicate_platforms_checked_once(self):
        from repro.campaign import preflight_campaign

        spec = CampaignSpec.from_dict({
            "name": "dupes",
            "scenarios": ["iot-duty-cycle", "iot-duty-cycle"],
            "setups": ["paper"],
            "seeds": [1, 2],
        })
        assert len(preflight_campaign(spec)) == 1
