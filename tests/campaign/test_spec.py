"""Tests for the declarative campaign specification layer."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    JobSpec,
    build_scenario,
    build_setup,
    job_hash,
    normalize_scenario,
    normalize_setup,
)
from repro.errors import CampaignError
from repro.experiments.scenarios import scenario_by_name


class TestNormalizeScenario:
    def test_paper_names_expand(self):
        scenario = normalize_scenario("A1")
        assert scenario["kind"] == "single_ip"
        assert scenario["battery"] == "full"
        assert normalize_scenario("b")["kind"] == "multi_ip"

    def test_unknown_paper_name_rejected(self):
        with pytest.raises(CampaignError):
            normalize_scenario("Z9")

    def test_missing_required_field_rejected(self):
        with pytest.raises(CampaignError):
            normalize_scenario({"kind": "single_ip", "name": "x", "battery": "low"})

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            normalize_scenario(
                {"kind": "single_ip", "name": "x", "battery": "low",
                 "temperature": "low", "bogus": 1}
            )

    def test_high_activity_ips_sorted_for_stable_hashing(self):
        first = normalize_scenario(
            {"kind": "multi_ip", "name": "m", "battery": "low",
             "temperature": "low", "high_activity_ips": [2, 1]}
        )
        second = normalize_scenario(
            {"kind": "multi_ip", "name": "m", "battery": "low",
             "temperature": "low", "high_activity_ips": [1, 2]}
        )
        assert first == second


class TestBuildScenario:
    def test_paper_scenario_matches_catalogue(self):
        built = build_scenario(normalize_scenario("A1"))
        reference = scenario_by_name("A1")
        assert built.name == reference.name
        assert built.build_specs()[0].workload.as_dicts() == \
            reference.build_specs()[0].workload.as_dicts()

    def test_seed_reseeds_the_workload(self):
        description = normalize_scenario("A1")
        default = build_scenario(description)
        reseeded = build_scenario(description, seed=99)
        assert default.build_specs()[0].workload.as_dicts() != \
            reseeded.build_specs()[0].workload.as_dicts()

    def test_custom_scenario_without_touching_the_catalogue(self):
        built = build_scenario(
            {"kind": "single_ip", "name": "mine", "battery": "medium",
             "temperature": "high", "task_count": 6, "max_time_ms": 500}
        )
        assert built.name == "mine"
        assert len(built.build_specs()[0].workload) == 6
        assert built.max_time.seconds == pytest.approx(0.5)


class TestSetups:
    def test_named_setups(self):
        for name in ("paper", "always-on", "greedy-sleep", "oracle", "paper+ewma"):
            assert build_setup(normalize_setup(name)).name

    def test_fixed_timeout_parameter(self):
        setup = build_setup({"name": "fixed-timeout", "timeout_ms": 3.0})
        assert setup.name == "fixed-timeout"

    def test_unknown_setup_rejected(self):
        with pytest.raises(CampaignError):
            normalize_setup("warp-drive")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(CampaignError):
            normalize_setup({"name": "paper", "bogus": 1})


class TestJobSpec:
    def make(self, seed=1):
        return JobSpec(
            scenario=normalize_scenario("A1"),
            setup=normalize_setup("paper"),
            baseline=normalize_setup("always-on"),
            seed=seed,
        )

    def test_hash_is_stable_and_content_addressed(self):
        assert self.make().job_id == self.make().job_id
        assert self.make(seed=1).job_id != self.make(seed=2).job_id
        assert self.make().job_id == job_hash(self.make().to_dict())

    def test_round_trip(self):
        job = self.make()
        assert JobSpec.from_dict(job.to_dict()) == job


class TestCampaignSpec:
    def spec_dict(self):
        return {
            "name": "grid",
            "scenarios": ["A1", "B"],
            "setups": ["paper", "greedy-sleep"],
            "seeds": [1, 2, 3],
        }

    def test_grid_expansion_size_and_determinism(self):
        spec = CampaignSpec.from_dict(self.spec_dict())
        jobs = spec.jobs()
        assert len(jobs) == 2 * 2 * 3
        assert [job.job_id for job in jobs] == [job.job_id for job in spec.jobs()]

    def test_duplicate_cells_are_dropped(self):
        data = self.spec_dict()
        data["overrides"] = [{}, {}]
        assert len(CampaignSpec.from_dict(data).jobs()) == 12

    def test_overrides_fan_out_scenario_parameters(self):
        data = self.spec_dict()
        data["scenarios"] = ["A1"]
        data["setups"] = ["paper"]
        data["seeds"] = [1]
        data["overrides"] = [{"task_count": 10}, {"task_count": 20}]
        jobs = CampaignSpec.from_dict(data).jobs()
        assert len(jobs) == 2
        assert {job.scenario["task_count"] for job in jobs} == {10, 20}

    def test_unknown_override_key_rejected(self):
        data = self.spec_dict()
        data["overrides"] = [{"warp": 9}]
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)

    def test_empty_scenarios_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict({"name": "empty"})

    def test_unknown_top_level_field_rejected(self):
        data = self.spec_dict()
        data["scenrios"] = data.pop("scenarios")
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)

    def test_to_dict_round_trip_preserves_the_grid(self):
        spec = CampaignSpec.from_dict(self.spec_dict())
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert [job.job_id for job in rebuilt.jobs()] == [job.job_id for job in spec.jobs()]


class TestSpecFiles:
    def test_json_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "name": "json-grid",
            "scenarios": ["A1"],
            "setups": ["paper"],
            "seeds": [7],
        }))
        spec = CampaignSpec.from_file(path)
        assert spec.name == "json-grid"
        assert len(spec.jobs()) == 1

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "toml-grid"\n'
            'scenarios = ["A1", "A2"]\n'
            'setups = ["paper"]\n'
            'seeds = [1, 2]\n'
            "\n"
            "[[overrides]]\n"
            "task_count = 8\n"
        )
        spec = CampaignSpec.from_file(path)
        assert spec.name == "toml-grid"
        assert len(spec.jobs()) == 4
        assert spec.jobs()[0].scenario["task_count"] == 8

    def test_unsupported_extension_rejected(self, tmp_path):
        path = tmp_path / "grid.yaml"
        path.write_text("name: nope")
        with pytest.raises(CampaignError):
            CampaignSpec.from_file(path)
