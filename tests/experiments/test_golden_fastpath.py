"""Golden-result tests for the event-driven fast path.

The kernel/time refactor (virtual clocks, integer-femtosecond hot path) is a
pure speed change: all six paper scenarios must produce *bit-identical*
``ScenarioMetrics`` in the default (exact) accuracy mode to the recorded
goldens (A1 and B date from before the refactor; A2-A4 and C pin the same
contract for the remaining rows), and adding a materialised (cycle-accurate)
reference clock to a run must not change any energy/timing figure either.
"""

import json
from pathlib import Path

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_comparison, scenario_by_name
from repro.sim import Clock, Simulator, us
from repro.sim.native import available as _native_available
from repro.soc.soc import build_soc

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "scenario_metrics.json"

#: both kernel backends: the compiled event heap must reproduce the golden
#: trajectories bit-for-bit, not just approximately
BACKENDS = [
    "python",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not _native_available(), reason="native core extension not built"
        ),
    ),
]

#: ScenarioMetrics float fields pinned bit-exactly (hex) in the golden file.
_FLOAT_FIELDS = (
    "energy_saving_pct",
    "temperature_reduction_pct",
    "average_delay_overhead_pct",
    "dpm_energy_j",
    "baseline_energy_j",
    "dpm_average_rise_c",
    "baseline_average_rise_c",
    "dpm_peak_c",
    "baseline_peak_c",
    "simulated_time_s",
)


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario_name", ["A1", "A2", "A3", "A4", "B", "C"])
def test_scenario_metrics_bit_identical_to_pre_refactor_goldens(scenario_name, backend):
    golden = _load_golden()[scenario_name]
    metrics = run_comparison(
        scenario_by_name(scenario_name), DpmSetup.paper(), backend=backend
    )
    mismatches = {}
    for field in _FLOAT_FIELDS:
        got = getattr(metrics, field)
        if got.hex() != golden[field]:
            mismatches[field] = (got.hex(), golden[field])
    if metrics.tasks_executed != golden["tasks_executed"]:
        mismatches["tasks_executed"] = (metrics.tasks_executed, golden["tasks_executed"])
    for ip_name, figures in metrics.per_ip.items():
        for key, value in figures.items():
            got = value.hex() if isinstance(value, float) else value
            want = golden["per_ip"][ip_name][key]
            if got != want:
                mismatches[f"per_ip.{ip_name}.{key}"] = (got, want)
    assert not mismatches, f"scenario {scenario_name} drifted from golden: {mismatches}"


def _run_soc(scenario_name, with_materialised_clock):
    """Build and run one scenario, optionally with a cycle-accurate clock."""
    scenario = scenario_by_name(scenario_name)
    config = scenario.build_config()
    simulator = Simulator(name=config.name)
    clock = Clock(
        simulator.kernel,
        "refclk",
        period=us(50),
        cycle_accurate=with_materialised_clock,
    )
    simulator.add_module(clock)
    soc = build_soc(scenario.build_specs(), config, DpmSetup.paper(), simulator=simulator)
    end_time = soc.run_until_done(max_time=scenario.max_time)
    return soc, clock, end_time


def _materialised_clocks(simulator):
    """Every materialised Clock reachable from the simulator's module tree."""
    return [
        module
        for top in simulator.top_modules
        for module in top.walk()
        if isinstance(module, Clock) and module.is_materialized
    ]


@pytest.mark.parametrize("scenario_name", ["A1", "A2", "A3", "A4", "B", "C"])
def test_default_scenarios_never_materialise_a_clock(scenario_name):
    """Virtual-clock regression: the fast path must stay clock-free.

    No default scenario may construct — let alone materialise — a Clock;
    the only sanctioned consumer of materialised clocks is the
    cycle-accurate bus, which no paper scenario fits.
    """
    scenario = scenario_by_name(scenario_name)
    config = scenario.build_config()
    simulator = Simulator(name=config.name)
    soc = build_soc(scenario.build_specs(), config, DpmSetup.paper(), simulator=simulator)
    soc.run_until_done(max_time=scenario.max_time)
    clocks = [
        module
        for top in simulator.top_modules
        for module in top.walk()
        if isinstance(module, Clock)
    ]
    assert clocks == [], f"scenario {scenario_name} constructed clocks: {clocks}"


def test_event_driven_bus_stays_on_the_virtual_clock_fast_path():
    """A bus-bearing platform in the default timing mode adds no clock."""
    from repro.platform import PlatformBuilder
    from repro.platform.build import to_scenario

    spec = (
        PlatformBuilder("busy-virtual")
        .bus(words_per_second=5e6)
        .ip("a", workload={"kind": "periodic", "task_count": 4, "cycles": 20000,
                           "idle_us": 100.0}, bus_words_per_task=64)
        .ip("b", workload={"kind": "periodic", "task_count": 4, "cycles": 10000,
                           "idle_us": 80.0}, priority=2, bus_words_per_task=128)
        .max_time_ms(50)
        .build()
    )
    scenario = to_scenario(spec)
    config = scenario.build_config()
    simulator = Simulator(name=config.name)
    soc = build_soc(scenario.build_specs(), config, DpmSetup.paper(), simulator=simulator)
    soc.run_until_done(max_time=scenario.max_time)
    assert soc.bus is not None
    assert soc.bus.stats.transfer_count > 0
    assert soc.bus.clock is None
    assert _materialised_clocks(simulator) == []


def test_cycle_accurate_bus_keeps_even_its_own_clock_virtual():
    """Batched posedge arbitration: the CA bus owns a clock, but the clock's
    edge schedule is used analytically — nothing materialises it, so the
    whole platform stays on the virtual-clock fast path."""
    from repro.platform import PlatformBuilder
    from repro.platform.build import to_scenario

    spec = (
        PlatformBuilder("busy-accurate")
        .bus(words_per_second=5e6, timing="cycle_accurate", words_per_cycle=4)
        .ip("a", workload={"kind": "periodic", "task_count": 4, "cycles": 20000,
                           "idle_us": 100.0}, bus_words_per_task=64)
        .ip("b", workload={"kind": "periodic", "task_count": 4, "cycles": 10000,
                           "idle_us": 80.0}, priority=2, bus_words_per_task=128)
        .max_time_ms(50)
        .build()
    )
    scenario = to_scenario(spec)
    config = scenario.build_config()
    simulator = Simulator(name=config.name)
    soc = build_soc(scenario.build_specs(), config, DpmSetup.paper(), simulator=simulator)
    soc.run_until_done(max_time=scenario.max_time)
    assert soc.bus.stats.transfer_count > 0
    assert soc.bus.clock is not None
    assert not soc.bus.clock.is_materialized
    assert _materialised_clocks(simulator) == []


@pytest.mark.parametrize("scenario_name", ["A1", "B"])
def test_virtual_and_materialised_clocks_give_identical_results(scenario_name):
    """A materialised clock adds edges and activations but must not change
    any energy or timing result of the run."""
    soc_v, clock_v, end_v = _run_soc(scenario_name, with_materialised_clock=False)
    soc_m, clock_m, end_m = _run_soc(scenario_name, with_materialised_clock=True)

    assert not clock_v.is_materialized
    assert clock_m.is_materialized
    # The materialised clock really toggled.
    assert clock_m.out.change_count > 0

    assert end_v == end_m
    assert clock_v.cycle_count == clock_m.cycle_count
    assert soc_v.total_energy_j().hex() == soc_m.total_energy_j().hex()
    assert soc_v.thermal.average_rise_c.hex() == soc_m.thermal.average_rise_c.hex()
    assert soc_v.thermal.peak_c.hex() == soc_m.thermal.peak_c.hex()
    assert soc_v.battery.remaining_j.hex() == soc_m.battery.remaining_j.hex()
    for instance_v, instance_m in zip(soc_v.instances, soc_m.instances):
        assert instance_v.ip.energy_account.total_j.hex() == instance_m.ip.energy_account.total_j.hex()
        assert instance_v.ip.tasks_executed == instance_m.ip.tasks_executed
        assert instance_v.psm.transition_count == instance_m.psm.transition_count
        for exec_v, exec_m in zip(instance_v.ip.executions, instance_m.ip.executions):
            assert exec_v.request_time == exec_m.request_time
            assert exec_v.grant_time == exec_m.grant_time
            assert exec_v.completion_time == exec_m.completion_time
            assert exec_v.energy_j.hex() == exec_m.energy_j.hex()
