"""Tests for the scenario catalogue and the experiment runner."""

import pytest

from repro.battery import BatteryLevel
from repro.dpm import DpmSetup
from repro.errors import ExperimentError
from repro.experiments import (
    battery_condition,
    multi_ip_scenario,
    paper_scenarios,
    run_comparison,
    run_scenario,
    scenario_a_workload,
    scenario_by_name,
    single_ip_scenario,
    thermal_condition,
)
from repro.experiments.table2 import simulation_speed_report, table2_report
from repro.thermal import TemperatureLevel


class TestConditions:
    def test_battery_conditions_map_to_levels(self):
        assert battery_condition("full").initial_state_of_charge > 0.85
        assert battery_condition("low").initial_state_of_charge < 0.30
        from repro.battery import Battery

        assert Battery(battery_condition("full")).level is BatteryLevel.FULL
        assert Battery(battery_condition("low")).level is BatteryLevel.LOW
        assert Battery(battery_condition("empty")).level is BatteryLevel.EMPTY
        with pytest.raises(ExperimentError):
            battery_condition("turbo")

    def test_thermal_conditions(self):
        low = thermal_condition("low")
        high = thermal_condition("high")
        assert low.thresholds.classify(low.initial_c) is TemperatureLevel.LOW
        assert high.ambient_c > low.ambient_c
        assert high.initial_c > low.initial_c
        quad = thermal_condition("low", ip_count=4)
        assert quad.thermal_resistance_c_per_w < low.thermal_resistance_c_per_w
        with pytest.raises(ExperimentError):
            thermal_condition("volcanic")


class TestScenarioCatalogue:
    def test_paper_scenarios_cover_table2(self):
        names = [scenario.name for scenario in paper_scenarios()]
        assert names == ["A1", "A2", "A3", "A4", "B", "C"]

    def test_scenario_by_name(self):
        assert scenario_by_name("a2").name == "A2"
        with pytest.raises(ExperimentError):
            scenario_by_name("Z1")

    def test_scenario_a_workload_mixed_statistics(self):
        workload = scenario_a_workload(task_count=40)
        busy_half = workload.items[:20]
        idle_half = workload.items[20:]
        mean_busy_idle = sum(i.idle_after.seconds for i in busy_half) / 20
        mean_idle_idle = sum(i.idle_after.seconds for i in idle_half) / 20
        assert mean_idle_idle > 3 * mean_busy_idle
        with pytest.raises(ExperimentError):
            scenario_a_workload(task_count=1)

    def test_single_ip_scenario_structure(self):
        scenario = single_ip_scenario("X", "full", "low")
        specs = scenario.build_specs()
        assert len(specs) == 1
        config = scenario.build_config()
        assert not config.use_gem

    def test_multi_ip_scenario_structure(self):
        scenario = multi_ip_scenario("Y", "low", "low", high_activity_ips=(1, 2))
        specs = scenario.build_specs()
        assert len(specs) == 4
        assert [spec.static_priority for spec in specs] == [1, 2, 3, 4]
        config = scenario.build_config()
        assert config.use_gem
        busy1 = specs[0].workload.busy_fraction(200e6)
        busy3 = specs[2].workload.busy_fraction(200e6)
        assert busy1 > busy3
        with pytest.raises(ExperimentError):
            multi_ip_scenario("Z", "low", "low", high_activity_ips=())

    def test_scenario_factories_produce_fresh_objects(self):
        scenario = single_ip_scenario("X", "full", "low")
        assert scenario.build_specs()[0] is not scenario.build_specs()[0]
        assert scenario.build_config() is not scenario.build_config()


class TestRunner:
    @pytest.fixture(scope="class")
    def small_scenario(self):
        return single_ip_scenario("small", "full", "low", task_count=10)

    def test_run_scenario_produces_artifacts(self, small_scenario):
        artefacts = run_scenario(small_scenario, DpmSetup.paper())
        assert artefacts.all_tasks_completed
        assert artefacts.total_energy_j > 0.0
        assert artefacts.end_time.seconds > 0.0
        assert artefacts.cycles_simulated() > 0.0
        assert artefacts.kilocycles_per_second() > 0.0
        summary = artefacts.per_ip_summary()
        assert "ip1" in summary
        assert summary["ip1"]["tasks"] == 10.0

    def test_run_comparison_metrics_sane(self, small_scenario):
        metrics = run_comparison(small_scenario)
        assert 0.0 < metrics.energy_saving_pct < 100.0
        assert metrics.average_delay_overhead_pct >= 0.0
        assert metrics.tasks_executed == 10
        assert metrics.baseline_energy_j > metrics.dpm_energy_j

    def test_baseline_against_itself_saves_nothing(self, small_scenario):
        metrics = run_comparison(small_scenario, dpm=DpmSetup.always_on())
        assert abs(metrics.energy_saving_pct) < 2.0
        assert metrics.average_delay_overhead_pct < 2.0

    def test_reports_render(self, small_scenario):
        metrics = run_comparison(small_scenario)
        text = table2_report([metrics])
        assert "small" in text
        speed_text = simulation_speed_report({"small": 123.4})
        assert "123.4" in speed_text
