"""Fast accuracy mode: toleranced equivalence over all six paper scenarios.

The ``fast`` mode reassociates the battery/thermal sampler arithmetic
(closed-form window batches, coalesced background integration, synchronous
PSM transitions) but must keep every decision and event time identical.
The contract enforced here, per the documented tolerances:

* energies and energy-derived percentages: relative error <= 1e-9;
* temperatures and state of charge: relative error <= 1e-6;
* event times, task counts, transition counts: exactly equal;
* ``exact`` stays the default and bit-identical (covered by the golden
  tests; re-checked here for the default-mode plumbing).
"""

import pytest

from repro.dpm import DpmSetup
from repro.experiments import run_comparison, run_scenario, scenario_by_name
from repro.sim import AccuracyMode

SCENARIOS = ["A1", "A2", "A3", "A4", "B", "C"]

#: ScenarioMetrics fields derived from energies (and their ratios).
ENERGY_FIELDS = (
    "dpm_energy_j",
    "baseline_energy_j",
    "energy_saving_pct",
)
#: Fields derived from temperatures.
TEMPERATURE_FIELDS = (
    "dpm_average_rise_c",
    "baseline_average_rise_c",
    "dpm_peak_c",
    "baseline_peak_c",
    "temperature_reduction_pct",
)
#: Pure timing figures: identical decisions mean identical values.
EXACT_FIELDS = (
    "average_delay_overhead_pct",
    "simulated_time_s",
)

ENERGY_RTOL = 1e-9
TEMPERATURE_RTOL = 1e-6


def _rel(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b))


class TestAccuracyModeParsing:
    def test_names(self):
        assert AccuracyMode.from_name("fast") is AccuracyMode.FAST
        assert AccuracyMode.from_name("EXACT") is AccuracyMode.EXACT
        assert AccuracyMode.from_name(None) is AccuracyMode.EXACT
        assert AccuracyMode.from_name(AccuracyMode.FAST) is AccuracyMode.FAST

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            AccuracyMode.from_name("approximate")

    def test_is_fast(self):
        assert AccuracyMode.FAST.is_fast
        assert not AccuracyMode.EXACT.is_fast
        assert str(AccuracyMode.FAST) == "fast"


@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_fast_mode_within_documented_tolerances(scenario_name):
    scenario = scenario_by_name(scenario_name)
    exact = run_comparison(scenario, DpmSetup.paper(), accuracy="exact")
    fast = run_comparison(scenario, DpmSetup.paper(), accuracy="fast")

    failures = {}
    for field in ENERGY_FIELDS:
        rel = _rel(getattr(exact, field), getattr(fast, field))
        if rel > ENERGY_RTOL:
            failures[field] = rel
    for field in TEMPERATURE_FIELDS:
        rel = _rel(getattr(exact, field), getattr(fast, field))
        if rel > TEMPERATURE_RTOL:
            failures[field] = rel
    for field in EXACT_FIELDS:
        if getattr(exact, field) != getattr(fast, field):
            failures[field] = (getattr(exact, field), getattr(fast, field))
    if exact.tasks_executed != fast.tasks_executed:
        failures["tasks_executed"] = (exact.tasks_executed, fast.tasks_executed)
    for ip_name, figures in exact.per_ip.items():
        for key in ("tasks", "transitions"):
            if figures[key] != fast.per_ip[ip_name][key]:
                failures[f"per_ip.{ip_name}.{key}"] = (
                    figures[key],
                    fast.per_ip[ip_name][key],
                )
        rel = _rel(figures["energy_j"], fast.per_ip[ip_name]["energy_j"])
        if rel > ENERGY_RTOL:
            failures[f"per_ip.{ip_name}.energy_j"] = rel
    assert not failures, f"fast mode drifted beyond tolerance: {failures}"


@pytest.mark.parametrize("scenario_name", ["A1", "B"])
def test_fast_mode_preserves_event_times_exactly(scenario_name):
    """Every task's request/grant/completion instant must be identical."""
    scenario = scenario_by_name(scenario_name)
    exact = run_scenario(scenario, DpmSetup.paper(), accuracy="exact")
    fast = run_scenario(scenario, DpmSetup.paper(), accuracy="fast")
    assert exact.end_time == fast.end_time
    assert len(exact.executions) == len(fast.executions)
    for run_e, run_f in zip(exact.executions, fast.executions):
        assert run_e.request_time == run_f.request_time
        assert run_e.grant_time == run_f.grant_time
        assert run_e.completion_time == run_f.completion_time
        assert run_e.power_state == run_f.power_state
    for inst_e, inst_f in zip(exact.soc.instances, fast.soc.instances):
        assert inst_e.psm.transition_counts == inst_f.psm.transition_counts
        assert inst_e.psm.residency() == inst_f.psm.residency()


def test_fast_mode_is_deterministic():
    """Two fast runs of the same scenario are bit-identical to each other."""
    scenario = scenario_by_name("A1")
    first = run_comparison(scenario, DpmSetup.paper(), accuracy="fast")
    second = run_comparison(scenario, DpmSetup.paper(), accuracy="fast")
    for field in ENERGY_FIELDS + TEMPERATURE_FIELDS + EXACT_FIELDS:
        assert getattr(first, field).hex() == getattr(second, field).hex(), field


def test_default_mode_is_exact():
    """Omitting accuracy must keep the bit-identical reference behaviour."""
    scenario = scenario_by_name("A1")
    default = run_comparison(scenario, DpmSetup.paper())
    exact = run_comparison(scenario, DpmSetup.paper(), accuracy="exact")
    for field in ENERGY_FIELDS + TEMPERATURE_FIELDS + EXACT_FIELDS:
        assert getattr(default, field).hex() == getattr(exact, field).hex(), field


def test_fast_mode_works_for_baseline_setup():
    """The always-on baseline (GEM forces, Peukert-rate battery) also holds."""
    scenario = scenario_by_name("B")
    exact = run_scenario(scenario, DpmSetup.always_on(), accuracy="exact")
    fast = run_scenario(scenario, DpmSetup.always_on(), accuracy="fast")
    assert _rel(exact.total_energy_j, fast.total_energy_j) <= ENERGY_RTOL
    assert _rel(exact.average_rise_c, fast.average_rise_c) <= TEMPERATURE_RTOL
    assert _rel(
        exact.soc.battery.state_of_charge, fast.soc.battery.state_of_charge
    ) <= TEMPERATURE_RTOL
