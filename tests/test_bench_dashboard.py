"""Tests for the longitudinal CI bench dashboard aggregator."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_dashboard.py"
_spec = importlib.util.spec_from_file_location("bench_dashboard", _MODULE_PATH)
dashboard = importlib.util.module_from_spec(_spec)
sys.modules["bench_dashboard"] = dashboard
_spec.loader.exec_module(dashboard)


def bench_json(speeds):
    """Synthesise a pytest-benchmark report with our extra_info layout.

    Keys are ``(scenario, accuracy)`` or ``(scenario, accuracy, backend)``.
    """
    benchmarks = []
    for key, speed in speeds.items():
        scenario, accuracy = key[0], key[1]
        extra = {
            "kilocycles_per_second": speed,
            "scenario": scenario,
            "accuracy": accuracy,
        }
        if len(key) > 2:
            extra["backend"] = key[2]
        benchmarks.append(
            {
                "name": f"test_simulation_speed_{'_'.join(key)}",
                "extra_info": extra,
            }
        )
    return {"benchmarks": benchmarks}


@pytest.fixture(autouse=True)
def isolate_step_summary(monkeypatch):
    # Running the suite on a real CI runner must not scribble dashboards
    # into the runner's own job summary; tests opt in explicitly instead.
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


SPEEDS_V1 = {("A1", "exact"): 3000.0, ("A1", "fast"): 4500.0, ("B", "exact"): 1200.0}
SPEEDS_OK = {("A1", "exact"): 2900.0, ("A1", "fast"): 4600.0, ("B", "exact"): 1150.0}
SPEEDS_REGRESSED = {("A1", "exact"): 2000.0, ("A1", "fast"): 4600.0, ("B", "exact"): 1150.0}


class TestExtractResults:
    def test_labels_and_values(self):
        results = dashboard.extract_results(bench_json(SPEEDS_V1))
        assert results == {"A1/exact": 3000.0, "A1/fast": 4500.0, "B/exact": 1200.0}

    def test_benchmarks_without_speed_are_skipped(self):
        report = {"benchmarks": [{"name": "kernel", "extra_info": {"timed_events": 5}}]}
        assert dashboard.extract_results(report) == {}

    def test_native_backend_gets_its_own_series(self):
        speeds = {
            ("A1", "exact"): 3000.0,
            ("A1", "exact", "python"): 3000.0,
            ("B", "exact", "native"): 9000.0,
        }
        results = dashboard.extract_results(bench_json(speeds))
        # Explicit "python" collapses onto the default label; "native" is
        # suffixed so it is tracked as a separate series.
        assert results == {"A1/exact": 3000.0, "B/exact/native": 9000.0}


class TestHistory:
    def test_append_creates_and_orders_entries(self):
        history = dashboard.append_entry({}, "aaa", {"A1/exact": 1.0}, timestamp=1.0)
        history = dashboard.append_entry(history, "bbb", {"A1/exact": 2.0}, timestamp=2.0)
        assert [e["commit"] for e in history["entries"]] == ["aaa", "bbb"]

    def test_same_commit_replaces_its_entry(self):
        history = dashboard.append_entry({}, "aaa", {"A1/exact": 1.0}, timestamp=1.0)
        history = dashboard.append_entry(history, "aaa", {"A1/exact": 3.0}, timestamp=2.0)
        assert len(history["entries"]) == 1
        assert history["entries"][0]["results"]["A1/exact"] == 3.0

    def test_history_is_bounded(self):
        history = {}
        for index in range(dashboard.MAX_ENTRIES + 10):
            history = dashboard.append_entry(
                history, f"c{index}", {"A1/exact": 1.0}, timestamp=float(index)
            )
        assert len(history["entries"]) == dashboard.MAX_ENTRIES


class TestRegressionGate:
    def _history(self, first, second):
        history = dashboard.append_entry({}, "one", dashboard.extract_results(bench_json(first)), 1.0)
        return dashboard.append_entry(history, "two", dashboard.extract_results(bench_json(second)), 2.0)

    def test_no_regression_within_threshold(self):
        history = self._history(SPEEDS_V1, SPEEDS_OK)
        assert dashboard.find_regressions(history, threshold=0.20) == []

    def test_exact_regression_detected(self):
        history = self._history(SPEEDS_V1, SPEEDS_REGRESSED)
        regressions = dashboard.find_regressions(history, threshold=0.20)
        assert [r[0] for r in regressions] == ["A1/exact"]
        _, prev, cur, drop = regressions[0]
        assert (prev, cur) == (3000.0, 2000.0)
        assert drop == pytest.approx(1.0 / 3.0)

    def test_fast_mode_is_tracked_but_not_gated(self):
        slow_fast = dict(SPEEDS_OK)
        slow_fast[("A1", "fast")] = 100.0
        history = self._history(SPEEDS_V1, slow_fast)
        assert dashboard.find_regressions(history, threshold=0.20) == []

    def test_single_entry_never_fails(self):
        history = dashboard.append_entry({}, "one", {"A1/exact": 1.0}, 1.0)
        assert dashboard.find_regressions(history, threshold=0.20) == []

    def test_missing_native_series_is_not_a_regression(self):
        """A runner without a C compiler skips the native benchmarks; the
        series disappearing (or cratering) must not gate the merge."""
        with_native = dict(SPEEDS_V1)
        with_native[("A1", "exact", "native")] = 9000.0
        history = self._history(with_native, SPEEDS_OK)
        assert dashboard.find_regressions(history, threshold=0.20) == []
        slower_native = dict(SPEEDS_OK)
        slower_native[("A1", "exact", "native")] = 10.0
        history = self._history(with_native, slower_native)
        assert dashboard.find_regressions(history, threshold=0.20) == []


class TestMarkdownAndMain:
    def test_markdown_contains_commits_and_labels(self):
        history = dashboard.append_entry({}, "abcdef1234567890", {"A1/exact": 2950.5}, 1.0)
        text = dashboard.render_markdown(history)
        assert "| commit | A1/exact |" in text
        assert "`abcdef1234`" in text
        assert "2,950" in text

    def test_main_end_to_end_and_gate(self, tmp_path):
        current = tmp_path / "BENCH_sim_speed.json"
        history = tmp_path / "BENCH_history.json"
        markdown = tmp_path / "BENCH_dashboard.md"

        current.write_text(json.dumps(bench_json(SPEEDS_V1)))
        argv = [
            "--current", str(current), "--history", str(history),
            "--markdown", str(markdown), "--fail-threshold", "0.20",
        ]
        assert dashboard.main(argv + ["--commit", "commit-1"]) == 0
        assert json.loads(history.read_text())["entries"][0]["commit"] == "commit-1"
        assert markdown.is_file()

        current.write_text(json.dumps(bench_json(SPEEDS_OK)))
        assert dashboard.main(argv + ["--commit", "commit-2"]) == 0
        assert len(json.loads(history.read_text())["entries"]) == 2

        current.write_text(json.dumps(bench_json(SPEEDS_REGRESSED)))
        assert dashboard.main(argv + ["--commit", "commit-3"]) == 1

    def test_first_run_notes_the_missing_baseline(self, tmp_path, capsys):
        current = tmp_path / "BENCH_sim_speed.json"
        current.write_text(json.dumps(bench_json(SPEEDS_V1)))
        code = dashboard.main(
            ["--current", str(current), "--history", str(tmp_path / "h.json"),
             "--commit", "first"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "starting a new history" in out
        assert "no baseline yet" in out

    def test_empty_history_file_is_tolerated(self, tmp_path, capsys):
        # actions/cache can restore a zero-byte file from an interrupted run.
        current = tmp_path / "BENCH_sim_speed.json"
        history = tmp_path / "BENCH_history.json"
        current.write_text(json.dumps(bench_json(SPEEDS_V1)))
        history.write_text("")
        code = dashboard.main(
            ["--current", str(current), "--history", str(history), "--commit", "c1"]
        )
        assert code == 0
        assert "is empty; starting a new history" in capsys.readouterr().out
        assert json.loads(history.read_text())["entries"][0]["commit"] == "c1"

    def test_markdown_lands_in_the_step_summary(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        current = tmp_path / "BENCH_sim_speed.json"
        current.write_text(json.dumps(bench_json(SPEEDS_V1)))
        assert dashboard.main(
            ["--current", str(current), "--history", str(tmp_path / "h.json"),
             "--commit", "summarized"]
        ) == 0
        text = summary.read_text()
        assert "# Simulation-speed dashboard" in text
        assert "`summarized`" in text

    def test_main_rejects_empty_report(self, tmp_path):
        current = tmp_path / "empty.json"
        current.write_text(json.dumps({"benchmarks": []}))
        code = dashboard.main(
            ["--current", str(current), "--history", str(tmp_path / "h.json"),
             "--commit", "x"]
        )
        assert code == 2
