"""Tests for the Power State Machine simulation module."""

import pytest

from repro.errors import PowerModelError
from repro.power import (
    EnergyAccount,
    EnergyCategory,
    PowerState,
    PowerStateMachine,
    default_characterization,
    default_transition_table,
)
from repro.sim import Simulator, ms, us


def build_psm(initial_state=PowerState.ON1):
    sim = Simulator()
    account = EnergyAccount("ip0")
    psm = PowerStateMachine(
        sim.kernel,
        "psm",
        characterization=default_characterization(),
        transitions=default_transition_table(),
        energy_account=account,
        initial_state=initial_state,
    )
    sim.add_module(psm)
    return sim, psm, account


class TestTransitions:
    def test_initial_state(self):
        _, psm, _ = build_psm()
        assert psm.state is PowerState.ON1
        assert not psm.is_transitioning
        assert psm.transition_count == 0

    def test_transition_changes_state_after_latency(self):
        sim, psm, _ = build_psm()
        observed = []

        class Driver:
            pass

        def driver():
            psm.request_state(PowerState.SL1)
            yield from psm.wait_for_state(PowerState.SL1)
            observed.append((sim.now.seconds, psm.state))

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(10))
        expected_latency = default_transition_table().latency(PowerState.ON1, PowerState.SL1)
        assert observed[0][1] is PowerState.SL1
        assert observed[0][0] == pytest.approx(expected_latency.seconds, rel=1e-6)
        assert psm.transition_count == 1
        assert psm.transition_counts["ON1->SL1"] == 1

    def test_transition_energy_charged(self):
        sim, psm, account = build_psm()

        def driver():
            psm.request_state(PowerState.ON4)
            yield from psm.wait_for_state(PowerState.ON4)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(10))
        expected = default_transition_table().energy_j(PowerState.ON1, PowerState.ON4)
        assert account.category_j(EnergyCategory.TRANSITION) == pytest.approx(expected)

    def test_request_same_state_is_noop(self):
        sim, psm, _ = build_psm()

        def driver():
            psm.request_state(PowerState.ON1)
            yield us(100)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(1))
        assert psm.transition_count == 0
        assert psm.state is PowerState.ON1

    def test_invalid_request_type_rejected(self):
        _, psm, _ = build_psm()
        with pytest.raises(PowerModelError):
            psm.request_state("ON1")

    def test_sequence_of_transitions(self):
        sim, psm, _ = build_psm()
        visited = []

        def driver():
            for target in (PowerState.ON3, PowerState.SL2, PowerState.ON2):
                psm.request_state(target)
                yield from psm.wait_for_state(target)
                visited.append(psm.state)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(50))
        assert visited == [PowerState.ON3, PowerState.SL2, PowerState.ON2]
        assert psm.transition_count == 3

    def test_transition_latency_query(self):
        _, psm, _ = build_psm()
        table = default_transition_table()
        assert psm.transition_latency(PowerState.SL3) == table.latency(PowerState.ON1, PowerState.SL3)


class TestEnergyIntegration:
    def test_idle_energy_integrated_over_time(self):
        sim, psm, account = build_psm()
        sim.run(ms(10))
        psm.flush_energy()
        char = default_characterization()
        expected = char.idle_power_w(PowerState.ON1) * 0.010
        assert account.category_j(EnergyCategory.IDLE) == pytest.approx(expected, rel=1e-6)

    def test_sleep_energy_integrated_in_sleep_state(self):
        sim, psm, account = build_psm()

        def driver():
            psm.request_state(PowerState.SL4)
            yield from psm.wait_for_state(PowerState.SL4)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(20))
        psm.flush_energy()
        assert account.category_j(EnergyCategory.SLEEP) > 0.0

    def test_busy_interval_not_charged_as_idle(self):
        sim, psm, account = build_psm()

        def driver():
            psm.set_busy(True)
            yield ms(10)
            psm.set_busy(False)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(10))
        psm.flush_energy()
        assert account.category_j(EnergyCategory.IDLE) == pytest.approx(0.0, abs=1e-15)

    def test_busy_in_sleep_state_rejected(self):
        sim, psm, _ = build_psm(initial_state=PowerState.SL1)

        def driver():
            with pytest.raises(PowerModelError):
                psm.set_busy(True)
            yield us(1)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(1))

    def test_residency_accumulates(self):
        sim, psm, _ = build_psm()

        def driver():
            yield ms(5)
            psm.request_state(PowerState.SL1)
            yield from psm.wait_for_state(PowerState.SL1)
            yield ms(5)

        sim.kernel.create_thread(driver, "driver")
        sim.run(ms(30))
        psm.flush_energy()
        residency = psm.residency()
        assert residency[PowerState.ON1].seconds > 0.004
        assert residency[PowerState.SL1].seconds > 0.004
