"""Tests for the transition table, break-even analysis and energy accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidTransitionError, PowerModelError
from repro.power import (
    BreakEvenAnalyzer,
    EnergyAccount,
    EnergyCategory,
    EnergyLedger,
    PowerState,
    SLEEP_STATES,
    TransitionCost,
    TransitionTable,
    break_even_time,
    default_characterization,
    default_transition_table,
)
from repro.sim import ZERO_TIME, ms, us, sec


class TestTransitionTable:
    def test_default_table_allows_all_cross_state_moves(self):
        table = default_transition_table()
        states = [PowerState.ON1, PowerState.ON4, PowerState.SL1, PowerState.SL4, PowerState.OFF]
        for source in states:
            for target in states:
                assert table.is_allowed(source, target)

    def test_self_transition_is_free(self):
        table = default_transition_table()
        cost = table.cost(PowerState.ON2, PowerState.ON2)
        assert cost.energy_j == 0.0
        assert cost.latency.is_zero

    def test_deeper_sleep_costs_more(self):
        table = default_transition_table()
        latencies = [table.latency(PowerState.ON1, state).seconds for state in SLEEP_STATES]
        energies = [table.energy_j(PowerState.ON1, state) for state in SLEEP_STATES]
        assert latencies == sorted(latencies)
        assert energies == sorted(energies)

    def test_wakeup_slower_than_entry(self):
        table = default_transition_table()
        for state in SLEEP_STATES:
            assert (
                table.latency(state, PowerState.ON1).femtoseconds
                > table.latency(PowerState.ON1, state).femtoseconds
            )

    def test_round_trip_cost_is_sum(self):
        table = default_transition_table()
        round_trip = table.round_trip_cost(PowerState.ON1, PowerState.SL2)
        enter = table.cost(PowerState.ON1, PowerState.SL2)
        leave = table.cost(PowerState.SL2, PowerState.ON1)
        assert round_trip.energy_j == pytest.approx(enter.energy_j + leave.energy_j)
        assert round_trip.latency == enter.latency + leave.latency

    def test_missing_transition_raises(self):
        table = TransitionTable({(PowerState.ON1, PowerState.SL1): TransitionCost(1e-6, us(10))})
        assert table.is_allowed(PowerState.ON1, PowerState.SL1)
        assert not table.is_allowed(PowerState.SL1, PowerState.ON1)
        with pytest.raises(InvalidTransitionError):
            table.cost(PowerState.SL1, PowerState.ON1)

    def test_negative_energy_rejected(self):
        with pytest.raises(PowerModelError):
            TransitionCost(-1.0, us(1))

    def test_non_free_self_transition_rejected(self):
        with pytest.raises(PowerModelError):
            TransitionTable({(PowerState.ON1, PowerState.ON1): TransitionCost(1e-6, us(1))})

    def test_invalid_reference_power_rejected(self):
        with pytest.raises(PowerModelError):
            default_transition_table(reference_power_w=0.0)

    def test_as_dict_contains_pairs(self):
        data = default_transition_table().as_dict()
        assert "ON1->SL1" in data
        assert data["ON1->SL1"]["energy_j"] > 0.0


class TestBreakEvenFormula:
    def test_simple_break_even(self):
        # Idle 100 mW, sleep 10 mW, transition costs 1 mJ over 1 ms.
        threshold = break_even_time(0.1, 0.01, 1e-3, ms(1))
        # (1e-3 - 0.01*1e-3) / (0.1 - 0.01) = 0.011 s
        assert threshold.seconds == pytest.approx(0.011, rel=1e-6)

    def test_break_even_never_below_transition_latency(self):
        threshold = break_even_time(0.1, 0.0, 0.0, ms(5))
        assert threshold == ms(5)

    def test_unreachable_state_returns_none(self):
        assert break_even_time(0.05, 0.05, 1e-3, ms(1)) is None
        assert break_even_time(0.05, 0.10, 1e-3, ms(1)) is None

    def test_negative_inputs_rejected(self):
        with pytest.raises(PowerModelError):
            break_even_time(-0.1, 0.01, 1e-3, ms(1))

    @given(
        idle=st.floats(min_value=0.01, max_value=1.0),
        sleep_fraction=st.floats(min_value=0.0, max_value=0.9),
        energy=st.floats(min_value=0.0, max_value=1e-2),
        latency_us=st.floats(min_value=1.0, max_value=1e4),
    )
    def test_break_even_monotonic_in_transition_energy(self, idle, sleep_fraction, energy, latency_us):
        sleep = idle * sleep_fraction
        latency = us(latency_us)
        small = break_even_time(idle, sleep, energy, latency)
        large = break_even_time(idle, sleep, energy * 2 + 1e-6, latency)
        assert small is not None and large is not None
        assert large.femtoseconds >= small.femtoseconds


class TestBreakEvenAnalyzer:
    @pytest.fixture
    def analyzer(self):
        return BreakEvenAnalyzer(default_characterization(), default_transition_table())

    def test_deeper_states_have_longer_break_even(self, analyzer):
        thresholds = [analyzer.break_even(state) for state in SLEEP_STATES]
        assert all(threshold is not None for threshold in thresholds)
        values = [threshold.seconds for threshold in thresholds]
        assert values == sorted(values)

    def test_short_idle_selects_no_state(self, analyzer):
        assert analyzer.best_state_for(us(1)) is None

    def test_long_idle_selects_deep_state(self, analyzer):
        state = analyzer.best_state_for(sec(10))
        assert state in (PowerState.SL4, PowerState.OFF)

    def test_moderate_idle_selects_shallow_state(self, analyzer):
        sl1_threshold = analyzer.break_even(PowerState.SL1)
        sl2_threshold = analyzer.break_even(PowerState.SL2)
        idle = (sl1_threshold + sl2_threshold) / 2
        state = analyzer.best_state_for(idle)
        assert state is PowerState.SL1

    def test_disallowing_off_prevents_off(self, analyzer):
        state = analyzer.best_state_for(sec(100), allow_off=False)
        assert state is PowerState.SL4

    def test_reference_state_must_be_on(self):
        with pytest.raises(PowerModelError):
            BreakEvenAnalyzer(
                default_characterization(),
                default_transition_table(),
                reference_on_state=PowerState.SL1,
            )

    def test_candidate_state_must_be_low_power(self):
        with pytest.raises(PowerModelError):
            BreakEvenAnalyzer(
                default_characterization(),
                default_transition_table(),
                candidate_states=[PowerState.ON2],
            )

    def test_entry_lookup_and_summary(self, analyzer):
        entry = analyzer.entry(PowerState.SL1)
        assert entry.reachable
        assert entry.round_trip_energy_j > 0.0
        summary = analyzer.summary()
        assert set(summary) == {"SL1", "SL2", "SL3", "SL4", "OFF"}
        with pytest.raises(PowerModelError):
            analyzer.entry(PowerState.ON1)

    def test_saving_positive_beyond_break_even(self, analyzer):
        char = default_characterization()
        idle_power = char.idle_power_w(PowerState.ON1)
        entry = analyzer.entry(PowerState.SL2)
        beyond = entry.break_even * 2
        assert entry.saving_j(idle_power, beyond) > 0.0

    def test_saving_negative_below_break_even(self, analyzer):
        char = default_characterization()
        idle_power = char.idle_power_w(PowerState.ON1)
        entry = analyzer.entry(PowerState.SL4)
        below = entry.break_even / 10
        assert entry.saving_j(idle_power, below) < 0.0


class TestEnergyAccounting:
    def test_account_accumulates_by_category(self):
        account = EnergyAccount("ip0")
        account.add_energy(1.0, EnergyCategory.ACTIVE)
        account.add_energy(0.5, EnergyCategory.IDLE)
        account.add_power(2.0, sec(3), EnergyCategory.SLEEP)
        assert account.total_j == pytest.approx(7.5)
        assert account.category_j(EnergyCategory.SLEEP) == pytest.approx(6.0)
        assert account.deposit_count == 3
        assert account.breakdown[EnergyCategory.ACTIVE] == pytest.approx(1.0)

    def test_negative_energy_rejected(self):
        account = EnergyAccount("ip0")
        with pytest.raises(PowerModelError):
            account.add_energy(-1.0)
        with pytest.raises(PowerModelError):
            account.add_power(-1.0, sec(1))

    def test_average_power(self):
        account = EnergyAccount("ip0")
        account.add_energy(10.0)
        assert account.average_power_w(sec(5)) == pytest.approx(2.0)
        assert account.average_power_w(ZERO_TIME) == 0.0

    def test_ledger_aggregation_and_exclusion(self):
        ledger = EnergyLedger()
        ledger.account("ip0").add_energy(1.0)
        ledger.account("ip1").add_energy(2.0)
        ledger.account("ip2").add_energy(4.0)
        assert ledger.total_j == pytest.approx(7.0)
        assert ledger.total_excluding("ip1") == pytest.approx(5.0)
        assert set(ledger.owners) == {"ip0", "ip1", "ip2"}
        assert ledger.totals_by_owner()["ip2"] == pytest.approx(4.0)

    def test_ledger_register_conflict(self):
        ledger = EnergyLedger()
        first = ledger.account("ip0")
        assert ledger.register(first) is first
        with pytest.raises(PowerModelError):
            ledger.register(EnergyAccount("ip0"))

    def test_ledger_average_power(self):
        ledger = EnergyLedger()
        ledger.account("ip0").add_energy(3.0)
        assert ledger.average_power_w(sec(3)) == pytest.approx(1.0)
        assert ledger.average_power_w(ZERO_TIME) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), max_size=30))
    def test_total_is_sum_of_deposits(self, deposits):
        account = EnergyAccount("x")
        for value in deposits:
            account.add_energy(value)
        assert account.total_j == pytest.approx(sum(deposits))
