"""Edge cases of the break-even computation (lint's PSM analyzer leans on
these exact behaviours)."""

import pytest

from repro.errors import PowerModelError
from repro.power.breakeven import break_even_time
from repro.sim.simtime import ZERO_TIME, us


class TestZeroLatency:
    def test_zero_latency_zero_energy_breaks_even_immediately(self):
        assert break_even_time(
            idle_power_w=1.0, sleep_power_w=0.1,
            transition_energy_j=0.0, transition_latency=ZERO_TIME,
        ) == ZERO_TIME

    def test_zero_latency_with_energy_is_pure_energy_ratio(self):
        # T_be = E_tr / (P_idle - P_sleep) = 1e-6 / 0.5 = 2 us
        threshold = break_even_time(
            idle_power_w=1.0, sleep_power_w=0.5,
            transition_energy_j=1e-6, transition_latency=ZERO_TIME,
        )
        assert threshold == us(2.0)

    def test_latency_floor_applies(self):
        # The energy ratio would allow an earlier break-even, but the
        # transition itself must fit in the idle window.
        threshold = break_even_time(
            idle_power_w=1.0, sleep_power_w=0.0,
            transition_energy_j=1e-9, transition_latency=us(50.0),
        )
        assert threshold == us(50.0)


class TestNeverBreaksEven:
    def test_sleep_power_equal_to_idle_returns_none(self):
        assert break_even_time(
            idle_power_w=0.5, sleep_power_w=0.5,
            transition_energy_j=0.0, transition_latency=ZERO_TIME,
        ) is None

    def test_sleep_power_above_idle_returns_none(self):
        assert break_even_time(
            idle_power_w=0.5, sleep_power_w=0.7,
            transition_energy_j=0.0, transition_latency=ZERO_TIME,
        ) is None


class TestNegativeInputs:
    @pytest.mark.parametrize("kwargs", [
        {"idle_power_w": -1.0, "sleep_power_w": 0.1, "transition_energy_j": 0.0},
        {"idle_power_w": 1.0, "sleep_power_w": -0.1, "transition_energy_j": 0.0},
        {"idle_power_w": 1.0, "sleep_power_w": 0.1, "transition_energy_j": -1e-9},
    ])
    def test_negative_values_rejected(self, kwargs):
        with pytest.raises(PowerModelError):
            break_even_time(transition_latency=ZERO_TIME, **kwargs)
