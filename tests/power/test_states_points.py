"""Tests for power states, DVFS operating points and characterisation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PowerModelError
from repro.power import (
    ALL_STATES,
    InstructionClass,
    ON_STATES,
    OperatingPoint,
    OperatingPointTable,
    PowerState,
    SLEEP_STATES,
    default_characterization,
    default_operating_points,
)


class TestPowerState:
    def test_classification(self):
        assert PowerState.ON1.is_on and PowerState.ON4.is_on
        assert PowerState.SL1.is_sleep and PowerState.SL4.is_sleep
        assert PowerState.OFF.is_off
        assert not PowerState.OFF.is_on
        assert PowerState.ON2.can_execute
        assert not PowerState.SL2.can_execute

    def test_nine_states_exist(self):
        assert len(ALL_STATES) == 9
        assert len(ON_STATES) == 4
        assert len(SLEEP_STATES) == 4

    def test_performance_rank_ordering(self):
        ranks = [state.performance_rank for state in ON_STATES]
        assert ranks == [4, 3, 2, 1]
        assert PowerState.SL1.performance_rank == 0

    def test_depth_ordering(self):
        assert [s.depth for s in SLEEP_STATES] == [1, 2, 3, 4]
        assert PowerState.OFF.depth == 5
        assert PowerState.ON1.depth == 0

    def test_constructors(self):
        assert PowerState.on_state(3) is PowerState.ON3
        assert PowerState.sleep_state(2) is PowerState.SL2
        assert PowerState.from_string("on1") is PowerState.ON1
        assert PowerState.from_string(" sl4 ") is PowerState.SL4

    def test_invalid_constructors(self):
        with pytest.raises(PowerModelError):
            PowerState.on_state(5)
        with pytest.raises(PowerModelError):
            PowerState.sleep_state(0)
        with pytest.raises(PowerModelError):
            PowerState.from_string("warp9")
        with pytest.raises(PowerModelError):
            PowerState.OFF.index  # noqa: B018 - property access raises


class TestOperatingPoint:
    def test_rejects_non_on_state(self):
        with pytest.raises(PowerModelError):
            OperatingPoint(PowerState.SL1, 1.0, 1e8)

    def test_rejects_non_positive_values(self):
        with pytest.raises(PowerModelError):
            OperatingPoint(PowerState.ON1, 0.0, 1e8)
        with pytest.raises(PowerModelError):
            OperatingPoint(PowerState.ON1, 1.0, 0.0)

    def test_power_scaling(self):
        point = OperatingPoint(PowerState.ON1, 1.2, 200e6)
        assert point.dynamic_power_w(1e-9) == pytest.approx(1e-9 * 1.2**2 * 200e6)
        assert point.energy_per_cycle_j(1e-9) == pytest.approx(1e-9 * 1.2**2)
        assert point.leakage_power_w(0.01) == pytest.approx(0.012)

    def test_execution_time(self):
        point = OperatingPoint(PowerState.ON1, 1.2, 100e6)
        assert point.execution_time(100e6).seconds == pytest.approx(1.0)
        assert point.clock_period.nanoseconds == pytest.approx(10.0)

    def test_negative_inputs_rejected(self):
        point = OperatingPoint(PowerState.ON1, 1.2, 100e6)
        with pytest.raises(PowerModelError):
            point.dynamic_power_w(-1.0)
        with pytest.raises(PowerModelError):
            point.execution_time(-5)


class TestOperatingPointTable:
    def test_default_table_monotonic(self):
        table = default_operating_points()
        freqs = [table[state].frequency_hz for state in ON_STATES]
        volts = [table[state].voltage_v for state in ON_STATES]
        assert freqs == sorted(freqs, reverse=True)
        assert volts == sorted(volts, reverse=True)

    def test_default_ratios(self):
        table = default_operating_points()
        assert table.frequency_ratio(PowerState.ON1) == pytest.approx(1.0)
        assert table.frequency_ratio(PowerState.ON4) == pytest.approx(0.25)
        assert table.energy_ratio(PowerState.ON4) == pytest.approx(0.625**2)

    def test_missing_point_rejected(self):
        points = [OperatingPoint(PowerState.ON1, 1.2, 200e6)]
        with pytest.raises(PowerModelError):
            OperatingPointTable(points)

    def test_duplicate_point_rejected(self):
        points = [
            OperatingPoint(PowerState.ON1, 1.2, 200e6),
            OperatingPoint(PowerState.ON1, 1.1, 150e6),
        ]
        with pytest.raises(PowerModelError):
            OperatingPointTable(points)

    def test_non_monotonic_rejected(self):
        with pytest.raises(PowerModelError):
            default_operating_points(frequency_scales={PowerState.ON3: 0.9})

    def test_slowdown(self):
        table = default_operating_points()
        assert table[PowerState.ON4].slowdown_versus(table.fastest) == pytest.approx(4.0)

    def test_as_dict_round_trip(self):
        table = default_operating_points()
        data = table.as_dict()
        assert set(data) == {"ON1", "ON2", "ON3", "ON4"}
        assert data["ON1"]["frequency_hz"] == pytest.approx(200e6)


class TestCharacterization:
    def test_active_power_ordering_across_states(self):
        char = default_characterization()
        powers = [char.active_power_w(state) for state in ON_STATES]
        assert powers == sorted(powers, reverse=True)

    def test_energy_per_cycle_ordering_across_states(self):
        char = default_characterization()
        energies = [char.energy_per_cycle_j(state) for state in ON_STATES]
        assert energies == sorted(energies, reverse=True)

    def test_instruction_class_activity_affects_energy(self):
        char = default_characterization()
        dsp = char.energy_per_cycle_j(PowerState.ON1, InstructionClass.DSP)
        io = char.energy_per_cycle_j(PowerState.ON1, InstructionClass.IO)
        assert dsp > io

    def test_idle_power_below_active_power(self):
        char = default_characterization()
        for state in ON_STATES:
            assert char.idle_power_w(state) < char.active_power_w(state)

    def test_sleep_power_ordering(self):
        char = default_characterization()
        powers = [char.residual_power_w(state) for state in SLEEP_STATES]
        assert powers == sorted(powers, reverse=True)
        assert char.residual_power_w(PowerState.OFF) < powers[-1]
        assert char.residual_power_w(PowerState.SL1) < char.idle_power_w(PowerState.ON1)

    def test_background_power_zero_when_busy(self):
        char = default_characterization()
        assert char.background_power_w(PowerState.ON1, busy=True) == 0.0
        assert char.background_power_w(PowerState.ON1, busy=False) > 0.0

    def test_task_energy_scales_with_cycles(self):
        char = default_characterization()
        one = char.task_energy_j(PowerState.ON2, 1000)
        two = char.task_energy_j(PowerState.ON2, 2000)
        assert two == pytest.approx(2 * one)

    def test_execution_time_scales_with_state(self):
        char = default_characterization()
        fast = char.execution_time(PowerState.ON1, 1e6)
        slow = char.execution_time(PowerState.ON4, 1e6)
        assert slow / fast == pytest.approx(4.0)

    def test_residual_power_of_on_state_rejected(self):
        char = default_characterization()
        with pytest.raises(PowerModelError):
            char.residual_power_w(PowerState.ON1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PowerModelError):
            default_characterization(effective_capacitance_f=-1.0)

    def test_summary_contains_all_states(self):
        summary = default_characterization().summary()
        assert "power_active_ON1" in summary
        assert "power_SL4" in summary
        assert "power_OFF" in summary

    @given(st.floats(min_value=1.0, max_value=1e7))
    def test_task_energy_non_negative(self, cycles):
        char = default_characterization()
        assert char.task_energy_j(PowerState.ON3, cycles) >= 0.0

    @given(st.sampled_from(list(ON_STATES)), st.sampled_from(list(InstructionClass)))
    def test_energy_per_cycle_positive_everywhere(self, state, iclass):
        char = default_characterization()
        assert char.energy_per_cycle_j(state, iclass) > 0.0
