"""Workload analyzer: can the declared work run at all, and is DPM relevant?

* ``WORKLOAD-UNFINISHABLE`` — the workload's minimum wall time (every
  cycle at ON1 frequency plus the mandatory idle gaps — utilisation of
  the horizon > 1) exceeds ``max_time_ms``; even a perfect power manager
  cannot complete the run, so completion-gated metrics are meaningless.
* ``WORKLOAD-EMPTY-TASK`` — an explicit item with a non-positive cycle
  count; such a task cannot be instantiated and the build fails at run
  time rather than at validation time.
* ``WORKLOAD-NEVER-IDLE`` — a workload with zero idle time: the DPM has
  no window to ever act in, so the platform measures nothing but the
  baseline.
"""

from __future__ import annotations

from typing import List

from repro.lint.findings import Finding, Severity
from repro.lint.model import IpModel, SpecModel

__all__ = ["analyze_workload"]


def _analyze_ip(model: SpecModel, ip_model: IpModel) -> List[Finding]:
    findings: List[Finding] = []
    path = f"{ip_model.path}.workload"
    wdef = ip_model.ip.workload

    if wdef.kind == "explicit":
        for index, item in enumerate(wdef.items or []):
            cycles = item.get("cycles")
            if isinstance(cycles, (int, float)) and not isinstance(cycles, bool) \
                    and cycles <= 0:
                findings.append(Finding(
                    code="WORKLOAD-EMPTY-TASK",
                    severity=Severity.ERROR,
                    path=f"{path}.items[{index}]",
                    message=(
                        f"task {item.get('task')!r} has {cycles} cycles; a task "
                        "needs a positive cycle count to exist"
                    ),
                    suggestion="give the task real work or delete the item",
                ))

    if ip_model.workload is None:
        if ip_model.workload_error and not findings:
            # The build failed for a reason the explicit-item check did not
            # already explain; surface it rather than silently skipping.
            findings.append(Finding(
                code="WORKLOAD-EMPTY-TASK",
                severity=Severity.ERROR,
                path=path,
                message=f"workload cannot be instantiated: {ip_model.workload_error}",
            ))
        return findings

    duration_s = ip_model.min_duration_s() or 0.0
    horizon_s = model.horizon_s
    if duration_s > horizon_s:
        findings.append(Finding(
            code="WORKLOAD-UNFINISHABLE",
            severity=Severity.ERROR,
            path=path,
            message=(
                f"needs at least {duration_s * 1e3:.4g} ms even at full speed "
                f"with zero DPM overhead, but max_time_ms is "
                f"{model.spec.max_time_ms:g} ms (utilisation "
                f"{duration_s / horizon_s:.2f} > 1)"
            ),
            suggestion="raise max_time_ms or shrink the workload",
        ))
    if ip_model.workload.task_count and ip_model.workload.total_idle.is_zero:
        findings.append(Finding(
            code="WORKLOAD-NEVER-IDLE",
            severity=Severity.INFO,
            path=path,
            message=(
                "the workload has no idle time at all; the power manager "
                "never gets a window to act"
            ),
            suggestion="add idle gaps if DPM behaviour is the point of the run",
        ))
    return findings


def analyze_workload(model: SpecModel) -> List[Finding]:
    findings: List[Finding] = []
    for ip_model in model.ips:
        findings.extend(_analyze_ip(model, ip_model))
    return findings
