"""Shared analysis model: one build of the spec's derived objects.

Every spec analyzer needs the same derived artifacts — the instantiated
workloads, the power characterisation, the transition table and the
break-even analysis per IP, plus the active selection rule table.  Building
them once in :func:`build_model` keeps the analyzers cheap and guarantees
they all reason about the *same* objects the simulator would run (the
builders of :mod:`repro.platform.build` are the single bridge from spec to
library objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.dpm.rules import RuleTable, paper_rule_table
from repro.errors import ReproError
from repro.platform.build import (
    build_characterization,
    build_transitions,
    build_workload,
)
from repro.platform.spec import IpDef, PlatformSpec
from repro.power.breakeven import BreakEvenAnalyzer
from repro.power.characterization import (
    PowerCharacterization,
    default_characterization,
)
from repro.power.states import SLEEP_STATES, PowerState
from repro.power.transitions import TransitionTable, default_transition_table
from repro.soc.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (reach imports us)
    from repro.lint.reach import ReachResult

__all__ = ["IpModel", "SpecModel", "build_model", "spec_rule_table"]

#: Candidate low-power states in analysis order (shallow to deep).
LOW_STATES = tuple(SLEEP_STATES) + (PowerState.OFF,)


def spec_rule_table(spec: PlatformSpec) -> Optional[RuleTable]:
    """The selection rule table ``spec`` runs under, if it uses one.

    A missing policy defaults to the paper's DPM; the ``paper`` policy uses
    its custom ``rules`` when given, Table 1 otherwise.  Non-rule-based
    policies (``always-on``, ``greedy-sleep``, ...) return ``None``.
    """
    policy = spec.policy
    if policy is None:
        return paper_rule_table()
    if policy.name != "paper":
        return None
    if policy.rules:
        return RuleTable.from_dicts(policy.rules, name=f"{spec.name}-rules")
    return paper_rule_table()


@dataclass
class IpModel:
    """Derived per-IP artifacts, as the simulator would build them."""

    index: int
    ip: IpDef
    characterization: PowerCharacterization
    transitions: TransitionTable
    #: low-power states with a complete ON1 round trip (entry and wake)
    complete_states: List[PowerState]
    breakeven: Optional[BreakEvenAnalyzer]
    workload: Optional[Workload]
    workload_error: Optional[str] = None

    @property
    def path(self) -> str:
        return f"platform.ips[{self.index}]"

    @property
    def max_frequency_hz(self) -> float:
        """ON1 clock frequency — the fastest the IP can retire cycles."""
        return self.characterization.operating_points.point(PowerState.ON1).frequency_hz

    def min_duration_s(self) -> Optional[float]:
        """Lower bound on the workload's wall time: full speed, zero DPM
        overhead — busy cycles at ON1 frequency plus the mandatory idle gaps."""
        if self.workload is None:
            return None
        busy_s = self.workload.total_cycles / self.max_frequency_hz
        return busy_s + self.workload.total_idle.seconds


@dataclass
class SpecModel:
    """Everything the five spec analyzers read."""

    spec: PlatformSpec
    table: Optional[RuleTable]
    ips: List[IpModel]
    #: trajectory envelope from :func:`repro.lint.reach.compute_reach`;
    #: ``None`` unless the lint run was asked for reachability analysis
    reach: Optional["ReachResult"] = None

    @property
    def horizon_s(self) -> float:
        return self.spec.max_time_ms / 1e3


def _build_ip(index: int, ip: IpDef) -> IpModel:
    characterization = build_characterization(ip) or default_characterization()
    transitions = build_transitions(ip, characterization)
    if transitions is None:
        transitions = default_transition_table(
            reference_power_w=characterization.active_power_w(PowerState.ON1)
        )
    complete = [
        state
        for state in LOW_STATES
        if transitions.is_allowed(PowerState.ON1, state)
        and transitions.is_allowed(state, PowerState.ON1)
    ]
    breakeven = (
        BreakEvenAnalyzer(characterization, transitions, candidate_states=complete)
        if complete
        else None
    )
    workload: Optional[Workload] = None
    workload_error: Optional[str] = None
    try:
        workload = build_workload(ip.workload)
    except (ReproError, ValueError) as error:
        # A validated spec can still describe an uninstantiable workload
        # (e.g. a zero-cycle explicit task); the workload analyzer turns
        # this into a finding instead of the whole lint run crashing.
        workload_error = str(error)
    return IpModel(
        index=index,
        ip=ip,
        characterization=characterization,
        transitions=transitions,
        complete_states=complete,
        breakeven=breakeven,
        workload=workload,
        workload_error=workload_error,
    )


def build_model(spec: PlatformSpec) -> SpecModel:
    """Derive the analysis model for one (already validated) spec."""
    return SpecModel(
        spec=spec,
        table=spec_rule_table(spec),
        ips=[_build_ip(index, ip) for index, ip in enumerate(spec.ips)],
    )
