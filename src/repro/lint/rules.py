"""Rules analyzer: dead structure in the first-match selection table.

Operates on the table the spec actually runs under (Table 1 or the
policy's custom ``rules``, see :func:`repro.lint.model.spec_rule_table`):

* ``RULES-SHADOWED`` — a rule no input can ever reach (earlier rules cover
  every context it accepts); with first-match semantics it is dead code.
* ``RULES-CONTRADICTION`` / ``RULES-DUPLICATE`` — two rules with identical
  match sets; the later one never fires, and a different selected state
  means the author expected it to.
* ``RULES-UNCOVERED`` — contexts no rule matches.  Feasible contexts (ones
  this spec's battery/bus model can actually produce) are errors, because
  :meth:`~repro.dpm.rules.RuleTable.select` raises at runtime; contexts the
  spec can never produce (e.g. battery levels of a platform on AC power)
  are reported as info.

When the lint run carries a trajectory envelope (``lint --reach``,
:mod:`repro.lint.reach`), feasibility sharpens from the static on-AC check
to the abstract-interpretation one: uncovered contexts the envelope proves
unreachable within the horizon downgrade to info, and rules whose *entire*
first-match set lies outside the envelope get ``RULE-DEAD-TRAJECTORY`` —
dead code relative to this platform's actual dynamics, even though the
rule is not shadowed by the table itself.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.battery.status import BatteryLevel
from repro.lint.findings import Finding, Severity
from repro.lint.model import SpecModel
from repro.soc.bus import BusLevel

__all__ = ["analyze_rules"]


def _feasible(model: SpecModel) -> Tuple[Tuple[BatteryLevel, ...], Tuple[BusLevel, ...]]:
    """Battery/bus levels this spec can actually present to the LEM."""
    if model.spec.battery.on_ac_power:
        batteries: Tuple[BatteryLevel, ...] = (BatteryLevel.AC_POWER,)
    else:
        batteries = tuple(level for level in BatteryLevel if level.is_battery)
    buses = tuple(BusLevel) if model.spec.bus.enabled else (BusLevel.LOW,)
    return batteries, buses


def _levels(levels: Iterable[object]) -> str:
    """Compact set rendering for messages: ``{low,medium}``."""
    return "{" + ",".join(sorted(str(level) for level in levels)) + "}"


def analyze_rules(model: SpecModel) -> List[Finding]:
    table = model.table
    if table is None:
        return []
    findings: List[Finding] = []
    rules = table.rules
    path = "platform.policy.rules"
    # Dead structure in a table the spec author wrote is an error they can
    # fix; the library's verbatim Table 1 is analyzed too (its row 6 really
    # is shadowed by rows 1/3 — see the README's "Linting" section), but
    # kept-for-fidelity rows are reported as info, not as a failure of the
    # spec.
    policy = model.spec.policy
    custom = policy is not None and bool(policy.rules)
    dead_severity = Severity.ERROR if custom else Severity.INFO
    fidelity_note = "" if custom else " [library Table 1, kept verbatim]"

    def name(index: int) -> str:
        label = rules[index].label
        return f"rule {index} ({label!r})" if label else f"rule {index}"

    # Identical match sets: the later rule can never fire.
    seen: dict = {}
    duplicate_indices = set()
    for index, rule in enumerate(rules):
        key = (rule.priorities, rule.batteries, rule.temperatures, rule.buses)
        if key in seen:
            first_index, first = seen[key]
            duplicate_indices.add(index)
            if rule.state is not first.state:
                findings.append(Finding(
                    code="RULES-CONTRADICTION",
                    severity=dead_severity,
                    path=f"{path}[{index}]",
                    message=(
                        f"{name(index)} accepts exactly the same inputs as "
                        f"{name(first_index)} but selects {rule.state} instead of "
                        f"{first.state}; first match wins, so it never fires"
                        f"{fidelity_note}"
                    ),
                    suggestion="delete one of the two rules or narrow its match set",
                ))
            else:
                findings.append(Finding(
                    code="RULES-DUPLICATE",
                    severity=Severity.WARN,
                    path=f"{path}[{index}]",
                    message=(
                        f"{name(index)} duplicates {name(first_index)} "
                        f"(same inputs, same state {rule.state})"
                    ),
                    suggestion="delete the redundant rule",
                ))
        else:
            seen[key] = (index, rule)

    shadowed = set(table.unreachable_rules())
    for index in sorted(shadowed):
        if index in duplicate_indices:
            continue  # already reported with the sharper duplicate diagnosis
        findings.append(Finding(
            code="RULES-SHADOWED",
            severity=dead_severity,
            path=f"{path}[{index}]",
            message=(
                f"{name(index)} is unreachable: earlier rules match every "
                f"context it accepts ({rules[index].describe()})"
                f"{fidelity_note}"
            ),
            suggestion="move the rule earlier or delete it",
        ))

    reach = model.reach
    if reach is not None and reach.has_decisions:
        # Trajectory-dead rules: not shadowed by the table, but their whole
        # first-match set lies outside the reachable envelope.  The library
        # table over a narrow platform legitimately has many such rows, so
        # severity follows the custom-vs-library split (warn vs info).
        live = reach.live_rule_indices(table)
        dead_trajectory_severity = Severity.WARN if custom else Severity.INFO
        for index in range(len(rules)):
            if index in live or index in shadowed or index in duplicate_indices:
                continue
            findings.append(Finding(
                code="RULE-DEAD-TRAJECTORY",
                severity=dead_trajectory_severity,
                path=f"{path}[{index}]",
                message=(
                    f"{name(index)} only first-matches contexts outside the "
                    f"reachable envelope (battery {_levels(reach.battery_set)}, "
                    f"temperature {_levels(reach.temperature_set)}, "
                    f"bus {_levels(reach.bus_set)} over the "
                    f"{model.spec.max_time_ms:g} ms horizon); it can never "
                    f"fire on this platform{fidelity_note}"
                ),
                suggestion="widen the platform's horizon/envelope or drop the rule",
            ))

    uncovered = table.uncovered_contexts()
    if uncovered:
        batteries, buses = _feasible(model)
        feasible = [
            context for context in uncovered
            if context.battery in batteries and context.bus in buses
        ]
        infeasible_count = len(uncovered) - len(feasible)
        trajectory_dead: List = []
        if reach is not None and feasible:
            # Sharpen static feasibility with the trajectory envelope: an
            # uncovered context the abstraction proves unreachable cannot
            # raise at runtime, so it is informational, not an error.
            still_feasible = [c for c in feasible if reach.is_reachable(c)]
            trajectory_dead = [c for c in feasible if not reach.is_reachable(c)]
            feasible = still_feasible
        if feasible:
            sample = "; ".join(context.describe() for context in feasible[:4])
            if len(feasible) > 4:
                sample += f"; ... ({len(feasible) - 4} more)"
            findings.append(Finding(
                code="RULES-UNCOVERED",
                severity=Severity.ERROR,
                path=path,
                message=(
                    f"{len(feasible)} reachable context(s) match no rule and "
                    f"would raise at runtime: {sample}"
                ),
                suggestion="append a wildcard fallback rule (all fields null)",
            ))
        if trajectory_dead:
            findings.append(Finding(
                code="RULES-UNCOVERED",
                severity=Severity.INFO,
                path=path,
                message=(
                    f"{len(trajectory_dead)} uncovered context(s) are feasible "
                    "statically but lie outside the reachable trajectory "
                    "envelope for this horizon"
                ),
                suggestion="append a wildcard fallback rule for robustness",
            ))
        if infeasible_count:
            findings.append(Finding(
                code="RULES-UNCOVERED",
                severity=Severity.INFO,
                path=path,
                message=(
                    f"{infeasible_count} context(s) match no rule, but this "
                    "spec's battery/bus model can never produce them"
                ),
                suggestion="append a wildcard fallback rule for robustness",
            ))
    return findings
