"""The determinism self-check: an AST lint over ``src/repro`` itself.

The repo's correctness story leans on bit-identical replay: goldens pin
exact-mode runs, the fuzz oracles compare backends event-for-event, and
the corpus replays byte-stable spec hashes.  All of that dies quietly the
moment simulation code reads a wall clock, draws from the process-global
RNG, or lets float rounding into the integer-femtosecond timeline.  This
module is the static guard for those contracts:

* ``DET-WALLCLOCK`` — calls into ``time.time``/``perf_counter``/... or
  ``datetime.now``-family anywhere under ``src/repro``.  Legitimate uses
  (wall-clock *reporting* in the campaign executor, fuzz harness and
  benchmark plumbing) carry an inline pragma.
* ``DET-RANDOM`` — calls through the module-global ``random.*`` API (or
  ``from random import ...`` of its functions).  Seeded
  ``random.Random(seed)`` instances are the sanctioned source of noise.
* ``DET-FLOAT-TIME`` — arithmetic mixing float literals with femtosecond
  counters (``*_fs`` operands) inside ``sim/`` hot paths, where only
  integer arithmetic keeps the timeline exact.
* ``DET-SET-ORDER`` — iterating a freshly built ``set``/``frozenset``
  (literal, comprehension or call) whose order is interpreter-dependent;
  wrap in ``sorted(...)`` instead.

Suppress a deliberate violation with an inline pragma on the same line::

    started = time.time()  # repro-lint: allow[DET-WALLCLOCK]
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Set

from repro.lint.findings import Finding, LintReport, Severity

__all__ = ["lint_source", "lint_paths", "selfcheck", "default_root"]

#: wall-clock readers of the ``time`` module
_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})
#: wall-clock constructors of ``datetime.datetime`` / ``datetime.date``
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
#: ``random`` attributes that are fine: seeded generator classes
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9,\s-]+)\]")


def _suppressed(lines: List[str], lineno: int, code: str) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    match = _PRAGMA.search(lines[lineno - 1])
    if not match:
        return False
    allowed = {token.strip() for token in match.group(1).split(",")}
    return code in allowed


def _is_fs_operand(node: ast.AST) -> bool:
    """A name/attribute that carries raw femtoseconds by convention."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name.endswith("_fs") or name == "femtoseconds"


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, lines: List[str], in_sim: bool) -> None:
        self.relpath = relpath
        self.lines = lines
        self.in_sim = in_sim
        self.findings: List[Finding] = []
        #: local names bound to the time / datetime / random modules
        self.time_aliases: Set[str] = set()
        self.datetime_module_aliases: Set[str] = set()
        self.datetime_class_aliases: Set[str] = set()
        self.random_aliases: Set[str] = set()
        #: names imported straight from `time` that read the wall clock
        self.wallclock_names: Set[str] = set()

    # -- reporting -----------------------------------------------------
    def _report(self, code: str, severity: Severity, lineno: int,
                message: str, suggestion: str = "") -> None:
        if _suppressed(self.lines, lineno, code):
            return
        self.findings.append(Finding(
            code=code,
            severity=severity,
            path=f"{self.relpath}:{lineno}",
            message=message,
            suggestion=suggestion,
        ))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_module_aliases.add(bound)
            elif alias.name == "random":
                self.random_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self.wallclock_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_class_aliases.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_ALLOWED:
                    self._report(
                        "DET-RANDOM", Severity.ERROR, node.lineno,
                        f"'from random import {alias.name}' pulls in the "
                        "process-global RNG",
                        "use a seeded random.Random instance",
                    )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (isinstance(value, ast.Name) and value.id in self.time_aliases
                    and func.attr in _TIME_FUNCS):
                self._report(
                    "DET-WALLCLOCK", Severity.ERROR, node.lineno,
                    f"wall-clock call time.{func.attr}()",
                    "derive time from the kernel (or pragma a reporting-only use)",
                )
            elif func.attr in _DATETIME_FUNCS and self._is_datetime_owner(value):
                self._report(
                    "DET-WALLCLOCK", Severity.ERROR, node.lineno,
                    f"wall-clock call datetime {func.attr}()",
                    "derive time from the kernel (or pragma a reporting-only use)",
                )
            elif (isinstance(value, ast.Name) and value.id in self.random_aliases
                    and func.attr not in _RANDOM_ALLOWED):
                self._report(
                    "DET-RANDOM", Severity.ERROR, node.lineno,
                    f"module-global random.{func.attr}() is unseeded",
                    "use a seeded random.Random instance",
                )
        elif isinstance(func, ast.Name) and func.id in self.wallclock_names:
            self._report(
                "DET-WALLCLOCK", Severity.ERROR, node.lineno,
                f"wall-clock call {func.id}()",
                "derive time from the kernel (or pragma a reporting-only use)",
            )
        self.generic_visit(node)

    def _is_datetime_owner(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id in self.datetime_class_aliases
        return (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in self.datetime_module_aliases
                and value.attr in ("datetime", "date"))

    # -- float/time arithmetic in sim/ ---------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_sim and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            for literal, other in ((node.left, node.right), (node.right, node.left)):
                if (isinstance(literal, ast.Constant)
                        and isinstance(literal.value, float)
                        and _is_fs_operand(other)):
                    self._report(
                        "DET-FLOAT-TIME", Severity.ERROR, node.lineno,
                        "float arithmetic against a femtosecond counter; the "
                        "timeline is integer femtoseconds",
                        "keep fs math integral (int factors, // division)",
                    )
                    break
        self.generic_visit(node)

    # -- set-order iteration -------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        unordered = isinstance(iter_node, (ast.Set, ast.SetComp)) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )
        if unordered:
            self._report(
                "DET-SET-ORDER", Severity.WARN, iter_node.lineno,
                "iteration over a freshly built set; its order is "
                "interpreter-dependent",
                "wrap the set in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: "ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp"
    ) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _in_sim(relpath: str) -> bool:
    parts = Path(relpath).parts
    return "sim" in parts


def lint_source(source: str, relpath: str) -> List[Finding]:
    """Lint one file's source text; ``relpath`` scopes the sim/-only rules."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:  # pragma: no cover - tree is CI-parsed anyway
        return [Finding(
            code="DET-WALLCLOCK",
            severity=Severity.ERROR,
            path=f"{relpath}:{error.lineno or 0}",
            message=f"file does not parse: {error.msg}",
        )]
    visitor = _DeterminismVisitor(relpath, source.splitlines(), _in_sim(relpath))
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: f.path)


def default_root() -> Path:
    """The installed ``repro`` package directory (what ``--self`` lints)."""
    return Path(__file__).resolve().parent.parent


def lint_paths(paths: Optional[Iterable[Path]] = None) -> List[Finding]:
    """Lint every ``*.py`` under the given files/directories (default:
    the installed ``repro`` package)."""
    roots = [Path(p) for p in paths] if paths is not None else [default_root()]
    findings: List[Finding] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        base = root if root.is_dir() else root.parent
        for file in files:
            relpath = str(Path(base.name) / file.relative_to(base))
            findings.extend(
                lint_source(file.read_text(encoding="utf-8"), relpath)
            )
    return findings


def selfcheck(paths: Optional[Iterable[Path]] = None) -> LintReport:
    """The ``repro-dpm lint --self`` entry point."""
    report = LintReport(subject="repro determinism self-check")
    report.extend(lint_paths(paths))
    return report
