"""The spec lint driver: build the model once, run the five analyzers."""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.lint.bus import analyze_bus
from repro.lint.findings import Finding, LintReport
from repro.lint.model import SpecModel, build_model
from repro.lint.policy import analyze_policy
from repro.lint.psm import analyze_psm
from repro.lint.rules import analyze_rules
from repro.lint.workload import analyze_workload
from repro.platform.spec import PlatformSpec

__all__ = ["ANALYZERS", "lint_spec"]

#: The analyzers in reporting order (rule table first: it decides policy).
ANALYZERS: Tuple[Callable[[SpecModel], List[Finding]], ...] = (
    analyze_rules,
    analyze_psm,
    analyze_policy,
    analyze_bus,
    analyze_workload,
)


def lint_spec(spec: PlatformSpec, reach: bool = False) -> LintReport:
    """Run every spec analyzer over one (already validated) platform.

    With ``reach=True`` the trajectory-reachability envelope is computed
    first (:func:`repro.lint.reach.compute_reach`) and attached to the
    model, making the rules/psm/policy analyzers trajectory-aware.
    """
    model = build_model(spec)
    if reach:
        from repro.lint.reach import compute_reach

        model.reach = compute_reach(model)
    report = LintReport(subject=spec.name)
    for analyze in ANALYZERS:
        report.extend(analyze(model))
    return report
