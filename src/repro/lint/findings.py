"""The typed findings model shared by every analyzer.

A :class:`Finding` is one diagnostic: a stable ``code`` (documented in the
README's "Linting" section and in :data:`CODES`), a :class:`Severity`, the
dotted path into the spec tree (or ``file:line`` for the determinism
self-check), a human message and — where the fix is mechanical — a
suggestion.  Analyzers return plain lists of findings; :class:`LintReport`
aggregates them, orders them most-severe-first and maps them onto the CLI
exit-code contract (0 clean / 1 findings / 2 bad input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

__all__ = ["CODES", "Finding", "LintReport", "Severity"]


class Severity(Enum):
    """Finding severity, ordered ``error > warn > info``."""

    ERROR = "error"
    WARN = "warn"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering helper: ERROR=2, WARN=1, INFO=0."""
        return {"error": 2, "warn": 1, "info": 0}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Every code an analyzer may emit, with its one-line documentation.  The
#: README table is generated from the same text; tests assert that every
#: emitted finding uses a registered code.
CODES: Dict[str, str] = {
    # -- rules analyzer ---------------------------------------------------
    "RULES-SHADOWED": "rule is unreachable: earlier rules match every input it accepts",
    "RULES-CONTRADICTION": "two rules accept identical inputs but select different states",
    "RULES-DUPLICATE": "two rules accept identical inputs and select the same state",
    "RULES-UNCOVERED": "no rule matches part of the priority x battery x temperature x bus lattice",
    "RULE-DEAD-TRAJECTORY": "rule only matches contexts outside the reachable trajectory envelope",
    # -- psm analyzer -----------------------------------------------------
    "PSM-UNREACHABLE": "low-power state has no entry transition from any ON state",
    "PSM-NO-WAKE": "low-power state is absorbing: no wake transition back to any ON state",
    "PSM-SLEEP-POWER": "sleep-state residual power >= idle power, the state can never break even",
    "PSM-BREAK-EVEN": "break-even time exceeds the platform's whole simulated horizon",
    "PSM-BREAK-EVEN-IDLE": "break-even time exceeds the workload's largest idle gap",
    # -- policy analyzer --------------------------------------------------
    "POLICY-TIMEOUT": "fixed timeout is below the IP's minimum break-even time",
    "POLICY-GEM-INERT": "GEM battery thresholds can never trigger given the battery model",
    "POLICY-STATE-UNKNOWN": "policy names a sleep state the IP's transition table cannot reach",
    "POLICY-GEM-UNREACHABLE": "GEM gating levels lie outside the reachable battery/thermal envelope",
    # -- bus analyzer -----------------------------------------------------
    "BUS-SATURATED": "aggregate workload traffic exceeds the bus bandwidth",
    "BUS-HOT": "aggregate workload traffic exceeds 80% of the bus bandwidth",
    "BUS-CA-DIVISIBILITY": "cycle-accurate transfer sizes are not multiples of words_per_cycle",
    "BUS-UNUSED": "bus is enabled but no IP generates any bus traffic",
    # -- workload analyzer ------------------------------------------------
    "WORKLOAD-UNFINISHABLE": "workload cannot finish inside max_time_ms even at full speed",
    "WORKLOAD-EMPTY-TASK": "explicit workload item has zero (or negative) cycles",
    "WORKLOAD-NEVER-IDLE": "workload has no idle time at all, DPM can never act",
    # -- determinism self-check (repro-dpm lint --self) -------------------
    "DET-WALLCLOCK": "wall-clock call in simulation code (breaks bit-identical replay)",
    "DET-RANDOM": "module-level random.* call (unseeded; use a seeded random.Random)",
    "DET-FLOAT-TIME": "raw float arithmetic against femtosecond time in sim/ hot paths",
    "DET-SET-ORDER": "iteration over an unordered set where order may reach the kernel",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analyzer."""

    code: str
    severity: Severity
    path: str
    message: str
    suggestion: str = ""

    def describe(self) -> str:
        """One-line rendering: ``severity CODE path: message (suggestion)``."""
        line = f"{self.severity.value:<5} {self.code:<22} {self.path}: {self.message}"
        if self.suggestion:
            line += f" ({self.suggestion})"
        return line

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the fuzz-corpus lint sidecars)."""
        data = {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "message": self.message,
        }
        if self.suggestion:
            data["suggestion"] = self.suggestion
        return data


@dataclass
class LintReport:
    """All findings for one lint subject, plus the exit-code mapping."""

    subject: str
    findings: List[Finding] = field(default_factory=list)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> List[Finding]:
        """Most severe first; stable within a severity (analyzer order)."""
        return sorted(self.findings, key=lambda f: -f.severity.rank)

    def count(self, severity: Severity) -> int:
        return sum(1 for finding in self.findings if finding.severity is severity)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def worst(self) -> Optional[Severity]:
        """The highest severity present, or ``None`` when clean."""
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def is_clean(self, strict: bool = False) -> bool:
        """Exit-code contract: errors/warnings always fail; ``strict``
        additionally fails on info-level findings."""
        worst = self.worst
        if worst is None:
            return True
        if strict:
            return False
        return worst is Severity.INFO

    def describe(self) -> str:
        """Multi-line report: subject header, findings, summary line."""
        lines = [f"{self.subject}:"]
        for finding in self.sorted():
            lines.append(f"  {finding.describe()}")
        if not self.findings:
            lines.append("  clean")
        else:
            lines.append(
                "  -- {} error(s), {} warning(s), {} info".format(
                    self.count(Severity.ERROR),
                    self.count(Severity.WARN),
                    self.count(Severity.INFO),
                )
            )
        return "\n".join(lines)
