"""Policy analyzer: knobs that defeat the power manager they configure.

* ``POLICY-TIMEOUT`` — a ``fixed-timeout`` policy whose timeout is below
  the break-even time of the state it sleeps into.  On every idle period
  between the timeout and the break-even time, sleeping *loses* energy
  versus staying idle; the paper's 2-competitive choice is timeout ==
  break-even time.
* ``POLICY-GEM-INERT`` — the GEM is enabled but the platform runs on AC
  power: the battery level is pinned to ``ac_power``, which the GEM's
  battery thresholds classify as unlimited, so its battery-driven gating
  can never trigger.
* ``POLICY-STATE-UNKNOWN`` — the policy (defer state, GEM forced state,
  the fixed-timeout sleep state, or a selection rule) names a low-power
  state some IP's transition table cannot enter from ON1; the command
  would fault or be ignored at runtime.
* ``POLICY-GEM-UNREACHABLE`` — only with a trajectory envelope attached
  (``lint --reach``): the GEM is enabled on battery power, but neither a
  poor battery level (empty/low) nor a high temperature is inside the
  reachable envelope for this horizon, so the GEM can never gate anything
  — a softer, trajectory-aware sibling of ``POLICY-GEM-INERT``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.battery.status import BatteryLevel
from repro.lint.findings import Finding, Severity
from repro.lint.model import IpModel, SpecModel
from repro.power.states import PowerState
from repro.sim.simtime import ms
from repro.thermal.level import TemperatureLevel

__all__ = ["analyze_policy"]

#: The sleep state DpmSetup.fixed_timeout() uses (repro.dpm.policies).
_FIXED_TIMEOUT_SLEEP = PowerState.SL2
#: Its default timeout (ms) when the spec leaves timeout_ms unset.
_FIXED_TIMEOUT_DEFAULT_MS = 2.0


def _entry_states(ip_model: IpModel) -> Set[PowerState]:
    """Low-power states the IP can actually enter from some ON state."""
    return {
        target
        for source, target in ip_model.transitions.transitions
        if source.is_on and (target.is_sleep or target.is_off)
    }


def _check_timeout(model: SpecModel) -> List[Finding]:
    policy = model.spec.policy
    if policy is None or policy.name != "fixed-timeout":
        return []
    timeout = ms(policy.timeout_ms if policy.timeout_ms is not None
                 else _FIXED_TIMEOUT_DEFAULT_MS)
    findings: List[Finding] = []
    for ip_model in model.ips:
        if ip_model.breakeven is None:
            continue
        entry = ip_model.breakeven.entry(_FIXED_TIMEOUT_SLEEP) \
            if _FIXED_TIMEOUT_SLEEP in ip_model.complete_states else None
        candidates = [entry] if entry is not None else ip_model.breakeven.entries
        thresholds = [e.break_even for e in candidates if e.break_even is not None]
        if not thresholds:
            continue
        minimum = min(thresholds)
        if timeout < minimum:
            findings.append(Finding(
                code="POLICY-TIMEOUT",
                severity=Severity.WARN,
                path="platform.policy.timeout_ms",
                message=(
                    f"timeout {timeout.seconds * 1e3:g} ms is below the minimum "
                    f"break-even time {minimum.seconds * 1e6:.3g} us of IP "
                    f"{ip_model.ip.name!r}; idle periods between the two make "
                    "sleeping a net energy loss"
                ),
                suggestion="set timeout_ms to at least the break-even time",
            ))
    return findings


def _check_gem(model: SpecModel) -> List[Finding]:
    spec = model.spec
    if not spec.gem.enabled or not spec.battery.on_ac_power:
        return []
    return [Finding(
        code="POLICY-GEM-INERT",
        severity=Severity.WARN,
        path="platform.gem",
        message=(
            "the GEM is enabled but the platform is on AC power: the battery "
            "level is pinned to 'ac_power', so the GEM's battery thresholds "
            "can never trigger (only thermal gating remains)"
        ),
        suggestion="disable the GEM or drop battery.on_ac_power",
    )]


def _check_gem_reach(model: SpecModel) -> List[Finding]:
    spec = model.spec
    reach = model.reach
    if reach is None or not spec.gem.enabled or spec.battery.on_ac_power:
        return []
    # The GEM gates on a poor battery (empty/low) or a high temperature
    # (repro.dpm.gem._BATTERY_POOR / _TEMPERATURE_OK).  The envelope already
    # over-approximates anything the run can present, so an empty
    # intersection proves the GEM inert on this platform and horizon.
    poor_battery = {BatteryLevel.EMPTY, BatteryLevel.LOW} & set(reach.battery_set)
    high_temperature = TemperatureLevel.HIGH in reach.temperature_set
    if poor_battery or high_temperature:
        return []
    return [Finding(
        code="POLICY-GEM-UNREACHABLE",
        severity=Severity.INFO,
        path="platform.gem",
        message=(
            "the GEM is enabled, but the reachable envelope over the "
            f"{spec.max_time_ms:g} ms horizon contains neither a poor "
            "battery level (empty/low) nor a high temperature; its gating "
            "can never trigger on this platform"
        ),
        suggestion="disable the GEM or lengthen the horizon",
    )]


def _referenced_states(model: SpecModel) -> List[Tuple[str, PowerState]]:
    """(spec path, low-power state) pairs the configuration commands."""
    referenced: List[Tuple[str, PowerState]] = []
    policy = model.spec.policy
    if policy is not None:
        if policy.defer_state is not None:
            referenced.append(("platform.policy.defer_state",
                               PowerState(policy.defer_state)))
        if policy.name == "fixed-timeout":
            referenced.append(("platform.policy", _FIXED_TIMEOUT_SLEEP))
    if model.spec.gem.enabled and model.spec.gem.forced_state is not None:
        referenced.append(("platform.gem.forced_state",
                           PowerState(model.spec.gem.forced_state)))
    if model.table is not None:
        for index, rule in enumerate(model.table.rules):
            if rule.state.is_sleep:
                referenced.append((f"platform.policy.rules[{index}]", rule.state))
    return referenced


def _check_referenced_states(model: SpecModel) -> List[Finding]:
    findings: List[Finding] = []
    reported: Set[Tuple[str, PowerState, str]] = set()
    for path, state in _referenced_states(model):
        for ip_model in model.ips:
            if state in _entry_states(ip_model):
                continue
            key = (path, state, ip_model.ip.name)
            if key in reported:
                continue
            reported.add(key)
            findings.append(Finding(
                code="POLICY-STATE-UNKNOWN",
                severity=Severity.WARN,
                path=path,
                message=(
                    f"names {state}, but IP {ip_model.ip.name!r} has no "
                    f"transition into {state} from any ON state"
                ),
                suggestion="add the entry transition or pick another state",
            ))
    return findings


def analyze_policy(model: SpecModel) -> List[Finding]:
    findings = _check_timeout(model)
    findings.extend(_check_gem(model))
    findings.extend(_check_gem_reach(model))
    findings.extend(_check_referenced_states(model))
    return findings
