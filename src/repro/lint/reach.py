"""Trajectory reachability: interval abstract interpretation of a spec.

PR 9's analyzers decided feasibility statically ("on-AC platforms never
present battery levels"), so a platform whose battery starts full was still
assumed able to reach ``empty`` contexts it cannot possibly hit inside its
horizon.  This module runs the classic fix: an abstract interpretation of
the spec's *own* power model — the same characterisation, transition table,
battery and thermal closed forms the simulator executes — propagating
interval envelopes for the battery state of charge and the die temperature
over the workload horizon, and quantising them into the set of reachable
``(priority, battery, temperature, bus)`` rule contexts with entry-time
bounds.

Soundness (an over-approximation of anything a traced run can observe — the
dynamic cross-check in :mod:`repro.experiments.lint_crosscheck` enforces
exactly this) rests on a few worst-case arguments, kept deliberately
coarse:

* **Sustained power ceiling.**  At any instant an IP either executes (at
  most the highest active power over its resident ON states and workload
  instruction classes) or idles (at most the highest idle/residual power
  over its forward-reachable states), so instantaneous background power is
  bounded by the max of the two, plus the fan.  Transition energies are
  booked by the PSM as point deposits; because transitions serialise
  through their latencies, their long-run rate is bounded by the largest
  single ``energy/latency`` ratio (mediant inequality), with one extra
  whole-transition deposit as a boundary term.  A zero-latency transition
  with positive energy makes the rate unbounded, and the envelope honestly
  degrades to the trivial bound (recorded in ``assumptions``).
* **Battery.**  Runs never recharge, so the observable state of charge
  lives in ``[floor(t), soc0]`` where ``floor`` drains at the ceiling rate
  scaled by the worst-window Peukert factor (the factor is monotone in
  window power; the mid-run monitor only ever drains whole sample windows —
  the sub-interval final flush happens after the last decision).  LEM
  decisions see a *projected* level (``level_if_drawn`` of the candidate
  task's estimate plus the GEM's pending energies), covered by widening the
  floor with each IP's worst-case projection slack.
* **Temperature.**  The RC model relaxes toward ``ambient + P * R``; by the
  ODE comparison lemma the no-fan resistance with ceiling power bounds any
  fan schedule from above (the die never cools below ambient), and the
  fan-scaled resistance with zero power bounds it from below.  Point
  deposits ripple the trajectory by at most ``E / C_th``.  Decisions see
  ``estimate_after`` projections, bounded by the projected steady state at
  the worst projected power (other-IP pending energy amortised over the
  shortest own-task duration).
* **Bus.**  ``recent_occupancy`` divides by ``min(elapsed, window)``, so
  while any transfer is in flight the quantised level can transiently reach
  saturation regardless of average traffic: with traffic, all three levels
  are reachable from t=0; without traffic (or without a bus) only ``LOW``.

The context set feeds back into itself through rule selection: which ON
states the table can pick determines the power ceiling determines the
envelope determines which rules can fire.  :func:`compute_reach` runs this
as a downward Kleene iteration from the top (all forward-reachable ON
states resident), intersecting each refinement so the iterates decrease —
every iterate over-approximates the concrete system, so stopping at the
:data:`WIDEN_LIMIT` cap merely loses precision, never soundness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.battery.model import BatteryConfig
from repro.battery.status import BatteryLevel
from repro.dpm.levels import RuleContext
from repro.dpm.rules import RuleTable
from repro.lint.intervals import Interval, exp_crossing_time, exp_value, linear_crossing_time
from repro.lint.model import IpModel, SpecModel
from repro.platform.build import build_battery_config, build_thermal_config
from repro.power.characterization import InstructionClass
from repro.power.states import ON_STATES, PowerState
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel
from repro.thermal.model import ThermalConfig

__all__ = ["IpReach", "LevelSpan", "ReachResult", "compute_reach"]

#: Fixpoint iteration cap.  The resident-state lattice per IP has at most
#: four ON states, so genuine convergence needs at most a handful of steps;
#: hitting the cap only costs precision (``converged`` goes False).
WIDEN_LIMIT = 8

_BATTERY_ORDER: Tuple[BatteryLevel, ...] = (
    BatteryLevel.EMPTY, BatteryLevel.LOW, BatteryLevel.MEDIUM,
    BatteryLevel.HIGH, BatteryLevel.FULL,
)
_TEMPERATURE_ORDER: Tuple[TemperatureLevel, ...] = (
    TemperatureLevel.LOW, TemperatureLevel.MEDIUM, TemperatureLevel.HIGH,
)


@dataclass(frozen=True)
class LevelSpan:
    """One reachable quantised level with a sound earliest-entry bound."""

    level: object
    earliest_s: float

    def describe(self) -> str:
        if self.earliest_s <= 0.0:
            return f"{self.level}@0"
        return f"{self.level}@{self.earliest_s * 1e3:.3g}ms"


@dataclass(frozen=True)
class IpReach:
    """Per-IP reachable envelope (decision contexts this IP can present)."""

    index: int
    name: str
    #: priorities this IP's tasks can present (empty: the IP never decides)
    priorities: Tuple[TaskPriority, ...]
    resident_states: Tuple[PowerState, ...]
    soc: Interval
    temperature_c: Interval
    battery_levels: Tuple[LevelSpan, ...]
    temperature_levels: Tuple[LevelSpan, ...]
    #: worst-case projection slack a decision adds on top of the raw SoC (J)
    projection_slack_j: float
    #: largest single idle gap in the workload (s); None when unknown
    max_idle_gap_s: Optional[float]

    @property
    def battery_set(self) -> FrozenSet[BatteryLevel]:
        return frozenset(span.level for span in self.battery_levels)

    @property
    def temperature_set(self) -> FrozenSet[TemperatureLevel]:
        return frozenset(span.level for span in self.temperature_levels)


@dataclass(frozen=True)
class ReachResult:
    """The platform's reachable context set with entry-time bounds."""

    subject: str
    horizon_s: float
    #: sustained background power bounds over the platform (W)
    power_w: Interval
    #: worst single-sample-window average power (drives the Peukert factor)
    window_power_w: float
    #: observable (projection-widened) SoC envelope over the horizon
    soc: Interval
    #: raw run SoC envelope (no projection slack) — what the GEM polls
    run_soc: Interval
    temperature_c: Interval
    run_temperature_c: Interval
    battery_levels: Tuple[LevelSpan, ...]
    temperature_levels: Tuple[LevelSpan, ...]
    bus_levels: Tuple[LevelSpan, ...]
    ips: Tuple[IpReach, ...]
    #: upper bound on the GEM's pending other-IP energy a context can carry
    other_energy_bound_j: float
    iterations: int
    converged: bool
    assumptions: Tuple[str, ...]

    # -- set views -----------------------------------------------------------
    @property
    def battery_set(self) -> FrozenSet[BatteryLevel]:
        return frozenset(span.level for span in self.battery_levels)

    @property
    def temperature_set(self) -> FrozenSet[TemperatureLevel]:
        return frozenset(span.level for span in self.temperature_levels)

    @property
    def bus_set(self) -> FrozenSet[BusLevel]:
        return frozenset(span.level for span in self.bus_levels)

    @property
    def priority_set(self) -> FrozenSet[TaskPriority]:
        return frozenset(p for ip in self.ips for p in ip.priorities)

    @property
    def has_decisions(self) -> bool:
        """True when at least one IP can present a decision context at all."""
        return any(ip.priorities for ip in self.ips)

    # -- queries -------------------------------------------------------------
    def is_reachable(self, context: RuleContext, ip_index: Optional[int] = None) -> bool:
        """Can ``context`` be presented to the rule table (by ``ip_index``)?

        With no ``ip_index`` the union over all IPs is used.  The context's
        ``other_ip_energy_j`` is checked against the GEM pending-energy
        bound (with a small relative tolerance for float accumulation).
        """
        bound = self.other_energy_bound_j
        if context.other_ip_energy_j > bound * (1.0 + 1e-9) + 1e-12:
            return False
        if context.bus not in self.bus_set:
            return False
        if ip_index is not None:
            candidates: Sequence[IpReach] = [self.ips[ip_index]]
        else:
            candidates = self.ips
        return any(
            context.priority in ip.priorities
            and context.battery in ip.battery_set
            and context.temperature in ip.temperature_set
            for ip in candidates
        )

    def live_rule_indices(self, table: RuleTable) -> FrozenSet[int]:
        """Rule indices that first-match at least one reachable context."""
        live: Set[int] = set()
        bus_levels = sorted(self.bus_set, key=lambda l: l.value)
        for ip in self.ips:
            for priority in ip.priorities:
                for battery in sorted(ip.battery_set, key=lambda l: l.rank):
                    for temperature in sorted(ip.temperature_set, key=lambda l: l.rank):
                        for bus in bus_levels:
                            context = RuleContext(priority, battery, temperature, bus=bus)
                            index = table.first_match_index(context)
                            if index is not None:
                                live.add(index)
        return frozenset(live)

    def selected_on_states(self, table: RuleTable) -> FrozenSet[PowerState]:
        """ON states the table can select over the reachable context set."""
        rules = table.rules
        return frozenset(
            rules[index].state for index in self.live_rule_indices(table)
            if rules[index].state.is_on
        )

    # -- report --------------------------------------------------------------
    def describe(self) -> str:
        """Printable per-IP envelope timeline (the ``repro-dpm reach`` report)."""
        lines = [f"reach: {self.subject} (horizon {self.horizon_s:g} s)"]
        lines.append(
            f"  power     {self.power_w.lo:.4g}..{self.power_w.hi:.4g} W sustained"
            f", worst sample window {self.window_power_w:.4g} W"
        )
        lines.append(
            f"  battery   soc {self.soc.lo:.3f}..{self.soc.hi:.3f}"
            f" (run {self.run_soc.lo:.3f}..{self.run_soc.hi:.3f}): "
            + " ".join(span.describe() for span in self.battery_levels)
        )
        lines.append(
            f"  thermal   {self.temperature_c.lo:.1f}..{self.temperature_c.hi:.1f} C"
            f" (run {self.run_temperature_c.lo:.1f}..{self.run_temperature_c.hi:.1f} C): "
            + " ".join(span.describe() for span in self.temperature_levels)
        )
        lines.append(
            "  bus       " + " ".join(span.describe() for span in self.bus_levels)
        )
        for ip in self.ips:
            prios = ",".join(str(p) for p in ip.priorities) or "(no tasks: never decides)"
            lines.append(f"  ip[{ip.index}] {ip.name}:")
            lines.append(f"    priorities {prios}")
            lines.append(
                "    resident   " + ",".join(str(s) for s in ip.resident_states)
            )
            lines.append(
                f"    battery    soc {ip.soc.lo:.3f}..{ip.soc.hi:.3f}"
                f" (slack {ip.projection_slack_j:.3g} J): "
                + " ".join(span.describe() for span in ip.battery_levels)
            )
            lines.append(
                f"    thermal    {ip.temperature_c.lo:.1f}..{ip.temperature_c.hi:.1f} C: "
                + " ".join(span.describe() for span in ip.temperature_levels)
            )
            if ip.max_idle_gap_s is not None:
                lines.append(f"    idle gap   <= {ip.max_idle_gap_s:g} s")
        status = "fixpoint" if self.converged else "widening cap hit (coarse but sound)"
        lines.append(f"  iterations {self.iterations} ({status})")
        for note in self.assumptions:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-IP static bounds (independent of the resident-state fixpoint).
# ---------------------------------------------------------------------------

@dataclass
class _IpStatics:
    ip_model: IpModel
    initial: PowerState
    forward: Set[PowerState]          # forward-reachable PSM states
    on_states: Tuple[PowerState, ...]  # forward-reachable ON states
    classes: Tuple[InstructionClass, ...]
    priorities: Tuple[TaskPriority, ...]
    has_tasks: bool
    workload_known: bool
    max_task_energy_j: float      # ceiling estimate of one task (ON1)
    min_task_duration_s: float    # shortest own-task estimate duration
    max_task_duration_s: float    # longest own-task estimate duration
    max_idle_gap_s: Optional[float]
    trans_rate_w: float           # sustained transition-energy rate bound
    trans_rate_unbounded: bool
    max_trans_energy_j: float     # largest single transition deposit
    has_bus_traffic: bool


def _build_statics(ip_model: IpModel, notes: List[str]) -> _IpStatics:
    char = ip_model.characterization
    pairs = list(ip_model.transitions.transitions)
    graph: Dict[PowerState, Set[PowerState]] = {}
    for source, target in pairs:
        graph.setdefault(source, set()).add(target)
    initial = PowerState(ip_model.ip.initial_state)
    forward = {initial}
    frontier = [initial]
    while frontier:
        node = frontier.pop()
        for successor in graph.get(node, ()):
            if successor not in forward:
                forward.add(successor)
                frontier.append(successor)
    on_states = tuple(s for s in ON_STATES if s in forward)

    workload = ip_model.workload
    workload_known = workload is not None
    tasks = list(workload.items) if workload is not None else []
    has_tasks = bool(tasks) or not workload_known
    if workload is not None:
        classes = tuple(sorted(
            {item.task.instruction_class for item in tasks}, key=lambda c: c.value,
        )) or ()
        priorities = tuple(sorted(
            {item.task.priority for item in tasks}, key=lambda p: p.value,
        ))
        max_idle_gap_s: Optional[float] = max(
            (item.idle_after.seconds for item in tasks), default=0.0,
        )
    else:
        # The workload failed to instantiate; assume the worst on every axis.
        classes = tuple(InstructionClass)
        priorities = tuple(TaskPriority)
        max_idle_gap_s = None
        notes.append(
            f"{ip_model.path}: workload uninstantiable "
            f"({ip_model.workload_error}); assuming worst-case tasks"
        )

    f_on1 = ip_model.max_frequency_hz
    f_min = min(
        char.operating_points.point(state).frequency_hz for state in ON_STATES
    )
    if workload is not None and tasks:
        # Task estimates use the policy's estimation state; ON1 has the
        # highest voltage (max energy/cycle) and frequency (min duration),
        # making these ceilings valid for any estimation-state override.
        max_task_energy_j = max(
            char.task_energy_j(PowerState.ON1, item.task.cycles, item.task.instruction_class)
            for item in tasks
        )
        min_task_duration_s = min(item.task.cycles for item in tasks) / f_on1
        max_task_duration_s = max(item.task.cycles for item in tasks) / f_min
    elif workload is not None:  # instantiated but empty: the IP never decides
        max_task_energy_j = 0.0
        min_task_duration_s = math.inf
        max_task_duration_s = 0.0
    else:  # unknown workload: no finite ceilings exist
        max_task_energy_j = math.inf
        min_task_duration_s = 0.0
        max_task_duration_s = math.inf

    trans_rate_w = 0.0
    trans_rate_unbounded = False
    max_trans_energy_j = 0.0
    for source, target in pairs:
        if source not in forward:
            continue
        cost = ip_model.transitions.cost(source, target)
        energy = cost.energy_j
        if energy <= 0.0:
            continue
        max_trans_energy_j = max(max_trans_energy_j, energy)
        latency_s = cost.latency.seconds
        if latency_s <= 0.0:
            trans_rate_unbounded = True
            notes.append(
                f"{ip_model.path}: transition {source}->{target} has positive "
                "energy at zero latency; transition power is unbounded"
            )
        else:
            trans_rate_w = max(trans_rate_w, energy / latency_s)

    traffic = ip_model.ip.bus_words_per_task > 0 and has_tasks
    return _IpStatics(
        ip_model=ip_model,
        initial=initial,
        forward=forward,
        on_states=on_states,
        classes=classes,
        priorities=priorities if has_tasks else (),
        has_tasks=has_tasks,
        workload_known=workload_known,
        max_task_energy_j=max_task_energy_j,
        min_task_duration_s=min_task_duration_s,
        max_task_duration_s=max_task_duration_s,
        max_idle_gap_s=max_idle_gap_s,
        trans_rate_w=trans_rate_w,
        trans_rate_unbounded=trans_rate_unbounded,
        max_trans_energy_j=max_trans_energy_j,
        has_bus_traffic=traffic,
    )


def _ip_power_bounds(statics: _IpStatics, resident: Set[PowerState]) -> Tuple[float, float]:
    """(min, max) sustained background power of one IP over its resident set."""
    char = statics.ip_model.characterization
    active_max = 0.0
    if statics.has_tasks:
        for state in statics.on_states:
            if state not in resident:
                continue
            for iclass in statics.classes or tuple(InstructionClass):
                active_max = max(active_max, char.active_power_w(state, iclass))
    idle_values = []
    for state in statics.forward:
        if state.is_on:
            # Idle power counts for every forward-reachable ON state, not
            # just table-selected ones: wake transitions land in ON1 and the
            # IP idles there until the next decision.
            idle_values.append(char.idle_power_w(state))
        else:
            idle_values.append(char.residual_power_w(state))
    idle_max = max(idle_values, default=0.0)
    idle_min = min(idle_values, default=0.0)
    return idle_min, max(active_max, idle_max)


# ---------------------------------------------------------------------------
# Envelope closed forms.
# ---------------------------------------------------------------------------

def _battery_envelope(
    cfg: BatteryConfig,
    horizon_s: float,
    drain_rate_w: float,
    boundary_j: float,
    unbounded: bool,
    slack_j: float,
) -> Tuple[Interval, Tuple[LevelSpan, ...]]:
    """Observable SoC envelope and quantised level set for one slack value."""
    thresholds = cfg.thresholds
    soc0 = min(max(cfg.initial_state_of_charge, 0.0), 1.0)
    if cfg.on_ac_power:
        return Interval.point(soc0), (LevelSpan(BatteryLevel.AC_POWER, 0.0),)
    capacity = cfg.capacity_j
    if unbounded or not math.isfinite(slack_j):
        lo = 0.0
    else:
        drained = drain_rate_w * horizon_s + boundary_j + slack_j
        lo = min(max(soc0 - drained / capacity, 0.0), soc0)
    envelope = Interval(lo, soc0)
    top = thresholds.classify(soc0)
    bottom = thresholds.classify(lo)
    spans: List[LevelSpan] = []
    upper_bounds = {
        BatteryLevel.EMPTY: thresholds.empty,
        BatteryLevel.LOW: thresholds.low,
        BatteryLevel.MEDIUM: thresholds.medium,
        BatteryLevel.HIGH: thresholds.high,
    }
    for level in reversed(_BATTERY_ORDER):
        if not bottom.rank <= level.rank <= top.rank:
            continue
        if level is top:
            spans.append(LevelSpan(level, 0.0))
            continue
        # Entering `level` from above means the projected SoC dropping below
        # the level's upper threshold; projections (slack) and the boundary
        # deposit apply from t=0.
        if unbounded or not math.isfinite(slack_j):
            spans.append(LevelSpan(level, 0.0))
            continue
        start = soc0 - (boundary_j + slack_j) / capacity
        crossing = linear_crossing_time(
            start, -drain_rate_w / capacity, upper_bounds[level],
        )
        entry = 0.0 if crossing is None else min(crossing, horizon_s)
        spans.append(LevelSpan(level, entry))
    spans.reverse()
    return envelope, tuple(spans)


def _temperature_envelope(
    cfg: ThermalConfig,
    horizon_s: float,
    power_hi_w: float,
    boundary_j: float,
    unbounded: bool,
    steady_proj_c: float,
    proj_decay: float,
) -> Tuple[Interval, Tuple[LevelSpan, ...]]:
    """Observable temperature envelope for one projected-power bound."""
    thresholds = cfg.thresholds
    ambient = cfg.ambient_c
    t0 = cfg.initial_c
    resistance = cfg.thermal_resistance_c_per_w
    tau_slow = resistance * cfg.thermal_capacitance_j_per_c
    tau_fast = tau_slow * cfg.fan_resistance_scale
    ripple = boundary_j / cfg.thermal_capacitance_j_per_c
    if unbounded or not math.isfinite(power_hi_w):
        steady_hi = math.inf
    else:
        steady_hi = ambient + power_hi_w * resistance
    if math.isfinite(steady_hi):
        run_hi = max(t0, exp_value(t0, steady_hi, tau_slow, horizon_s)) + ripple
    elif horizon_s > 0.0:
        run_hi = math.inf
    else:
        run_hi = t0 + ripple
    hi = max(run_hi, steady_proj_c)
    # Coolest observable value: fan-scaled relaxation toward ambient with no
    # power, then the longest possible cool projection on top.
    cool_start = ambient + (t0 - ambient) * proj_decay
    run_decay = math.exp(-horizon_s / tau_fast) if tau_fast > 0.0 else 0.0
    lo = max(ambient, ambient + (cool_start - ambient) * run_decay)
    lo = min(lo, hi)
    envelope = Interval(lo, hi)

    bands = {
        TemperatureLevel.LOW: (-math.inf, thresholds.medium_c),
        TemperatureLevel.MEDIUM: (thresholds.medium_c, thresholds.high_c),
        TemperatureLevel.HIGH: (thresholds.high_c, math.inf),
    }
    initial_level = thresholds.classify(t0)
    spans: List[LevelSpan] = []
    for level in _TEMPERATURE_ORDER:
        band_lo, band_hi = bands[level]
        if not (envelope.lo < band_hi and envelope.hi >= band_lo):
            continue
        if level is initial_level:
            spans.append(LevelSpan(level, 0.0))
            continue
        if level.rank > initial_level.rank:
            # Heating entry: either the projection jumps there immediately,
            # or the run trajectory (plus ripple) crosses the band floor.
            if (
                steady_proj_c >= band_lo
                or t0 + ripple >= band_lo
                or not math.isfinite(steady_hi)
            ):
                spans.append(LevelSpan(level, 0.0))
                continue
            crossing = exp_crossing_time(t0, steady_hi, tau_slow, band_lo - ripple)
            entry = 0.0 if crossing is None else min(crossing, horizon_s)
            spans.append(LevelSpan(level, entry))
        else:
            # Cooling entry: the fastest decay (fan on, zero power) plus the
            # longest cool projection must drop below the band ceiling.
            if cool_start < band_hi:
                spans.append(LevelSpan(level, 0.0))
                continue
            crossing = exp_crossing_time(cool_start, ambient, tau_fast, band_hi)
            entry = 0.0 if crossing is None else min(crossing, horizon_s)
            spans.append(LevelSpan(level, entry))
    return envelope, tuple(spans)


def _merge_spans(
    groups: Sequence[Tuple[LevelSpan, ...]], order: Sequence[object]
) -> Tuple[LevelSpan, ...]:
    earliest: Dict[object, float] = {}
    for group in groups:
        for span in group:
            current = earliest.get(span.level)
            if current is None or span.earliest_s < current:
                earliest[span.level] = span.earliest_s
    return tuple(
        LevelSpan(level, earliest[level]) for level in order if level in earliest
    )


# ---------------------------------------------------------------------------
# The fixpoint driver.
# ---------------------------------------------------------------------------

def compute_reach(model: SpecModel) -> ReachResult:
    """Abstract-interpret ``model`` into its reachable context envelope."""
    spec = model.spec
    notes: List[str] = []
    statics = [_build_statics(ip_model, notes) for ip_model in model.ips]
    battery_cfg = build_battery_config(spec.battery)
    thermal_cfg = build_thermal_config(spec.thermal, ip_count=max(1, len(spec.ips)))
    horizon_s = max(model.horizon_s, 0.0)
    interval_s = spec.sample_interval_us / 1e6

    unbounded = any(s.trans_rate_unbounded for s in statics)
    boundary_j = sum(s.max_trans_energy_j for s in statics)
    trans_rate_w = sum(s.trans_rate_w for s in statics)
    fan_w = spec.fan_power_w if spec.with_fan else 0.0
    gem_enabled = bool(spec.gem and spec.gem.enabled)

    # Downward Kleene iteration on the per-IP resident ON-state sets: start
    # at the top (every forward-reachable ON state), recompute the envelope,
    # keep only states the rule table can still select, and intersect so the
    # iterates decrease.  Non-rule policies keep the top (sound).
    resident: List[Set[PowerState]] = [set(s.on_states) for s in statics]
    iterations = 0
    converged = False
    result: Optional[ReachResult] = None
    while iterations < WIDEN_LIMIT:
        iterations += 1
        result = _evaluate(
            model, statics, resident, battery_cfg, thermal_cfg, horizon_s,
            interval_s, unbounded, boundary_j, trans_rate_w, fan_w,
            gem_enabled, notes, iterations,
        )
        if model.table is None:
            converged = True
            break
        selected = result.selected_on_states(model.table)
        refined: List[Set[PowerState]] = []
        for ip_statics, current in zip(statics, resident):
            keep = set(current)
            if ip_statics.has_tasks:
                # Tasks only ever execute at table-selected ON states (plus
                # the initial state before the first decision).
                keep &= selected | {ip_statics.initial}
            refined.append(keep)
        if refined == resident:
            converged = True
            break
        resident = refined
    assert result is not None
    if not converged:
        notes.append(
            f"fixpoint cap of {WIDEN_LIMIT} iterations hit; envelope widened"
        )
    return ReachResult(
        subject=result.subject,
        horizon_s=result.horizon_s,
        power_w=result.power_w,
        window_power_w=result.window_power_w,
        soc=result.soc,
        run_soc=result.run_soc,
        temperature_c=result.temperature_c,
        run_temperature_c=result.run_temperature_c,
        battery_levels=result.battery_levels,
        temperature_levels=result.temperature_levels,
        bus_levels=result.bus_levels,
        ips=result.ips,
        other_energy_bound_j=result.other_energy_bound_j,
        iterations=iterations,
        converged=converged,
        assumptions=tuple(dict.fromkeys(notes)),
    )


def _evaluate(
    model: SpecModel,
    statics: Sequence[_IpStatics],
    resident: Sequence[Set[PowerState]],
    battery_cfg: BatteryConfig,
    thermal_cfg: ThermalConfig,
    horizon_s: float,
    interval_s: float,
    unbounded: bool,
    boundary_j: float,
    trans_rate_w: float,
    fan_w: float,
    gem_enabled: bool,
    notes: List[str],
    iterations: int,
) -> ReachResult:
    spec = model.spec
    per_ip_bounds = [
        _ip_power_bounds(ip_statics, states)
        for ip_statics, states in zip(statics, resident)
    ]
    power_lo = sum(lo for lo, _ in per_ip_bounds)
    power_hi = sum(hi for _, hi in per_ip_bounds) + fan_w
    # Worst average power over one monitor sample window: sustained ceiling
    # plus transition deposits (their rate plus one boundary deposit landing
    # inside the window).  Mid-run drains always cover whole windows, so
    # this is the power the Peukert factor can ever see before a decision.
    if unbounded or interval_s <= 0.0:
        window_power_w = math.inf
    else:
        window_power_w = power_hi + trans_rate_w + boundary_j / interval_s
    if battery_cfg.nominal_power_w > 0.0 and math.isfinite(window_power_w):
        peukert = max(
            1.0,
            (window_power_w / battery_cfg.nominal_power_w)
            ** (battery_cfg.peukert_exponent - 1.0),
        )
    else:
        peukert = math.inf if not math.isfinite(window_power_w) else 1.0
    drain_rate_w = (
        peukert * (power_hi + trans_rate_w) + battery_cfg.self_discharge_w
        if math.isfinite(peukert) else math.inf
    )
    drain_boundary_j = peukert * boundary_j if math.isfinite(peukert) else math.inf
    degrade = unbounded or not math.isfinite(drain_rate_w)

    # GEM pending-energy bound: one outstanding estimate per other IP.
    energy_ceilings = [s.max_task_energy_j for s in statics]
    total_energy = sum(energy_ceilings)
    thermal_rate_w = power_hi + trans_rate_w

    run_soc, run_battery_spans = _battery_envelope(
        battery_cfg, horizon_s, drain_rate_w, drain_boundary_j, degrade, 0.0,
    )
    run_temp, run_temp_spans = _temperature_envelope(
        thermal_cfg, horizon_s, thermal_rate_w, boundary_j, degrade,
        steady_proj_c=-math.inf, proj_decay=1.0,
    )

    ips: List[IpReach] = []
    other_bound = 0.0
    for ip_statics, (_, ip_power_hi) in zip(statics, per_ip_bounds):
        char = ip_statics.ip_model.characterization
        own = energy_ceilings[ip_statics.ip_model.index]
        others = (total_energy - own) if gem_enabled else 0.0
        other_bound = max(other_bound, others)
        slack_j = own + others if ip_statics.has_tasks else 0.0
        soc, battery_spans = _battery_envelope(
            battery_cfg, horizon_s, drain_rate_w, drain_boundary_j, degrade, slack_j,
        )
        if ip_statics.has_tasks:
            # Projected temperature: own active power plus the other IPs'
            # pending energy amortised over the shortest own-task duration,
            # relaxed toward its steady state with the no-fan resistance.
            active_ceiling = max(
                (
                    char.active_power_w(PowerState.ON1, iclass)
                    for iclass in (ip_statics.classes or tuple(InstructionClass))
                ),
                default=0.0,
            )
            if others > 0.0 and ip_statics.min_task_duration_s > 0.0:
                proj_power = active_ceiling + others / ip_statics.min_task_duration_s
            elif others > 0.0:
                proj_power = math.inf
            else:
                proj_power = active_ceiling
            steady_proj = (
                thermal_cfg.ambient_c
                + proj_power * thermal_cfg.thermal_resistance_c_per_w
            )
            tau_fast = (
                thermal_cfg.thermal_resistance_c_per_w
                * thermal_cfg.fan_resistance_scale
                * thermal_cfg.thermal_capacitance_j_per_c
            )
            if math.isfinite(ip_statics.max_task_duration_s) and tau_fast > 0.0:
                proj_decay = math.exp(-ip_statics.max_task_duration_s / tau_fast)
            else:
                proj_decay = 0.0
        else:
            steady_proj = -math.inf
            proj_decay = 1.0
        temp, temp_spans = _temperature_envelope(
            thermal_cfg, horizon_s, thermal_rate_w, boundary_j, degrade,
            steady_proj_c=steady_proj, proj_decay=proj_decay,
        )
        ips.append(IpReach(
            index=ip_statics.ip_model.index,
            name=ip_statics.ip_model.ip.name,
            priorities=ip_statics.priorities,
            resident_states=tuple(
                s for s in ON_STATES if s in resident[ip_statics.ip_model.index]
            ),
            soc=soc,
            temperature_c=temp,
            battery_levels=battery_spans,
            temperature_levels=temp_spans,
            projection_slack_j=slack_j,
            max_idle_gap_s=ip_statics.max_idle_gap_s,
        ))

    deciding = [ip for ip in ips if ip.priorities]
    battery_spans = _merge_spans(
        [ip.battery_levels for ip in deciding] or [run_battery_spans],
        _BATTERY_ORDER + (BatteryLevel.AC_POWER,),
    )
    temp_spans = _merge_spans(
        [ip.temperature_levels for ip in deciding] or [run_temp_spans],
        _TEMPERATURE_ORDER,
    )
    soc = Interval(min((ip.soc.lo for ip in deciding), default=run_soc.lo), run_soc.hi)
    temp = Interval(
        run_temp.lo,
        max((ip.temperature_c.hi for ip in deciding), default=run_temp.hi),
    )

    if not spec.bus.enabled:
        bus_spans = (LevelSpan(BusLevel.LOW, 0.0),)
    elif any(s.has_bus_traffic for s in statics):
        # While a transfer is in flight the trailing-window occupancy divides
        # by min(elapsed, window), so early readings can transiently reach
        # saturation regardless of average traffic.
        bus_spans = tuple(LevelSpan(level, 0.0) for level in BusLevel)
    else:
        bus_spans = (LevelSpan(BusLevel.LOW, 0.0),)

    return ReachResult(
        subject=spec.name,
        horizon_s=horizon_s,
        power_w=Interval(min(power_lo, power_hi), power_hi),
        window_power_w=window_power_w,
        soc=soc,
        run_soc=run_soc,
        temperature_c=temp,
        run_temperature_c=run_temp,
        battery_levels=battery_spans,
        temperature_levels=temp_spans,
        bus_levels=bus_spans,
        ips=tuple(ips),
        other_energy_bound_j=other_bound if gem_enabled else 0.0,
        iterations=iterations,
        converged=False,
        assumptions=tuple(dict.fromkeys(notes)),
    )
