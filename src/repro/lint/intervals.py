"""Interval arithmetic for the reachability engine (:mod:`repro.lint.reach`).

A tiny, closed-form toolkit: an :class:`Interval` of floats with hull and
widening operators, and crossing-time solvers for the two trajectory shapes
the abstract interpreter propagates — linear battery drain and first-order
(RC) thermal relaxation.  Everything here is direction-agnostic maths; the
physical soundness arguments live in :mod:`repro.lint.reach`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Interval",
    "exp_crossing_time",
    "exp_value",
    "linear_crossing_time",
]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of floats."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lower bound {self.lo} exceeds upper bound {self.hi}")

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands (the join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expand(self, below: float = 0.0, above: float = 0.0) -> "Interval":
        """Grow the interval by non-negative margins on each side."""
        if below < 0.0 or above < 0.0:
            raise ValueError("expansion margins must be non-negative")
        return Interval(self.lo - below, self.hi + above)

    def clamp(self, lo: float, hi: float) -> "Interval":
        """Intersect with ``[lo, hi]``; collapses to the nearer bound when disjoint."""
        new_lo = min(max(self.lo, lo), hi)
        new_hi = max(min(self.hi, hi), lo)
        return Interval(new_lo, new_hi)

    def widen(self, other: "Interval", lo_limit: float, hi_limit: float) -> "Interval":
        """Classic interval widening against ``other``, jumping to the limits.

        Any bound of ``other`` that escapes ``self`` is widened all the way to
        the corresponding limit, guaranteeing termination of fixpoint loops in
        a bounded number of steps regardless of how slowly the underlying
        trajectory drifts.
        """
        lo = self.lo if other.lo >= self.lo else lo_limit
        hi = self.hi if other.hi <= self.hi else hi_limit
        return Interval(min(lo, other.lo), max(hi, other.hi))


def linear_crossing_time(start: float, rate: float, threshold: float) -> Optional[float]:
    """First ``t >= 0`` at which ``start + rate * t`` reaches ``threshold``.

    Returns ``0.0`` when the trajectory already sits at or beyond the
    threshold in its direction of travel, and ``None`` when the threshold is
    never reached (rate pointing away from it, or zero rate short of it).
    """
    if rate > 0.0:
        if start >= threshold:
            return 0.0
        return (threshold - start) / rate
    if rate < 0.0:
        if start <= threshold:
            return 0.0
        return (threshold - start) / rate
    # Static trajectory: only "reaches" thresholds it already satisfies.
    return 0.0 if start == threshold else None


def exp_value(start: float, steady: float, tau_s: float, t_s: float) -> float:
    """Value at ``t`` of the RC relaxation ``steady + (start - steady) e^{-t/tau}``."""
    if t_s <= 0.0:
        return start
    if tau_s <= 0.0:
        return steady
    return steady + (start - steady) * math.exp(-t_s / tau_s)


def exp_crossing_time(start: float, steady: float, tau_s: float, threshold: float) -> Optional[float]:
    """First ``t >= 0`` at which the RC relaxation reaches ``threshold``.

    The trajectory moves monotonically from ``start`` toward ``steady``, so a
    threshold is crossed at most once.  Returns ``0.0`` when already at/past
    the threshold in the direction of travel, ``None`` when the threshold lies
    outside ``[start, steady)``'s reach.
    """
    if start == threshold:
        return 0.0
    if tau_s <= 0.0:
        # Instantaneous relaxation: jumps to steady at t=0+.
        if start < threshold <= steady or steady <= threshold < start:
            return 0.0
        return None
    if start < steady:  # heating toward steady
        if threshold <= start:
            return 0.0
        if threshold >= steady:
            return None
    else:  # cooling toward steady
        if threshold >= start:
            return 0.0
        if threshold <= steady:
            return None
    ratio = (threshold - steady) / (start - steady)
    if ratio <= 0.0:  # numerically at/beyond steady
        return None
    return -tau_s * math.log(ratio)
