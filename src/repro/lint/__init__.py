"""``repro.lint`` — static analysis of platform specs and of the library.

Three layers:

* **Spec analyzers** (:func:`lint_spec`): five constraint-level analyses
  over a :class:`~repro.platform.spec.PlatformSpec` — selection-rule
  structure, PSM reachability/break-even, policy knobs, bus saturation and
  workload feasibility.  They catch specs that validate but can never
  save energy (or never finish) *before* a simulation runs.
* **Trajectory reachability** (:func:`~repro.lint.reach.compute_reach`,
  ``lint_spec(reach=True)``): interval abstract interpretation of the
  spec's battery/thermal/bus dynamics over the workload horizon, yielding
  the reachable ``(priority, battery, temperature, bus)`` context envelope
  with entry-time bounds.  The rules/psm/policy analyzers consume it for
  trajectory-aware findings, and the dynamic cross-check
  (:mod:`repro.experiments.lint_crosscheck`) proves its soundness against
  traced runs.
* **Determinism self-check** (:func:`~repro.lint.selfcheck.selfcheck`):
  an AST lint over ``src/repro`` guarding the bit-identity contracts —
  no wall clocks, no global RNG, no float time math in the kernel.

CLI: ``repro-dpm lint [SPECS...|--self] [--reach] [--strict]`` (exit 0
clean, 1 findings, 2 unreadable/invalid input) and ``repro-dpm reach SPEC``
for the envelope timeline report.
"""

from repro.lint.engine import ANALYZERS, lint_spec
from repro.lint.findings import CODES, Finding, LintReport, Severity
from repro.lint.intervals import Interval
from repro.lint.model import SpecModel, build_model, spec_rule_table
from repro.lint.reach import IpReach, LevelSpan, ReachResult, compute_reach
from repro.lint.selfcheck import lint_paths, lint_source, selfcheck

__all__ = [
    "ANALYZERS",
    "CODES",
    "Finding",
    "Interval",
    "IpReach",
    "LevelSpan",
    "LintReport",
    "ReachResult",
    "Severity",
    "SpecModel",
    "build_model",
    "compute_reach",
    "lint_paths",
    "lint_source",
    "lint_spec",
    "selfcheck",
    "spec_rule_table",
]
