"""``repro.lint`` — static analysis of platform specs and of the library.

Two layers:

* **Spec analyzers** (:func:`lint_spec`): five constraint-level analyses
  over a :class:`~repro.platform.spec.PlatformSpec` — selection-rule
  structure, PSM reachability/break-even, policy knobs, bus saturation and
  workload feasibility.  They catch specs that validate but can never
  save energy (or never finish) *before* a simulation runs.
* **Determinism self-check** (:func:`~repro.lint.selfcheck.selfcheck`):
  an AST lint over ``src/repro`` guarding the bit-identity contracts —
  no wall clocks, no global RNG, no float time math in the kernel.

CLI: ``repro-dpm lint [SPECS...|--self] [--strict]``; exit 0 clean,
1 findings, 2 unreadable/invalid input.
"""

from repro.lint.engine import ANALYZERS, lint_spec
from repro.lint.findings import CODES, Finding, LintReport, Severity
from repro.lint.model import SpecModel, build_model, spec_rule_table
from repro.lint.selfcheck import lint_paths, lint_source, selfcheck

__all__ = [
    "ANALYZERS",
    "CODES",
    "Finding",
    "LintReport",
    "Severity",
    "SpecModel",
    "build_model",
    "lint_paths",
    "lint_source",
    "lint_spec",
    "selfcheck",
    "spec_rule_table",
]
