"""PSM analyzer: state-graph reachability and break-even feasibility.

Walks each IP's transition table (the default one, scaled to the IP's
characterisation, or the spec's custom ``psm``) as a directed graph:

* ``PSM-UNREACHABLE`` — a low-power state that appears in the table but has
  no path from the IP's initial state; it can never be entered.
* ``PSM-NO-WAKE`` — a reachable low-power state with no path back to any ON
  state.  Entering it strands the IP (absorbing state), which on a live
  platform means a task that never gets served again.
* ``PSM-SLEEP-POWER`` — residual power >= ON1 idle power: sleeping in this
  state costs at least as much as staying idle, so it can never break even
  (:func:`repro.power.breakeven.break_even_time` returns ``None``).
* ``PSM-BREAK-EVEN`` — the break-even idle time is longer than the whole
  simulated horizon (``max_time_ms``); no idle period inside a run can
  ever amortise the transition energy.
* ``PSM-BREAK-EVEN-IDLE`` — only with a trajectory envelope attached
  (``lint --reach``): the break-even time fits the horizon but exceeds the
  IP's largest *workload* idle gap, so no real idle period between tasks
  can amortise the state either — the horizon check alone was too lax.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lint.findings import Finding, Severity
from repro.lint.model import LOW_STATES, IpModel, SpecModel
from repro.power.states import PowerState
from repro.sim.simtime import sec

__all__ = ["analyze_psm"]


def _reachable_from(graph: Dict[PowerState, Set[PowerState]], start: PowerState) -> Set[PowerState]:
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for successor in graph.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


def _analyze_ip(model: SpecModel, ip_model: IpModel) -> List[Finding]:
    findings: List[Finding] = []
    path = f"{ip_model.path}.psm"
    pairs = list(ip_model.transitions.transitions)
    graph: Dict[PowerState, Set[PowerState]] = {}
    for source, target in pairs:
        graph.setdefault(source, set()).add(target)
    present = {state for pair in pairs for state in pair}

    initial = PowerState(ip_model.ip.initial_state)
    forward = _reachable_from(graph, initial)
    for state in LOW_STATES:
        if state not in present:
            continue  # removed from the table entirely: simply unavailable
        if state not in forward:
            findings.append(Finding(
                code="PSM-UNREACHABLE",
                severity=Severity.WARN,
                path=path,
                message=(
                    f"{state} appears in the transition table but has no "
                    f"path from the initial state {initial}"
                ),
                suggestion=f"add an entry transition into {state} or remove it",
            ))
            continue
        # Reachable low-power state: is there a way back to execution?
        wake = _reachable_from(graph, state)
        if not any(s.is_on for s in wake):
            findings.append(Finding(
                code="PSM-NO-WAKE",
                severity=Severity.ERROR,
                path=path,
                message=(
                    f"{state} is absorbing: reachable from {initial} but no "
                    "transition path leads back to any ON state"
                ),
                suggestion=f"add a wake transition {state} -> ON1",
            ))

    if ip_model.breakeven is not None:
        horizon = sec(model.horizon_s)
        max_idle_gap_s = None
        if model.reach is not None:
            ip_reach = model.reach.ips[ip_model.index]
            if ip_reach.priorities:  # only meaningful when the IP has tasks
                max_idle_gap_s = ip_reach.max_idle_gap_s
        for entry in ip_model.breakeven.entries:
            if entry.break_even is None:
                idle_w = ip_model.characterization.idle_power_w(PowerState.ON1)
                findings.append(Finding(
                    code="PSM-SLEEP-POWER",
                    severity=Severity.WARN,
                    path=path,
                    message=(
                        f"{entry.state} draws {entry.sleep_power_w:.4g} W asleep, "
                        f">= the ON1 idle power {idle_w:.4g} W; it can never "
                        "save energy"
                    ),
                    suggestion=f"lower residual_fraction.{entry.state}",
                ))
            elif entry.break_even > horizon:
                findings.append(Finding(
                    code="PSM-BREAK-EVEN",
                    severity=Severity.WARN,
                    path=path,
                    message=(
                        f"{entry.state} breaks even only after "
                        f"{entry.break_even.seconds * 1e6:.3g} us — longer than "
                        f"the whole {model.spec.max_time_ms:g} ms horizon, so no "
                        "idle period can amortise its transition cost"
                    ),
                    suggestion=(
                        f"cheapen the {entry.state} transitions or drop the state"
                    ),
                ))
            elif (
                max_idle_gap_s is not None
                and entry.break_even.seconds > max_idle_gap_s
            ):
                findings.append(Finding(
                    code="PSM-BREAK-EVEN-IDLE",
                    severity=Severity.INFO,
                    path=path,
                    message=(
                        f"{entry.state} breaks even after "
                        f"{entry.break_even.seconds * 1e6:.3g} us, but the "
                        f"workload's largest idle gap is only "
                        f"{max_idle_gap_s * 1e6:.3g} us; no idle period "
                        "between tasks can amortise its transition cost"
                    ),
                    suggestion=(
                        f"cheapen the {entry.state} transitions or lengthen "
                        "the workload's idle periods"
                    ),
                ))
    return findings


def analyze_psm(model: SpecModel) -> List[Finding]:
    findings: List[Finding] = []
    for ip_model in model.ips:
        findings.extend(_analyze_ip(model, ip_model))
    return findings
