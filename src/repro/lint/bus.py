"""Bus analyzer: can the declared traffic actually fit on the bus?

* ``BUS-SATURATED`` — the aggregate word rate the workloads generate
  (each IP's total ``bus_words_per_task x tasks`` spread over its own
  minimum runtime) exceeds ``words_per_second``; transfers will queue
  without bound and tasks cannot complete on time.
* ``BUS-HOT`` — the same estimate exceeds 80% of the bandwidth; the run
  works but contention (and CA rounding) dominates timing.
* ``BUS-CA-DIVISIBILITY`` — cycle-accurate timing rounds every transfer
  up to whole bus cycles; transfer sizes not divisible by
  ``words_per_cycle`` silently pay extra cycles on every task.
* ``BUS-UNUSED`` — the bus is enabled but no IP declares traffic.
"""

from __future__ import annotations

from typing import List

from repro.lint.findings import Finding, Severity
from repro.lint.model import SpecModel

__all__ = ["analyze_bus"]

#: BUS-HOT threshold: fraction of the bandwidth the estimate may use.
_HOT_FRACTION = 0.8


def analyze_bus(model: SpecModel) -> List[Finding]:
    bus = model.spec.bus
    if not bus.enabled:
        return []
    findings: List[Finding] = []
    demand_w_per_s = 0.0
    talkers = 0
    for ip_model in model.ips:
        words_per_task = ip_model.ip.bus_words_per_task
        if words_per_task <= 0:
            continue
        talkers += 1
        if (bus.timing == "cycle_accurate"
                and words_per_task % bus.words_per_cycle != 0):
            findings.append(Finding(
                code="BUS-CA-DIVISIBILITY",
                severity=Severity.WARN,
                path=f"{ip_model.path}.bus_words_per_task",
                message=(
                    f"{words_per_task} words per task is not a multiple of the "
                    f"bus's words_per_cycle ({bus.words_per_cycle}); every "
                    "cycle-accurate transfer rounds up to whole bus cycles"
                ),
                suggestion="pad or trim the transfer to a whole-cycle multiple",
            ))
        duration_s = ip_model.min_duration_s()
        if ip_model.workload is None or not duration_s:
            continue
        demand_w_per_s += (
            words_per_task * ip_model.workload.task_count / duration_s
        )
    if talkers == 0:
        findings.append(Finding(
            code="BUS-UNUSED",
            severity=Severity.INFO,
            path="platform.bus",
            message="the bus is enabled but no IP sets bus_words_per_task",
            suggestion="disable the bus or declare per-task traffic",
        ))
        return findings
    utilisation = demand_w_per_s / bus.words_per_second
    if utilisation > 1.0:
        findings.append(Finding(
            code="BUS-SATURATED",
            severity=Severity.ERROR,
            path="platform.bus.words_per_second",
            message=(
                f"aggregate traffic needs ~{demand_w_per_s:.3g} words/s but the "
                f"bus delivers {bus.words_per_second:.3g} words/s "
                f"({utilisation:.0%} utilisation); transfers queue without bound"
            ),
            suggestion="raise words_per_second or shrink the transfer sizes",
        ))
    elif utilisation > _HOT_FRACTION:
        findings.append(Finding(
            code="BUS-HOT",
            severity=Severity.INFO,
            path="platform.bus.words_per_second",
            message=(
                f"aggregate traffic uses ~{utilisation:.0%} of the bus "
                "bandwidth; contention will dominate transfer timing"
            ),
            suggestion="leave headroom below 80% for arbitration stalls",
        ))
    return findings
