"""Bridge from a :class:`~repro.platform.spec.PlatformSpec` to runnable objects.

The spec tree is pure data; this module turns it into the library's value
objects (:class:`~repro.soc.soc.IpSpec`, :class:`~repro.soc.soc.SocConfig`,
:class:`~repro.power.characterization.PowerCharacterization`,
:class:`~repro.power.transitions.TransitionTable`,
:class:`~repro.dpm.controller.DpmSetup`) and finally into a
:class:`PlatformScenario` — a :class:`~repro.experiments.scenarios.Scenario`
that remembers its spec, so the runners can honour the platform's policy and
GEM tunables.

Migration contract: a spec that leaves every optional knob unset builds the
exact same objects the legacy scenario factories built — that is what lets
the six paper scenarios become thin built-in specs (see
:mod:`repro.platform.registry`) while the pinned goldens stay bit-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.battery.model import BatteryConfig
from repro.dpm.controller import DpmSetup
from repro.dpm.rules import RuleTable
from repro.dpm.predictor import (
    AdaptivePredictor,
    ExponentialAveragePredictor,
    FixedPredictor,
    LastValuePredictor,
)
from repro.errors import PlatformError
from repro.experiments.scenarios import (
    Scenario,
    battery_condition,
    scenario_a_workload,
    thermal_condition,
)
from repro.platform.spec import BatteryDef, IpDef, PlatformSpec, PolicyDef, ThermalDef, WorkloadDef
from repro.power.characterization import (
    DEFAULT_ACTIVITY,
    DEFAULT_RESIDUAL_FRACTION,
    InstructionClass,
    PowerCharacterization,
    default_characterization,
)
from repro.power.operating_point import OperatingPoint, OperatingPointTable
from repro.power.states import PowerState
from repro.power.transitions import TransitionCost, TransitionTable, default_transition_table
from repro.sim.simtime import ms, us
from repro.soc.soc import IpSpec, SocConfig
from repro.soc.task import TaskPriority
from repro.soc.workload import (
    Workload,
    bursty_workload,
    high_activity_workload,
    low_activity_workload,
    periodic_workload,
    random_workload,
)
from repro.thermal.model import ThermalConfig

__all__ = [
    "PlatformScenario",
    "build_battery_config",
    "build_characterization",
    "build_dpm_setup",
    "build_ip_spec",
    "build_soc_config",
    "build_thermal_config",
    "build_transitions",
    "build_workload",
    "platform_setup",
    "to_scenario",
]

_PREDICTOR_FACTORIES = {
    "fixed": FixedPredictor,
    "last-value": LastValuePredictor,
    "ewma": ExponentialAveragePredictor,
    "adaptive": AdaptivePredictor,
}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def build_workload(wdef: WorkloadDef, seed_override: Optional[int] = None) -> Workload:
    """Instantiate the workload described by ``wdef``.

    ``seed_override`` replaces the definition's own seed (campaign grids
    sweep seeds this way); it is ignored by ``explicit`` workloads, which
    have no randomness.  Fields left unset fall through to the generator's
    own defaults, so the mapping stays in one place.
    """
    seed = seed_override if seed_override is not None else wdef.seed
    kwargs: Dict[str, object] = {}

    def put(key: str, value) -> None:
        if value is not None:
            kwargs[key] = value

    kind = wdef.kind
    if kind == "explicit":
        return _post_transform(
            wdef, Workload.from_dicts(wdef.items or [], name=wdef.name or "workload")
        )
    if kind == "scenario_a":
        put("seed", seed)
        put("task_count", wdef.task_count)
        workload = scenario_a_workload(**kwargs)
        if wdef.name:
            workload.name = wdef.name
        return _post_transform(wdef, workload)

    put("name", wdef.name)
    put("seed", seed)
    if wdef.priorities is not None:
        kwargs["priorities"] = tuple(TaskPriority(p) for p in wdef.priorities)
    if kind == "periodic":
        kwargs.pop("seed", None)  # deterministic generator
        put("task_count", wdef.task_count)
        put("cycles", wdef.cycles)
        kwargs.pop("priorities", None)
        if wdef.idle_us is not None:
            kwargs["idle"] = us(wdef.idle_us)
        if wdef.priority is not None:
            kwargs["priority"] = TaskPriority(wdef.priority)
        if wdef.instruction_class is not None:
            kwargs["instruction_class"] = InstructionClass(wdef.instruction_class)
        workload = periodic_workload(**kwargs)
    elif kind == "random":
        put("task_count", wdef.task_count)
        if wdef.cycles_min is not None:
            kwargs["cycles_range"] = (wdef.cycles_min, wdef.cycles_max)
        if wdef.idle_min_us is not None:
            kwargs["idle_range"] = (us(wdef.idle_min_us), us(wdef.idle_max_us))
        workload = random_workload(**kwargs)
    elif kind == "high_activity":
        put("task_count", wdef.task_count)
        workload = high_activity_workload(**kwargs)
    elif kind == "low_activity":
        put("task_count", wdef.task_count)
        workload = low_activity_workload(**kwargs)
    elif kind == "bursty":
        put("burst_count", wdef.burst_count)
        put("tasks_per_burst", wdef.tasks_per_burst)
        if wdef.cycles_min is not None:
            kwargs["cycles_range"] = (wdef.cycles_min, wdef.cycles_max)
        if wdef.intra_burst_idle_us is not None:
            kwargs["intra_burst_idle"] = us(wdef.intra_burst_idle_us)
        if wdef.inter_burst_idle_us is not None:
            kwargs["inter_burst_idle"] = us(wdef.inter_burst_idle_us)
        workload = bursty_workload(**kwargs)
    else:  # pragma: no cover - validate() rejects unknown kinds first
        raise PlatformError(f"unknown workload kind {kind!r}")
    return _post_transform(wdef, workload)


def _post_transform(wdef: WorkloadDef, workload: Workload) -> Workload:
    if wdef.force_priority is not None:
        workload = workload.with_priority(TaskPriority(wdef.force_priority))
    if wdef.idle_scale is not None:
        workload = workload.scaled_idle(wdef.idle_scale)
    return workload


# ----------------------------------------------------------------------
# Characterisation and transitions
# ----------------------------------------------------------------------
def build_characterization(ipdef: IpDef) -> Optional[PowerCharacterization]:
    """The IP's characterisation, or ``None`` for the library default.

    Returning ``None`` (rather than ``default_characterization()``) keeps
    the spec path byte-identical to the legacy builders, which also pass
    ``None`` through :class:`~repro.soc.soc.IpSpec`.
    """
    if not ipdef.has_custom_characterization():
        return None
    if ipdef.operating_points is not None:
        table = OperatingPointTable(
            OperatingPoint(
                state=PowerState(p.state),
                voltage_v=p.voltage_v,
                frequency_hz=p.frequency_hz,
            )
            for p in ipdef.operating_points
        )
    else:
        from repro.power.operating_point import default_operating_points

        table = default_operating_points(
            max_frequency_hz=ipdef.max_frequency_hz or 200e6,
            max_voltage_v=ipdef.max_voltage_v or 1.2,
        )
    activity = dict(DEFAULT_ACTIVITY)
    if ipdef.activity_by_class:
        activity.update(
            {InstructionClass(key): value for key, value in ipdef.activity_by_class.items()}
        )
    residual = dict(DEFAULT_RESIDUAL_FRACTION)
    if ipdef.residual_fraction:
        residual.update(
            {PowerState(key): value for key, value in ipdef.residual_fraction.items()}
        )
    kwargs: Dict[str, object] = {
        "operating_points": table,
        "activity_by_class": activity,
        "residual_fraction": residual,
    }
    if ipdef.effective_capacitance_f is not None:
        kwargs["effective_capacitance_f"] = ipdef.effective_capacitance_f
    if ipdef.idle_activity is not None:
        kwargs["idle_activity"] = ipdef.idle_activity
    if ipdef.leakage_coefficient is not None:
        kwargs["leakage_coefficient"] = ipdef.leakage_coefficient
    return PowerCharacterization(**kwargs)


def build_transitions(
    ipdef: IpDef, characterization: Optional[PowerCharacterization]
) -> Optional[TransitionTable]:
    """The IP's transition table, or ``None`` for the generated default."""
    psm = ipdef.psm
    if psm is None:
        return None
    reference = characterization or default_characterization()
    kwargs: Dict[str, object] = {
        "reference_power_w": reference.active_power_w(PowerState.ON1),
    }
    if psm.dvfs_latency_us is not None:
        kwargs["dvfs_latency"] = us(psm.dvfs_latency_us)
    if psm.entry_latency_us:
        kwargs["sleep_entry_latency"] = {
            PowerState(state): us(value) for state, value in psm.entry_latency_us.items()
        }
    if psm.wakeup_latency_us:
        kwargs["wakeup_latency"] = {
            PowerState(state): us(value) for state, value in psm.wakeup_latency_us.items()
        }
    table = default_transition_table(**kwargs)
    if not psm.transitions:
        return table
    costs: Dict[Tuple[PowerState, PowerState], TransitionCost] = {
        pair: table.cost(*pair) for pair in table.transitions
    }
    for entry in psm.transitions:
        pair = (PowerState(entry.source), PowerState(entry.target))
        if entry.allowed:
            costs[pair] = TransitionCost(entry.energy_j, us(entry.latency_us))
        else:
            costs.pop(pair, None)
    return TransitionTable(costs)


def build_ip_spec(ipdef: IpDef, index: int = 0, seed: Optional[int] = None) -> IpSpec:
    """One :class:`IpSpec` from its definition.

    A grid ``seed`` re-seeds the IP's generator workload with
    ``seed + index`` (the IP's position in the platform), so sweeping a seed
    re-rolls every IP while keeping them decorrelated.
    """
    characterization = build_characterization(ipdef)
    return IpSpec(
        name=ipdef.name,
        workload=build_workload(
            ipdef.workload, None if seed is None else seed + index
        ),
        static_priority=ipdef.static_priority,
        characterization=characterization,
        transitions=build_transitions(ipdef, characterization),
        initial_state=PowerState(ipdef.initial_state),
        bus_words_per_task=ipdef.bus_words_per_task,
        bus_priority=ipdef.bus_priority,
    )


# ----------------------------------------------------------------------
# SoC-level configuration
# ----------------------------------------------------------------------
def build_battery_config(bdef: BatteryDef) -> BatteryConfig:
    """Battery configuration: preset (if any) plus explicit overrides."""
    base = battery_condition(bdef.condition) if bdef.condition else BatteryConfig()
    overrides: Dict[str, object] = {}
    if bdef.capacity_j is not None:
        overrides["capacity_j"] = bdef.capacity_j
    if bdef.state_of_charge is not None:
        overrides["initial_state_of_charge"] = bdef.state_of_charge
    if bdef.nominal_power_w is not None:
        overrides["nominal_power_w"] = bdef.nominal_power_w
    if bdef.peukert_exponent is not None:
        overrides["peukert_exponent"] = bdef.peukert_exponent
    if bdef.self_discharge_w is not None:
        overrides["self_discharge_w"] = bdef.self_discharge_w
    if bdef.on_ac_power is not None:
        overrides["on_ac_power"] = bdef.on_ac_power
    return dataclasses.replace(base, **overrides) if overrides else base


def build_thermal_config(tdef: ThermalDef, ip_count: int) -> ThermalConfig:
    """Thermal configuration: preset (scaled to ``ip_count``) plus overrides."""
    base = (
        thermal_condition(tdef.condition, ip_count=ip_count)
        if tdef.condition
        else ThermalConfig()
    )
    overrides: Dict[str, object] = {}
    if tdef.ambient_c is not None:
        overrides["ambient_c"] = tdef.ambient_c
    if tdef.initial_c is not None:
        overrides["initial_c"] = tdef.initial_c
    if tdef.resistance_c_per_w is not None:
        overrides["thermal_resistance_c_per_w"] = tdef.resistance_c_per_w
    if tdef.capacitance_j_per_c is not None:
        overrides["thermal_capacitance_j_per_c"] = tdef.capacitance_j_per_c
    if tdef.fan_resistance_scale is not None:
        overrides["fan_resistance_scale"] = tdef.fan_resistance_scale
    return dataclasses.replace(base, **overrides) if overrides else base


def build_soc_config(spec: PlatformSpec) -> SocConfig:
    """The :class:`SocConfig` of one run of ``spec``."""
    return SocConfig(
        name=f"soc_{spec.name}",
        battery=build_battery_config(spec.battery),
        thermal=build_thermal_config(spec.thermal, ip_count=len(spec.ips)),
        sample_interval=us(spec.sample_interval_us),
        use_gem=spec.gem.enabled,
        with_fan=spec.with_fan,
        fan_power_w=spec.fan_power_w,
        with_bus=spec.bus.enabled,
        bus_words_per_second=spec.bus.words_per_second,
        bus_arbitration=spec.bus.arbitration,
        bus_timing=spec.bus.timing,
        bus_words_per_cycle=spec.bus.words_per_cycle,
    )


# ----------------------------------------------------------------------
# Policy / setup
# ----------------------------------------------------------------------
def build_dpm_setup(policy: PolicyDef) -> DpmSetup:
    """A :class:`DpmSetup` from the platform's :class:`PolicyDef`."""
    policy.validate("platform.policy")
    allow_off = True if policy.allow_off is None else policy.allow_off
    if policy.name == "paper":
        predictor = (
            _PREDICTOR_FACTORIES[policy.predictor] if policy.predictor else None
        )
        rules = (
            RuleTable.from_dicts(policy.rules, name="policy-rules")
            if policy.rules
            else None
        )
        setup = DpmSetup.paper(
            rules=rules, allow_off=allow_off, predictor_factory=predictor
        )
    elif policy.name == "always-on":
        setup = DpmSetup.always_on()
    elif policy.name == "greedy-sleep":
        setup = DpmSetup.greedy_sleep(allow_off=allow_off)
    elif policy.name == "oracle":
        setup = DpmSetup.oracle()
    else:  # fixed-timeout (validate() restricts the vocabulary)
        setup = DpmSetup.fixed_timeout(ms(policy.timeout_ms or 2.0))
    lem_overrides: Dict[str, object] = {}
    if policy.allow_off is not None:
        lem_overrides["allow_off"] = policy.allow_off
    if policy.reevaluation_interval_us is not None:
        lem_overrides["reevaluation_interval"] = us(policy.reevaluation_interval_us)
    if policy.defer_state is not None:
        lem_overrides["defer_state"] = PowerState(policy.defer_state)
    if policy.estimation_state is not None:
        lem_overrides["estimation_state"] = PowerState(policy.estimation_state)
    if lem_overrides:
        setup.lem_config = dataclasses.replace(setup.lem_config, **lem_overrides)
    return setup


def _apply_gem_overrides(spec: PlatformSpec, setup: DpmSetup) -> DpmSetup:
    if not spec.gem.has_overrides():
        return setup
    overrides: Dict[str, object] = {}
    if spec.gem.high_priority_count is not None:
        overrides["high_priority_count"] = spec.gem.high_priority_count
    if spec.gem.evaluation_interval_us is not None:
        overrides["evaluation_interval"] = us(spec.gem.evaluation_interval_us)
    if spec.gem.forced_state is not None:
        overrides["forced_state"] = PowerState(spec.gem.forced_state)
    return dataclasses.replace(
        setup, gem_config=dataclasses.replace(setup.gem_config, **overrides)
    )


def platform_setup(
    scenario: Scenario,
    setup: Optional[DpmSetup],
    default: Callable[[], DpmSetup],
    use_policy: bool = False,
) -> DpmSetup:
    """Resolve the setup for one run of ``scenario``.

    For a :class:`PlatformScenario`, ``None`` resolves to the platform's own
    :class:`PolicyDef` (when ``use_policy`` and the spec has one) before the
    ``default`` factory, and the spec's GEM tunables are applied to whatever
    setup ends up running; plain scenarios just get the default.
    """
    spec = getattr(scenario, "spec", None)
    if setup is None:
        if use_policy and spec is not None and spec.policy is not None:
            setup = build_dpm_setup(spec.policy)
        else:
            setup = default()
    if spec is not None:
        setup = _apply_gem_overrides(spec, setup)
    return setup


# ----------------------------------------------------------------------
# The scenario bridge
# ----------------------------------------------------------------------
@dataclass
class PlatformScenario(Scenario):
    """A scenario built from a spec; remembers it for policy/GEM resolution."""

    spec: Optional[PlatformSpec] = None


def to_scenario(spec: PlatformSpec, seed: Optional[int] = None) -> PlatformScenario:
    """Turn a validated spec into a runnable scenario.

    ``seed``, when given, re-seeds every generator workload with
    ``seed + ip_index`` (explicit workloads are untouched) — the hook
    campaign grids use to sweep seeds over platform files.
    """
    spec.validate()
    return PlatformScenario(
        name=spec.name,
        description=spec.description
        or f"platform {spec.name!r} ({len(spec.ips)} IPs"
        f"{', GEM' if spec.gem.enabled else ''})",
        ip_specs_factory=lambda: [
            build_ip_spec(ipdef, index, seed) for index, ipdef in enumerate(spec.ips)
        ],
        soc_config_factory=lambda: build_soc_config(spec),
        max_time=ms(spec.max_time_ms),
        paper_row=_paper_row_for(spec),
        spec=spec,
    )


def _paper_row_for(spec: PlatformSpec):
    """The paper's Table-2 reference row, but only for the genuine article.

    A user spec that merely *names itself* "A1" (loaded from a file, never
    registered) must not inherit the paper's printed figures as its
    reference — only a spec equal to the built-in platform does.
    """
    from repro.platform.registry import PAPER_PLATFORM_NAMES, platform_by_name

    name = spec.name.upper()
    if name not in PAPER_PLATFORM_NAMES or spec != platform_by_name(name):
        return None
    from repro.analysis.report import PAPER_TABLE2

    return PAPER_TABLE2.get(name)
