"""Declarative platform specifications: user-defined SoCs as data.

This layer makes the *platform itself* a first-class, serializable object:

* :mod:`repro.platform.spec` — the :class:`PlatformSpec` dataclass tree
  (:class:`IpDef`, :class:`OperatingPointDef`, :class:`PsmDef`,
  :class:`PolicyDef`, :class:`WorkloadDef`, :class:`BatteryDef`,
  :class:`ThermalDef`, :class:`GemDef`) with schema validation whose errors
  name the offending path;
* :mod:`repro.platform.serialize` — lossless JSON/TOML round-trip;
* :mod:`repro.platform.build` — the bridge to runnable objects
  (:func:`to_scenario` and the per-section builders);
* :mod:`repro.platform.builder` — the fluent :class:`PlatformBuilder`;
* :mod:`repro.platform.registry` — named platforms; the six paper rows are
  registered as thin built-in specs that reproduce the pinned goldens
  bit-identically.

After this layer, a new scenario is a file::

    repro-dpm platform run --spec my_soc.json
"""

from repro.platform.build import (
    PlatformScenario,
    build_dpm_setup,
    build_ip_spec,
    build_soc_config,
    build_workload,
    platform_setup,
    to_scenario,
)
from repro.platform.builder import PlatformBuilder
from repro.platform.registry import (
    PAPER_PLATFORM_NAMES,
    has_platform,
    paper_platforms,
    platform_by_name,
    platform_names,
    register_platform,
    unregister_platform,
)
from repro.platform.serialize import (
    load_platform,
    load_spec_dict,
    save_platform,
    spec_from_json,
    spec_from_toml,
    spec_hash,
    spec_to_json,
    spec_to_toml,
)
from repro.platform.diff import diff_specs, render_spec_diff
from repro.platform.library import (
    LIBRARY_PLATFORM_NAMES,
    iot_duty_cycle,
    library_platforms,
    phone_bursty,
    register_library,
    server_diurnal,
    sustained_throttled,
)
from repro.platform.spec import (
    SPEC_FORMAT,
    BatteryDef,
    BusDef,
    GemDef,
    IpDef,
    OperatingPointDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    ThermalDef,
    TraceDef,
    TransitionDef,
    WorkloadDef,
)

#: the named workload library rides along with every platform import, so
#: "phone-bursty" etc. resolve as scenario names everywhere immediately
register_library()

__all__ = [
    "LIBRARY_PLATFORM_NAMES",
    "PAPER_PLATFORM_NAMES",
    "SPEC_FORMAT",
    "BatteryDef",
    "BusDef",
    "GemDef",
    "IpDef",
    "OperatingPointDef",
    "PlatformBuilder",
    "PlatformScenario",
    "PlatformSpec",
    "PolicyDef",
    "PsmDef",
    "ThermalDef",
    "TraceDef",
    "TransitionDef",
    "WorkloadDef",
    "build_dpm_setup",
    "diff_specs",
    "build_ip_spec",
    "build_soc_config",
    "build_workload",
    "has_platform",
    "iot_duty_cycle",
    "library_platforms",
    "load_platform",
    "load_spec_dict",
    "paper_platforms",
    "phone_bursty",
    "platform_by_name",
    "platform_names",
    "platform_setup",
    "register_library",
    "register_platform",
    "render_spec_diff",
    "save_platform",
    "server_diurnal",
    "sustained_throttled",
    "spec_from_json",
    "spec_from_toml",
    "spec_hash",
    "spec_to_json",
    "spec_to_toml",
    "to_scenario",
    "unregister_platform",
]
