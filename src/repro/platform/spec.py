"""The declarative platform specification tree.

A :class:`PlatformSpec` is a *pure data* description of everything the
simulator needs to run an experiment: the IP blocks (with their workloads,
DVFS operating points and power-state machines), the SoC-level battery,
thermal and GEM conditions, and optionally the power-management policy.  It
is the repo's answer to "a new scenario is a file, not a code change": specs
round-trip losslessly through plain dictionaries (and hence JSON/TOML, see
:mod:`repro.platform.serialize`), their canonical form is hash-stable (the
campaign result store dedupes on it) and every field is validated with an
error message that names the offending path::

    PlatformError: ips[2].workload.kind: unknown workload kind 'burstyy'
    (expected one of: bursty, explicit, high_activity, low_activity,
    periodic, random, scenario_a)

The tree deliberately contains **no** library objects (no ``SimTime``, no
enums, no factories): times are floats in explicit units (``*_us``,
``*_ms``), states and priorities are their string names.  The bridge from a
spec to runnable objects lives in :mod:`repro.platform.build`.

Layout of the tree::

    PlatformSpec
    ├── ips: [IpDef]
    │   ├── workload: WorkloadDef
    │   ├── operating_points: [OperatingPointDef]   (optional)
    │   └── psm: PsmDef                             (optional)
    │       └── transitions: [TransitionDef]
    ├── battery: BatteryDef
    ├── thermal: ThermalDef
    ├── gem: GemDef
    ├── bus: BusDef
    └── policy: PolicyDef                           (optional)

All ``to_dict`` methods omit fields left at their defaults, so the canonical
dictionary of a spec is minimal and two equal specs always produce the same
canonical encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import PlatformError

__all__ = [
    "SPEC_FORMAT",
    "BatteryDef",
    "BusDef",
    "GemDef",
    "IpDef",
    "OperatingPointDef",
    "PlatformSpec",
    "PolicyDef",
    "PsmDef",
    "ThermalDef",
    "TraceDef",
    "TransitionDef",
    "WorkloadDef",
]

#: Format tag written into every serialized spec; bump on breaking changes.
SPEC_FORMAT = "repro-platform/1"

# ----------------------------------------------------------------------
# Vocabulary (string values accepted by the spec format)
# ----------------------------------------------------------------------
ALL_STATE_NAMES = ("OFF", "SL4", "SL3", "SL2", "SL1", "ON4", "ON3", "ON2", "ON1")
ON_STATE_NAMES = ("ON1", "ON2", "ON3", "ON4")
LOW_STATE_NAMES = ("SL1", "SL2", "SL3", "SL4", "OFF")
PRIORITY_NAMES = ("low", "medium", "high", "very_high")
INSTRUCTION_CLASS_NAMES = ("alu", "memory", "control", "dsp", "io")
BATTERY_CONDITIONS = ("full", "high", "medium", "low", "empty")
THERMAL_CONDITIONS = ("low", "high")
POLICY_NAMES = ("paper", "always-on", "greedy-sleep", "fixed-timeout", "oracle")
PREDICTOR_NAMES = ("fixed", "last-value", "ewma", "adaptive")
#: States a selection rule may pick (ON or sleep — never OFF, the LEM cannot
#: grant a task on a powered-down IP) and the level vocabularies of the
#: rule-context dimensions, mirroring the enums of :mod:`repro.dpm.levels`.
RULE_STATE_NAMES = ("ON1", "ON2", "ON3", "ON4", "SL1", "SL2", "SL3", "SL4")
BATTERY_LEVEL_NAMES = ("empty", "low", "medium", "high", "full", "ac_power")
TEMPERATURE_LEVEL_NAMES = ("low", "medium", "high")
BUS_LEVEL_NAMES = ("low", "medium", "high")
_RULE_ENTRY_KEYS = ("state", "priorities", "batteries", "temperatures", "buses", "label")
BUS_ARBITRATION_NAMES = ("fifo", "priority")
BUS_TIMING_NAMES = ("event_driven", "cycle_accurate")
TRACE_FORMAT_NAMES = ("jsonl", "perfetto", "vcd")
WORKLOAD_KINDS = (
    "bursty",
    "explicit",
    "high_activity",
    "low_activity",
    "periodic",
    "random",
    "scenario_a",
)

#: WorkloadDef fields meaningful for each kind (beyond the common ones).
_WORKLOAD_KIND_FIELDS: Dict[str, frozenset] = {
    "periodic": frozenset(
        {"task_count", "cycles", "idle_us", "priority", "instruction_class"}
    ),
    "random": frozenset(
        {"task_count", "seed", "cycles_min", "cycles_max",
         "idle_min_us", "idle_max_us", "priorities"}
    ),
    "high_activity": frozenset({"task_count", "seed", "priorities"}),
    "low_activity": frozenset({"task_count", "seed", "priorities"}),
    "bursty": frozenset(
        {"burst_count", "tasks_per_burst", "seed", "cycles_min", "cycles_max",
         "intra_burst_idle_us", "inter_burst_idle_us", "priorities"}
    ),
    "scenario_a": frozenset({"task_count", "seed"}),
    "explicit": frozenset({"items"}),
}
_WORKLOAD_COMMON_FIELDS = frozenset({"kind", "name", "idle_scale", "force_priority"})

_EXPLICIT_ITEM_KEYS = frozenset(
    {"task", "cycles", "priority", "instruction_class", "idle_after_fs", "idle_after_us"}
)


# ----------------------------------------------------------------------
# Validation helpers (structural checks with dotted paths)
# ----------------------------------------------------------------------
def _fail(path: str, message: str) -> None:
    raise PlatformError(f"{path}: {message}")


def _choices(values: Sequence[str]) -> str:
    return ", ".join(sorted(values))


def _as_mapping(value: Any, path: str) -> Dict[str, Any]:
    if not isinstance(value, Mapping):
        _fail(path, f"expected a mapping/table, got {type(value).__name__}")
    return dict(value)


def _check_keys(mapping: Mapping[str, Any], path: str, allowed: Sequence[str]) -> None:
    unknown = set(mapping) - set(allowed)
    if unknown:
        _fail(
            path,
            f"unknown field(s) {_choices(sorted(unknown))} "
            f"(allowed: {_choices(allowed)})",
        )


def _get_str(
    mapping: Mapping[str, Any],
    key: str,
    path: str,
    required: bool = False,
    default: Optional[str] = None,
) -> Optional[str]:
    if key not in mapping:
        if required:
            _fail(path, f"missing required field '{key}'")
        return default
    value = mapping[key]
    if not isinstance(value, str):
        _fail(f"{path}.{key}", f"expected a string, got {type(value).__name__}")
    return value


def _get_bool(
    mapping: Mapping[str, Any], key: str, path: str, default: Optional[bool] = None
) -> Optional[bool]:
    if key not in mapping:
        return default
    value = mapping[key]
    if not isinstance(value, bool):
        _fail(f"{path}.{key}", f"expected a boolean, got {type(value).__name__}")
    return value


def _get_int(
    mapping: Mapping[str, Any], key: str, path: str, default: Optional[int] = None
) -> Optional[int]:
    if key not in mapping:
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(f"{path}.{key}", f"expected an integer, got {value!r}")
    return int(value)


def _get_float(
    mapping: Mapping[str, Any], key: str, path: str, default: Optional[float] = None
) -> Optional[float]:
    if key not in mapping:
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{path}.{key}", f"expected a number, got {value!r}")
    return float(value)


def _get_list(
    mapping: Mapping[str, Any], key: str, path: str
) -> Optional[List[Any]]:
    if key not in mapping:
        return None
    value = mapping[key]
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        _fail(f"{path}.{key}", f"expected a list/array, got {type(value).__name__}")
    return list(value)


def _check_choice(value: Optional[str], path: str, choices: Sequence[str], what: str) -> None:
    if value is not None and value not in choices:
        _fail(path, f"unknown {what} {value!r} (expected one of: {_choices(choices)})")


def _check_positive(value: Optional[float], path: str, what: str = "value") -> None:
    if value is not None and value <= 0:
        _fail(path, f"{what} must be positive, got {value!r}")


def _float_map(value: Any, path: str, key_choices: Sequence[str], what: str) -> Dict[str, float]:
    mapping = _as_mapping(value, path)
    result: Dict[str, float] = {}
    for key, item in mapping.items():
        _check_choice(key, f"{path}.{key}", key_choices, what)
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            _fail(f"{path}.{key}", f"expected a number, got {item!r}")
        result[key] = float(item)
    return result


# ----------------------------------------------------------------------
# Leaf definitions
# ----------------------------------------------------------------------
@dataclass
class OperatingPointDef:
    """One DVFS point of an IP: the voltage and frequency of an ON state."""

    state: str
    voltage_v: float
    frequency_hz: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "voltage_v": self.voltage_v,
            "frequency_hz": self.frequency_hz,
        }

    @classmethod
    def from_dict(cls, value: Any, path: str = "operating_point") -> "OperatingPointDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, ("state", "voltage_v", "frequency_hz"))
        state = _get_str(mapping, "state", path, required=True)
        voltage = _get_float(mapping, "voltage_v", path)
        frequency = _get_float(mapping, "frequency_hz", path)
        if voltage is None or frequency is None:
            _fail(path, "an operating point needs both 'voltage_v' and 'frequency_hz'")
        return cls(state=state, voltage_v=voltage, frequency_hz=frequency)

    def validate(self, path: str) -> None:
        _check_choice(self.state, f"{path}.state", ON_STATE_NAMES, "ON state")
        _check_positive(self.voltage_v, f"{path}.voltage_v", "supply voltage")
        _check_positive(self.frequency_hz, f"{path}.frequency_hz", "clock frequency")


@dataclass
class TransitionDef:
    """One entry of a user-defined PSM transition table.

    Overrides (or, with ``allowed: false``, removes) the generated default
    cost of the ``source -> target`` transition.
    """

    source: str
    target: str
    energy_j: Optional[float] = None
    latency_us: Optional[float] = None
    allowed: bool = True

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"source": self.source, "target": self.target}
        if self.energy_j is not None:
            data["energy_j"] = self.energy_j
        if self.latency_us is not None:
            data["latency_us"] = self.latency_us
        if not self.allowed:
            data["allowed"] = False
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "transition") -> "TransitionDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, ("source", "target", "energy_j", "latency_us", "allowed"))
        return cls(
            source=_get_str(mapping, "source", path, required=True),
            target=_get_str(mapping, "target", path, required=True),
            energy_j=_get_float(mapping, "energy_j", path),
            latency_us=_get_float(mapping, "latency_us", path),
            allowed=_get_bool(mapping, "allowed", path, default=True),
        )

    def validate(self, path: str) -> None:
        _check_choice(self.source, f"{path}.source", ALL_STATE_NAMES, "power state")
        _check_choice(self.target, f"{path}.target", ALL_STATE_NAMES, "power state")
        if self.source == self.target:
            _fail(path, f"self-transition {self.source}->{self.target} cannot be customised")
        if self.allowed:
            if self.energy_j is None or self.latency_us is None:
                _fail(
                    path,
                    f"transition {self.source}->{self.target} needs both 'energy_j' "
                    "and 'latency_us' (or 'allowed': false to forbid it)",
                )
            if self.energy_j < 0:
                _fail(f"{path}.energy_j", f"transition energy must be >= 0, got {self.energy_j!r}")
            if self.latency_us < 0:
                _fail(f"{path}.latency_us", f"transition latency must be >= 0, got {self.latency_us!r}")
        elif self.energy_j is not None or self.latency_us is not None:
            _fail(path, "a forbidden transition ('allowed': false) cannot carry costs")


@dataclass
class PsmDef:
    """A user-defined power-state machine (transition cost table).

    The table starts from the library defaults (scaled to the IP's
    characterisation) with the latency knobs applied, then the explicit
    ``transitions`` entries override or remove individual pairs.
    """

    dvfs_latency_us: Optional[float] = None
    entry_latency_us: Dict[str, float] = field(default_factory=dict)
    wakeup_latency_us: Dict[str, float] = field(default_factory=dict)
    transitions: List[TransitionDef] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.dvfs_latency_us is not None:
            data["dvfs_latency_us"] = self.dvfs_latency_us
        if self.entry_latency_us:
            data["entry_latency_us"] = dict(sorted(self.entry_latency_us.items()))
        if self.wakeup_latency_us:
            data["wakeup_latency_us"] = dict(sorted(self.wakeup_latency_us.items()))
        if self.transitions:
            data["transitions"] = [entry.to_dict() for entry in self.transitions]
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "psm") -> "PsmDef":
        mapping = _as_mapping(value, path)
        _check_keys(
            mapping, path,
            ("dvfs_latency_us", "entry_latency_us", "wakeup_latency_us", "transitions"),
        )
        entry = mapping.get("entry_latency_us")
        wake = mapping.get("wakeup_latency_us")
        transitions = _get_list(mapping, "transitions", path) or []
        return cls(
            dvfs_latency_us=_get_float(mapping, "dvfs_latency_us", path),
            entry_latency_us=(
                {} if entry is None
                else _float_map(entry, f"{path}.entry_latency_us", LOW_STATE_NAMES,
                                "sleep/off state")
            ),
            wakeup_latency_us=(
                {} if wake is None
                else _float_map(wake, f"{path}.wakeup_latency_us", LOW_STATE_NAMES,
                                "sleep/off state")
            ),
            transitions=[
                TransitionDef.from_dict(item, f"{path}.transitions[{index}]")
                for index, item in enumerate(transitions)
            ],
        )

    def validate(self, path: str) -> None:
        _check_positive(self.dvfs_latency_us, f"{path}.dvfs_latency_us", "DVFS latency")
        for key, value in self.entry_latency_us.items():
            _check_choice(key, f"{path}.entry_latency_us.{key}", LOW_STATE_NAMES,
                          "sleep/off state")
            _check_positive(value, f"{path}.entry_latency_us.{key}", "entry latency")
        for key, value in self.wakeup_latency_us.items():
            _check_choice(key, f"{path}.wakeup_latency_us.{key}", LOW_STATE_NAMES,
                          "sleep/off state")
            _check_positive(value, f"{path}.wakeup_latency_us.{key}", "wake-up latency")
        seen = set()
        for index, transition in enumerate(self.transitions):
            transition.validate(f"{path}.transitions[{index}]")
            pair = (transition.source, transition.target)
            if pair in seen:
                _fail(
                    f"{path}.transitions[{index}]",
                    f"duplicate transition {transition.source}->{transition.target}",
                )
            seen.add(pair)


@dataclass
class WorkloadDef:
    """Declarative workload: a generator reference or an explicit task list.

    ``kind`` selects one of the generators of :mod:`repro.soc.workload`
    (``periodic``, ``random``, ``high_activity``, ``low_activity``,
    ``bursty``), the composite ``scenario_a`` sequence of the paper's single
    IP rows, or ``explicit`` (an inline ``items`` list in the
    :meth:`repro.soc.workload.Workload.as_dicts` format).  Fields left unset
    use the generator's own defaults, so thin specs stay thin.
    """

    kind: str = "high_activity"
    name: Optional[str] = None
    task_count: Optional[int] = None
    seed: Optional[int] = None
    # periodic
    cycles: Optional[int] = None
    idle_us: Optional[float] = None
    priority: Optional[str] = None
    instruction_class: Optional[str] = None
    # random / bursty
    cycles_min: Optional[int] = None
    cycles_max: Optional[int] = None
    idle_min_us: Optional[float] = None
    idle_max_us: Optional[float] = None
    priorities: Optional[List[str]] = None
    # bursty
    burst_count: Optional[int] = None
    tasks_per_burst: Optional[int] = None
    intra_burst_idle_us: Optional[float] = None
    inter_burst_idle_us: Optional[float] = None
    # explicit
    items: Optional[List[Dict[str, Any]]] = None
    # post-transforms (any kind)
    idle_scale: Optional[float] = None
    force_priority: Optional[str] = None

    _FIELD_ORDER = (
        "name", "task_count", "seed", "cycles", "idle_us", "priority",
        "instruction_class", "cycles_min", "cycles_max", "idle_min_us",
        "idle_max_us", "priorities", "burst_count", "tasks_per_burst",
        "intra_burst_idle_us", "inter_burst_idle_us", "items",
        "idle_scale", "force_priority",
    )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for key in self._FIELD_ORDER:
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "workload") -> "WorkloadDef":
        mapping = _as_mapping(value, path)
        kind = _get_str(mapping, "kind", path, required=True)
        _check_choice(kind, f"{path}.kind", WORKLOAD_KINDS, "workload kind")
        allowed = _WORKLOAD_COMMON_FIELDS | _WORKLOAD_KIND_FIELDS[kind]
        unknown = set(mapping) - allowed
        if unknown:
            _fail(
                path,
                f"field(s) {_choices(sorted(unknown))} do not apply to workload "
                f"kind {kind!r} (allowed: {_choices(sorted(allowed))})",
            )
        priorities = _get_list(mapping, "priorities", path)
        items = _get_list(mapping, "items", path)
        if priorities is not None:
            for index, entry in enumerate(priorities):
                if not isinstance(entry, str):
                    _fail(f"{path}.priorities[{index}]",
                          f"expected a priority name, got {entry!r}")
        if items is not None:
            items = [
                _as_mapping(item, f"{path}.items[{index}]")
                for index, item in enumerate(items)
            ]
        return cls(
            kind=kind,
            name=_get_str(mapping, "name", path),
            task_count=_get_int(mapping, "task_count", path),
            seed=_get_int(mapping, "seed", path),
            cycles=_get_int(mapping, "cycles", path),
            idle_us=_get_float(mapping, "idle_us", path),
            priority=_get_str(mapping, "priority", path),
            instruction_class=_get_str(mapping, "instruction_class", path),
            cycles_min=_get_int(mapping, "cycles_min", path),
            cycles_max=_get_int(mapping, "cycles_max", path),
            idle_min_us=_get_float(mapping, "idle_min_us", path),
            idle_max_us=_get_float(mapping, "idle_max_us", path),
            priorities=priorities,
            burst_count=_get_int(mapping, "burst_count", path),
            tasks_per_burst=_get_int(mapping, "tasks_per_burst", path),
            intra_burst_idle_us=_get_float(mapping, "intra_burst_idle_us", path),
            inter_burst_idle_us=_get_float(mapping, "inter_burst_idle_us", path),
            items=items,
            idle_scale=_get_float(mapping, "idle_scale", path),
            force_priority=_get_str(mapping, "force_priority", path),
        )

    def validate(self, path: str) -> None:
        _check_choice(self.kind, f"{path}.kind", WORKLOAD_KINDS, "workload kind")
        allowed = _WORKLOAD_COMMON_FIELDS | _WORKLOAD_KIND_FIELDS[self.kind]
        for key in self._FIELD_ORDER:
            if getattr(self, key) is not None and key not in allowed and key != "name":
                _fail(
                    path,
                    f"field {key!r} does not apply to workload kind {self.kind!r} "
                    f"(allowed: {_choices(sorted(allowed))})",
                )
        _check_positive(self.task_count, f"{path}.task_count", "task count")
        _check_positive(self.cycles, f"{path}.cycles", "cycle count")
        _check_positive(self.burst_count, f"{path}.burst_count", "burst count")
        _check_positive(self.tasks_per_burst, f"{path}.tasks_per_burst", "tasks per burst")
        for key in ("idle_us", "idle_min_us", "idle_max_us",
                    "intra_burst_idle_us", "inter_burst_idle_us"):
            value = getattr(self, key)
            if value is not None and value < 0:
                _fail(f"{path}.{key}", f"idle times must be >= 0, got {value!r}")
        _check_choice(self.priority, f"{path}.priority", PRIORITY_NAMES, "task priority")
        _check_choice(self.force_priority, f"{path}.force_priority",
                      PRIORITY_NAMES, "task priority")
        _check_choice(self.instruction_class, f"{path}.instruction_class",
                      INSTRUCTION_CLASS_NAMES, "instruction class")
        if self.priorities is not None:
            if not self.priorities:
                _fail(f"{path}.priorities", "the priority pool must not be empty")
            for index, name in enumerate(self.priorities):
                _check_choice(name, f"{path}.priorities[{index}]",
                              PRIORITY_NAMES, "task priority")
        if (self.cycles_min is None) != (self.cycles_max is None):
            _fail(path, "'cycles_min' and 'cycles_max' must be given together")
        if self.cycles_min is not None and not 0 < self.cycles_min <= self.cycles_max:
            _fail(path, f"invalid cycle range [{self.cycles_min}, {self.cycles_max}]")
        if (self.idle_min_us is None) != (self.idle_max_us is None):
            _fail(path, "'idle_min_us' and 'idle_max_us' must be given together")
        if self.idle_min_us is not None and self.idle_min_us > self.idle_max_us:
            _fail(path, f"invalid idle range [{self.idle_min_us}, {self.idle_max_us}]")
        if self.idle_scale is not None and self.idle_scale < 0:
            _fail(f"{path}.idle_scale", f"idle scale must be >= 0, got {self.idle_scale!r}")
        if self.kind == "explicit":
            if not self.items:
                _fail(f"{path}.items", "an explicit workload needs at least one item")
            for index, item in enumerate(self.items):
                item_path = f"{path}.items[{index}]"
                unknown = set(item) - _EXPLICIT_ITEM_KEYS
                if unknown:
                    _fail(item_path,
                          f"unknown item field(s) {_choices(sorted(unknown))} "
                          f"(allowed: {_choices(sorted(_EXPLICIT_ITEM_KEYS))})")
                for required in ("task", "cycles"):
                    if required not in item:
                        _fail(item_path, f"missing required item field {required!r}")
                _check_choice(item.get("priority"), f"{item_path}.priority",
                              PRIORITY_NAMES, "task priority")
                _check_choice(item.get("instruction_class"),
                              f"{item_path}.instruction_class",
                              INSTRUCTION_CLASS_NAMES, "instruction class")
        elif self.kind == "periodic" and self.task_count is None:
            _fail(path, "a periodic workload needs 'task_count'")
        elif self.kind == "random" and self.task_count is None:
            _fail(path, "a random workload needs 'task_count'")


@dataclass
class IpDef:
    """Declarative description of one IP block.

    The power characterisation fields (``max_frequency_hz`` ...
    ``residual_fraction``) and the explicit ``operating_points`` are all
    optional; when *none* of them is given the IP uses the library's default
    characterisation object, byte for byte.  ``activity_by_class`` and
    ``residual_fraction`` are partial overrides merged over the defaults.
    """

    name: str
    workload: WorkloadDef = field(default_factory=WorkloadDef)
    static_priority: int = 1
    initial_state: str = "ON1"
    bus_words_per_task: int = 0
    bus_priority: Optional[int] = None
    max_frequency_hz: Optional[float] = None
    max_voltage_v: Optional[float] = None
    effective_capacitance_f: Optional[float] = None
    idle_activity: Optional[float] = None
    leakage_coefficient: Optional[float] = None
    activity_by_class: Optional[Dict[str, float]] = None
    residual_fraction: Optional[Dict[str, float]] = None
    operating_points: Optional[List[OperatingPointDef]] = None
    psm: Optional[PsmDef] = None

    def has_custom_characterization(self) -> bool:
        """True when any characterisation knob differs from the defaults."""
        return any(
            getattr(self, key) is not None
            for key in (
                "max_frequency_hz", "max_voltage_v", "effective_capacitance_f",
                "idle_activity", "leakage_coefficient", "activity_by_class",
                "residual_fraction", "operating_points",
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "workload": self.workload.to_dict()}
        if self.static_priority != 1:
            data["static_priority"] = self.static_priority
        if self.initial_state != "ON1":
            data["initial_state"] = self.initial_state
        if self.bus_words_per_task:
            data["bus_words_per_task"] = self.bus_words_per_task
        if self.bus_priority is not None:
            data["bus_priority"] = self.bus_priority
        for key in ("max_frequency_hz", "max_voltage_v", "effective_capacitance_f",
                    "idle_activity", "leakage_coefficient"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.activity_by_class is not None:
            data["activity_by_class"] = dict(sorted(self.activity_by_class.items()))
        if self.residual_fraction is not None:
            data["residual_fraction"] = dict(sorted(self.residual_fraction.items()))
        if self.operating_points is not None:
            data["operating_points"] = [p.to_dict() for p in self.operating_points]
        if self.psm is not None:
            psm = self.psm.to_dict()
            if psm:
                data["psm"] = psm
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "ip") -> "IpDef":
        mapping = _as_mapping(value, path)
        _check_keys(
            mapping, path,
            ("name", "workload", "static_priority", "initial_state",
             "bus_words_per_task", "bus_priority", "max_frequency_hz",
             "max_voltage_v", "effective_capacitance_f", "idle_activity",
             "leakage_coefficient", "activity_by_class", "residual_fraction",
             "operating_points", "psm"),
        )
        name = _get_str(mapping, "name", path, required=True)
        if "workload" not in mapping:
            _fail(path, f"IP {name!r} is missing its 'workload'")
        activity = mapping.get("activity_by_class")
        residual = mapping.get("residual_fraction")
        points = _get_list(mapping, "operating_points", path)
        return cls(
            name=name,
            workload=WorkloadDef.from_dict(mapping["workload"], f"{path}.workload"),
            static_priority=_get_int(mapping, "static_priority", path, default=1),
            initial_state=_get_str(mapping, "initial_state", path, default="ON1"),
            bus_words_per_task=_get_int(mapping, "bus_words_per_task", path, default=0),
            bus_priority=_get_int(mapping, "bus_priority", path),
            max_frequency_hz=_get_float(mapping, "max_frequency_hz", path),
            max_voltage_v=_get_float(mapping, "max_voltage_v", path),
            effective_capacitance_f=_get_float(mapping, "effective_capacitance_f", path),
            idle_activity=_get_float(mapping, "idle_activity", path),
            leakage_coefficient=_get_float(mapping, "leakage_coefficient", path),
            activity_by_class=(
                None if activity is None
                else _float_map(activity, f"{path}.activity_by_class",
                                INSTRUCTION_CLASS_NAMES, "instruction class")
            ),
            residual_fraction=(
                None if residual is None
                else _float_map(residual, f"{path}.residual_fraction",
                                LOW_STATE_NAMES, "sleep/off state")
            ),
            operating_points=(
                None if points is None
                else [
                    OperatingPointDef.from_dict(item, f"{path}.operating_points[{index}]")
                    for index, item in enumerate(points)
                ]
            ),
            psm=(
                None if "psm" not in mapping
                else PsmDef.from_dict(mapping["psm"], f"{path}.psm")
            ),
        )

    def validate(self, path: str) -> None:
        if not self.name:
            _fail(f"{path}.name", "IP name must be non-empty")
        if self.static_priority < 1:
            _fail(f"{path}.static_priority",
                  f"static priority must be >= 1, got {self.static_priority!r}")
        _check_choice(self.initial_state, f"{path}.initial_state",
                      ALL_STATE_NAMES, "power state")
        if self.bus_words_per_task < 0:
            _fail(f"{path}.bus_words_per_task", "bus words per task must be >= 0")
        if self.bus_priority is not None and self.bus_priority < 0:
            _fail(f"{path}.bus_priority",
                  f"bus priority must be >= 0, got {self.bus_priority!r}")
        self.workload.validate(f"{path}.workload")
        _check_positive(self.max_frequency_hz, f"{path}.max_frequency_hz", "frequency")
        _check_positive(self.max_voltage_v, f"{path}.max_voltage_v", "voltage")
        _check_positive(self.effective_capacitance_f,
                        f"{path}.effective_capacitance_f", "capacitance")
        if self.idle_activity is not None and not 0.0 < self.idle_activity < 1.0:
            _fail(f"{path}.idle_activity",
                  f"idle activity must be a fraction in (0, 1), got {self.idle_activity!r}")
        if self.leakage_coefficient is not None and self.leakage_coefficient < 0:
            _fail(f"{path}.leakage_coefficient", "leakage coefficient must be >= 0")
        if self.activity_by_class is not None:
            for key, value in self.activity_by_class.items():
                _check_positive(value, f"{path}.activity_by_class.{key}", "activity")
        if self.residual_fraction is not None:
            for key, value in self.residual_fraction.items():
                if not 0.0 <= value <= 1.0:
                    _fail(f"{path}.residual_fraction.{key}",
                          f"residual fraction must be in [0, 1], got {value!r}")
        if self.operating_points is not None:
            states = []
            for index, point in enumerate(self.operating_points):
                point.validate(f"{path}.operating_points[{index}]")
                states.append(point.state)
            if len(states) != len(set(states)):
                _fail(f"{path}.operating_points", "duplicate operating-point states")
            missing = [s for s in ON_STATE_NAMES if s not in states]
            if missing:
                _fail(f"{path}.operating_points",
                      f"missing operating point(s) for {_choices(missing)} "
                      "(the table must cover ON1..ON4)")
            if self.max_frequency_hz is not None or self.max_voltage_v is not None:
                _fail(path,
                      "'operating_points' already fixes the DVFS table; drop "
                      "'max_frequency_hz'/'max_voltage_v'")
        if self.psm is not None:
            self.psm.validate(f"{path}.psm")


@dataclass
class BusDef:
    """The shared on-chip bus: presence, bandwidth, arbitration and timing.

    ``timing`` selects the bus model: ``event_driven`` (immediate grants,
    exact durations) or ``cycle_accurate`` (the bus owns a materialised
    clock of ``words_per_second / words_per_cycle`` Hz, grants land only on
    posedges and durations round up to whole bus cycles).
    """

    enabled: bool = False
    words_per_second: float = 50e6
    arbitration: str = "priority"
    timing: str = "event_driven"
    words_per_cycle: int = 1

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.enabled:
            data["enabled"] = True
        if self.words_per_second != 50e6:
            data["words_per_second"] = self.words_per_second
        if self.arbitration != "priority":
            data["arbitration"] = self.arbitration
        if self.timing != "event_driven":
            data["timing"] = self.timing
        if self.words_per_cycle != 1:
            data["words_per_cycle"] = self.words_per_cycle
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "bus") -> "BusDef":
        mapping = _as_mapping(value, path)
        _check_keys(
            mapping, path,
            ("enabled", "words_per_second", "arbitration", "timing", "words_per_cycle"),
        )
        return cls(
            enabled=_get_bool(mapping, "enabled", path, default=False),
            words_per_second=_get_float(mapping, "words_per_second", path, default=50e6),
            arbitration=_get_str(mapping, "arbitration", path, default="priority"),
            timing=_get_str(mapping, "timing", path, default="event_driven"),
            words_per_cycle=_get_int(mapping, "words_per_cycle", path, default=1),
        )

    def has_overrides(self) -> bool:
        """True when any bus knob differs from the library defaults."""
        return (self.words_per_second != 50e6 or self.arbitration != "priority"
                or self.timing != "event_driven" or self.words_per_cycle != 1)

    def validate(self, path: str) -> None:
        _check_positive(self.words_per_second, f"{path}.words_per_second",
                        "bus throughput")
        _check_choice(self.arbitration, f"{path}.arbitration",
                      BUS_ARBITRATION_NAMES, "arbitration policy")
        _check_choice(self.timing, f"{path}.timing", BUS_TIMING_NAMES,
                      "bus timing mode")
        if (isinstance(self.words_per_cycle, bool)
                or not isinstance(self.words_per_cycle, int)
                or self.words_per_cycle < 1):
            _fail(f"{path}.words_per_cycle",
                  f"words per cycle must be an integer >= 1, got {self.words_per_cycle!r}")
        if not self.enabled and self.has_overrides():
            _fail(path, "bus parameters are set but 'enabled' is false")


@dataclass
class TraceDef:
    """Structured tracing (:mod:`repro.obs`): sink format, path and filter.

    ``format`` selects the sink: ``jsonl`` (one typed event per line),
    ``perfetto`` (Chrome-trace JSON for ui.perfetto.dev) or ``vcd``
    (signal waveforms via the simulator's TraceRecorder).  ``events``
    optionally restricts jsonl/perfetto traces to a set of event kinds
    and/or categories from the ``repro.obs`` taxonomy.  ``path`` names the
    output file; when omitted the runner derives
    ``<scenario>_trace.<ext>`` next to the working directory.
    """

    enabled: bool = False
    format: str = "jsonl"
    path: Optional[str] = None
    events: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.enabled:
            data["enabled"] = True
        if self.format != "jsonl":
            data["format"] = self.format
        if self.path is not None:
            data["path"] = self.path
        if self.events:
            data["events"] = list(self.events)
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "trace") -> "TraceDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, ("enabled", "format", "path", "events"))
        events = _get_list(mapping, "events", path)
        if events is not None:
            for index, entry in enumerate(events):
                if not isinstance(entry, str):
                    _fail(f"{path}.events[{index}]",
                          f"expected a string, got {type(entry).__name__}")
        return cls(
            enabled=_get_bool(mapping, "enabled", path, default=False),
            format=_get_str(mapping, "format", path, default="jsonl"),
            path=_get_str(mapping, "path", path),
            events=list(events or []),
        )

    def has_overrides(self) -> bool:
        """True when any trace knob differs from the library defaults."""
        return (self.format != "jsonl" or self.path is not None
                or bool(self.events))

    def validate(self, path: str) -> None:
        _check_choice(self.format, f"{path}.format", TRACE_FORMAT_NAMES,
                      "trace format")
        if self.events:
            # The event vocabulary lives with the tracing subsystem; imported
            # lazily (and only when a filter is set) so validating untraced
            # specs never pulls repro.obs in at all.
            from repro.obs.events import EVENT_CATEGORIES, EVENT_TYPES

            for index, entry in enumerate(self.events):
                if entry not in EVENT_TYPES and entry not in EVENT_CATEGORIES:
                    _fail(f"{path}.events[{index}]",
                          f"unknown event kind or category {entry!r} (expected "
                          f"a kind such as {_choices(tuple(EVENT_TYPES)[:3])}... "
                          f"or a category: {_choices(EVENT_CATEGORIES)})")
        if self.events and self.format == "vcd":
            _fail(f"{path}.events",
                  "event filters only apply to jsonl/perfetto traces")
        if self.path is not None and not self.path:
            _fail(f"{path}.path", "trace path must be non-empty")
        if not self.enabled and self.has_overrides():
            _fail(path, "trace parameters are set but 'enabled' is false")


@dataclass
class BatteryDef:
    """Battery condition: a named preset, explicit parameters, or both.

    ``condition`` references the presets of
    :func:`repro.experiments.scenarios.battery_condition` (the paper's
    "Full"/"Low" classes); explicit fields override the preset.
    """

    condition: Optional[str] = None
    capacity_j: Optional[float] = None
    state_of_charge: Optional[float] = None
    nominal_power_w: Optional[float] = None
    peukert_exponent: Optional[float] = None
    self_discharge_w: Optional[float] = None
    on_ac_power: Optional[bool] = None

    _FIELDS = ("condition", "capacity_j", "state_of_charge", "nominal_power_w",
               "peukert_exponent", "self_discharge_w", "on_ac_power")

    def to_dict(self) -> Dict[str, Any]:
        return {key: getattr(self, key) for key in self._FIELDS
                if getattr(self, key) is not None}

    @classmethod
    def from_dict(cls, value: Any, path: str = "battery") -> "BatteryDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, cls._FIELDS)
        return cls(
            condition=_get_str(mapping, "condition", path),
            capacity_j=_get_float(mapping, "capacity_j", path),
            state_of_charge=_get_float(mapping, "state_of_charge", path),
            nominal_power_w=_get_float(mapping, "nominal_power_w", path),
            peukert_exponent=_get_float(mapping, "peukert_exponent", path),
            self_discharge_w=_get_float(mapping, "self_discharge_w", path),
            on_ac_power=_get_bool(mapping, "on_ac_power", path),
        )

    def validate(self, path: str) -> None:
        _check_choice(self.condition, f"{path}.condition",
                      BATTERY_CONDITIONS, "battery condition")
        _check_positive(self.capacity_j, f"{path}.capacity_j", "battery capacity")
        if self.state_of_charge is not None and not 0.0 <= self.state_of_charge <= 1.0:
            _fail(f"{path}.state_of_charge",
                  f"state of charge must be in [0, 1], got {self.state_of_charge!r}")
        _check_positive(self.nominal_power_w, f"{path}.nominal_power_w", "nominal power")
        if self.peukert_exponent is not None and self.peukert_exponent < 1.0:
            _fail(f"{path}.peukert_exponent", "Peukert exponent must be >= 1")
        if self.self_discharge_w is not None and self.self_discharge_w < 0:
            _fail(f"{path}.self_discharge_w", "self-discharge power must be >= 0")


@dataclass
class ThermalDef:
    """Thermal condition: a named preset, explicit parameters, or both.

    ``condition`` references
    :func:`repro.experiments.scenarios.thermal_condition` (evaluated with
    the platform's IP count); explicit fields override the preset.
    """

    condition: Optional[str] = None
    ambient_c: Optional[float] = None
    initial_c: Optional[float] = None
    resistance_c_per_w: Optional[float] = None
    capacitance_j_per_c: Optional[float] = None
    fan_resistance_scale: Optional[float] = None

    _FIELDS = ("condition", "ambient_c", "initial_c", "resistance_c_per_w",
               "capacitance_j_per_c", "fan_resistance_scale")

    def to_dict(self) -> Dict[str, Any]:
        return {key: getattr(self, key) for key in self._FIELDS
                if getattr(self, key) is not None}

    @classmethod
    def from_dict(cls, value: Any, path: str = "thermal") -> "ThermalDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, cls._FIELDS)
        return cls(
            condition=_get_str(mapping, "condition", path),
            ambient_c=_get_float(mapping, "ambient_c", path),
            initial_c=_get_float(mapping, "initial_c", path),
            resistance_c_per_w=_get_float(mapping, "resistance_c_per_w", path),
            capacitance_j_per_c=_get_float(mapping, "capacitance_j_per_c", path),
            fan_resistance_scale=_get_float(mapping, "fan_resistance_scale", path),
        )

    def validate(self, path: str) -> None:
        _check_choice(self.condition, f"{path}.condition",
                      THERMAL_CONDITIONS, "thermal condition")
        _check_positive(self.resistance_c_per_w, f"{path}.resistance_c_per_w",
                        "thermal resistance")
        _check_positive(self.capacitance_j_per_c, f"{path}.capacitance_j_per_c",
                        "thermal capacitance")
        if self.fan_resistance_scale is not None and not 0.0 < self.fan_resistance_scale <= 1.0:
            _fail(f"{path}.fan_resistance_scale",
                  f"fan resistance scale must be in (0, 1], got {self.fan_resistance_scale!r}")
        if (self.ambient_c is not None and self.initial_c is not None
                and self.initial_c < self.ambient_c - 1e-9):
            _fail(f"{path}.initial_c", "initial temperature cannot be below ambient")


@dataclass
class GemDef:
    """Global Energy Manager: presence plus its tunables."""

    enabled: bool = False
    high_priority_count: Optional[int] = None
    evaluation_interval_us: Optional[float] = None
    forced_state: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.enabled:
            data["enabled"] = True
        if self.high_priority_count is not None:
            data["high_priority_count"] = self.high_priority_count
        if self.evaluation_interval_us is not None:
            data["evaluation_interval_us"] = self.evaluation_interval_us
        if self.forced_state is not None:
            data["forced_state"] = self.forced_state
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "gem") -> "GemDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path,
                    ("enabled", "high_priority_count", "evaluation_interval_us",
                     "forced_state"))
        return cls(
            enabled=_get_bool(mapping, "enabled", path, default=False),
            high_priority_count=_get_int(mapping, "high_priority_count", path),
            evaluation_interval_us=_get_float(mapping, "evaluation_interval_us", path),
            forced_state=_get_str(mapping, "forced_state", path),
        )

    def has_overrides(self) -> bool:
        """True when any GEM tunable differs from the library defaults."""
        return (self.high_priority_count is not None
                or self.evaluation_interval_us is not None
                or self.forced_state is not None)

    def validate(self, path: str) -> None:
        if self.high_priority_count is not None and self.high_priority_count < 1:
            _fail(f"{path}.high_priority_count",
                  "at least one priority rank must stay enabled")
        _check_positive(self.evaluation_interval_us,
                        f"{path}.evaluation_interval_us", "evaluation interval")
        _check_choice(self.forced_state, f"{path}.forced_state",
                      LOW_STATE_NAMES, "sleep/off state")
        if not self.enabled and self.has_overrides():
            _fail(path, "GEM tunables are set but 'enabled' is false")


@dataclass
class PolicyDef:
    """Default power-management policy of the platform.

    Optional: a platform without a policy runs under whatever
    :class:`~repro.dpm.controller.DpmSetup` the caller passes (default: the
    paper's DPM).  When present it selects the named setup and its knobs —
    and explicit setups passed by experiments/campaigns still win.

    ``rules`` (``paper`` policy only) replaces the paper's Table 1 with a
    custom first-match rule list in the
    :meth:`repro.dpm.rules.RuleTable.as_dicts` format: each entry has a
    ``state`` plus optional ``priorities``/``batteries``/``temperatures``/
    ``buses`` lists (``null``/omitted meaning "don't care") and a ``label``.
    """

    name: str = "paper"
    predictor: Optional[str] = None
    allow_off: Optional[bool] = None
    timeout_ms: Optional[float] = None
    reevaluation_interval_us: Optional[float] = None
    defer_state: Optional[str] = None
    estimation_state: Optional[str] = None
    rules: Optional[List[Dict[str, Any]]] = None

    _FIELDS = ("name", "predictor", "allow_off", "timeout_ms",
               "reevaluation_interval_us", "defer_state", "estimation_state",
               "rules")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        for key in self._FIELDS[1:]:
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "policy") -> "PolicyDef":
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, cls._FIELDS)
        rules = _get_list(mapping, "rules", path)
        if rules is not None:
            rules = [
                dict(_as_mapping(item, f"{path}.rules[{index}]"))
                for index, item in enumerate(rules)
            ]
        return cls(
            name=_get_str(mapping, "name", path, default="paper"),
            predictor=_get_str(mapping, "predictor", path),
            allow_off=_get_bool(mapping, "allow_off", path),
            timeout_ms=_get_float(mapping, "timeout_ms", path),
            reevaluation_interval_us=_get_float(mapping, "reevaluation_interval_us", path),
            defer_state=_get_str(mapping, "defer_state", path),
            estimation_state=_get_str(mapping, "estimation_state", path),
            rules=rules,
        )

    def validate(self, path: str) -> None:
        _check_choice(self.name, f"{path}.name", POLICY_NAMES, "policy")
        _check_choice(self.predictor, f"{path}.predictor", PREDICTOR_NAMES, "predictor")
        if self.predictor is not None and self.name != "paper":
            _fail(f"{path}.predictor",
                  f"a predictor can only be chosen for the 'paper' policy, not {self.name!r}")
        if self.allow_off is not None and self.name not in ("paper", "greedy-sleep"):
            _fail(f"{path}.allow_off",
                  f"'allow_off' only applies to 'paper'/'greedy-sleep', not {self.name!r}")
        if self.timeout_ms is not None and self.name != "fixed-timeout":
            _fail(f"{path}.timeout_ms",
                  f"'timeout_ms' only applies to 'fixed-timeout', not {self.name!r}")
        _check_positive(self.timeout_ms, f"{path}.timeout_ms", "timeout")
        _check_positive(self.reevaluation_interval_us,
                        f"{path}.reevaluation_interval_us", "re-evaluation interval")
        _check_choice(self.defer_state, f"{path}.defer_state",
                      LOW_STATE_NAMES, "sleep/off state")
        _check_choice(self.estimation_state, f"{path}.estimation_state",
                      ON_STATE_NAMES, "ON state")
        if self.rules is not None:
            if self.name != "paper":
                _fail(f"{path}.rules",
                      f"a custom rule table can only be given for the 'paper' "
                      f"policy, not {self.name!r}")
            if not self.rules:
                _fail(f"{path}.rules", "a custom rule table needs at least one rule")
            for index, entry in enumerate(self.rules):
                self._validate_rule(entry, f"{path}.rules[{index}]")

    @staticmethod
    def _validate_rule(entry: Mapping[str, Any], path: str) -> None:
        """Structural check of one custom rule entry (string vocabulary)."""
        if not isinstance(entry, Mapping):
            _fail(path, f"expected a rule mapping, got {type(entry).__name__}")
        _check_keys(entry, path, _RULE_ENTRY_KEYS)
        if "state" not in entry:
            _fail(path, "missing required rule field 'state'")
        _check_choice(entry["state"], f"{path}.state", RULE_STATE_NAMES,
                      "rule state")
        label = entry.get("label")
        if label is not None and not isinstance(label, str):
            _fail(f"{path}.label", f"expected a string, got {type(label).__name__}")
        for key, vocabulary, noun in (
            ("priorities", PRIORITY_NAMES, "task priority"),
            ("batteries", BATTERY_LEVEL_NAMES, "battery level"),
            ("temperatures", TEMPERATURE_LEVEL_NAMES, "temperature level"),
            ("buses", BUS_LEVEL_NAMES, "bus level"),
        ):
            values = entry.get(key)
            if values is None:
                continue
            if not isinstance(values, list):
                _fail(f"{path}.{key}",
                      f"expected a list of names or null, got {type(values).__name__}")
            if not values:
                _fail(f"{path}.{key}",
                      "an empty list matches nothing; use null for don't-care")
            for position, name in enumerate(values):
                _check_choice(name, f"{path}.{key}[{position}]", vocabulary, noun)


# ----------------------------------------------------------------------
# The platform specification
# ----------------------------------------------------------------------
@dataclass
class PlatformSpec:
    """Complete declarative description of a simulatable platform."""

    name: str
    ips: List[IpDef] = field(default_factory=list)
    description: str = ""
    battery: BatteryDef = field(default_factory=BatteryDef)
    thermal: ThermalDef = field(default_factory=ThermalDef)
    gem: GemDef = field(default_factory=GemDef)
    bus: BusDef = field(default_factory=BusDef)
    trace: TraceDef = field(default_factory=TraceDef)
    policy: Optional[PolicyDef] = None
    max_time_ms: float = 5000.0
    sample_interval_us: float = 1000.0
    with_fan: bool = True
    fan_power_w: float = 0.05

    #: legacy (pre-BusDef) top-level spellings, still accepted on read
    _LEGACY_BUS_KEYS = ("with_bus", "bus_words_per_second")

    _TOP_FIELDS = ("format", "name", "description", "ips", "battery", "thermal",
                   "gem", "bus", "trace", "policy", "max_time_ms",
                   "sample_interval_us", "with_fan", "fan_power_w") + _LEGACY_BUS_KEYS

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data view (defaults omitted, hash-stable)."""
        data: Dict[str, Any] = {"format": SPEC_FORMAT, "name": self.name}
        if self.description:
            data["description"] = self.description
        data["ips"] = [ip.to_dict() for ip in self.ips]
        for key, section in (("battery", self.battery), ("thermal", self.thermal),
                             ("gem", self.gem), ("bus", self.bus),
                             ("trace", self.trace)):
            encoded = section.to_dict()
            if encoded:
                data[key] = encoded
        if self.policy is not None:
            data["policy"] = self.policy.to_dict()
        if self.max_time_ms != 5000.0:
            data["max_time_ms"] = self.max_time_ms
        if self.sample_interval_us != 1000.0:
            data["sample_interval_us"] = self.sample_interval_us
        if not self.with_fan:
            data["with_fan"] = False
        if self.fan_power_w != 0.05:
            data["fan_power_w"] = self.fan_power_w
        return data

    @classmethod
    def from_dict(cls, value: Any, path: str = "platform") -> "PlatformSpec":
        """Build and validate a spec from a plain dictionary (parsed JSON/TOML)."""
        mapping = _as_mapping(value, path)
        _check_keys(mapping, path, cls._TOP_FIELDS)
        fmt = _get_str(mapping, "format", path, default=SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            _fail(f"{path}.format",
                  f"unsupported spec format {fmt!r} (this library reads {SPEC_FORMAT!r})")
        name = _get_str(mapping, "name", path, required=True)
        ips = _get_list(mapping, "ips", path)
        if ips is None:
            _fail(path, f"platform {name!r} is missing its 'ips' list")
        spec = cls(
            name=name,
            description=_get_str(mapping, "description", path, default=""),
            ips=[
                IpDef.from_dict(item, f"{path}.ips[{index}]")
                for index, item in enumerate(ips)
            ],
            battery=(
                BatteryDef() if "battery" not in mapping
                else BatteryDef.from_dict(mapping["battery"], f"{path}.battery")
            ),
            thermal=(
                ThermalDef() if "thermal" not in mapping
                else ThermalDef.from_dict(mapping["thermal"], f"{path}.thermal")
            ),
            gem=(
                GemDef() if "gem" not in mapping
                else GemDef.from_dict(mapping["gem"], f"{path}.gem")
            ),
            bus=cls._bus_from_mapping(mapping, path),
            trace=(
                TraceDef() if "trace" not in mapping
                else TraceDef.from_dict(mapping["trace"], f"{path}.trace")
            ),
            policy=(
                None if "policy" not in mapping
                else PolicyDef.from_dict(mapping["policy"], f"{path}.policy")
            ),
            max_time_ms=_get_float(mapping, "max_time_ms", path, default=5000.0),
            sample_interval_us=_get_float(mapping, "sample_interval_us", path,
                                          default=1000.0),
            with_fan=_get_bool(mapping, "with_fan", path, default=True),
            fan_power_w=_get_float(mapping, "fan_power_w", path, default=0.05),
        )
        spec.validate()
        return spec

    @classmethod
    def _bus_from_mapping(cls, mapping: Mapping[str, Any], path: str) -> BusDef:
        """Read the ``bus`` section, honouring the legacy flat spellings."""
        legacy = [key for key in cls._LEGACY_BUS_KEYS if key in mapping]
        if "bus" in mapping:
            if legacy:
                _fail(path,
                      f"'bus' cannot be combined with the legacy key(s) "
                      f"{_choices(legacy)}")
            return BusDef.from_dict(mapping["bus"], f"{path}.bus")
        if not legacy:
            return BusDef()
        if not _get_bool(mapping, "with_bus", path, default=False):
            # In the legacy format a bandwidth without 'with_bus' was inert;
            # keep such archived specs loading (and equal to bus-less ones),
            # but still reject values the old validation refused.
            inert = _get_float(mapping, "bus_words_per_second", path)
            _check_positive(inert, f"{path}.bus_words_per_second", "bus throughput")
            return BusDef()
        return BusDef(
            enabled=True,
            words_per_second=_get_float(mapping, "bus_words_per_second", path,
                                        default=50e6),
        )

    # -- validation -----------------------------------------------------
    def validate(self) -> "PlatformSpec":
        """Check the whole tree; raises :class:`PlatformError` with a path."""
        if not self.name:
            _fail("platform.name", "the platform needs a non-empty name")
        if not self.ips:
            _fail("platform.ips", f"platform {self.name!r} defines no IPs")
        names = [ip.name for ip in self.ips]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            _fail("platform.ips", f"duplicate IP name(s): {_choices(duplicates)}")
        for index, ip in enumerate(self.ips):
            ip.validate(f"platform.ips[{index}]")
        self.battery.validate("platform.battery")
        self.thermal.validate("platform.thermal")
        self.gem.validate("platform.gem")
        self.bus.validate("platform.bus")
        self.trace.validate("platform.trace")
        if self.policy is not None:
            self.policy.validate("platform.policy")
        _check_positive(self.max_time_ms, "platform.max_time_ms", "max time")
        _check_positive(self.sample_interval_us, "platform.sample_interval_us",
                        "sample interval")
        if self.fan_power_w < 0:
            _fail("platform.fan_power_w", "fan power must be >= 0")
        if not self.bus.enabled:
            for index, ip in enumerate(self.ips):
                if ip.bus_words_per_task or ip.bus_priority is not None:
                    _fail("platform.bus",
                          f"ips[{index}] ({ip.name!r}) sets bus traffic but the "
                          "platform has no bus (set bus.enabled: true)")
        return self

    def validation_error(self) -> Optional[str]:
        """Non-raising :meth:`validate`: the error message, or ``None`` if valid.

        The strategy-facing hook of ``repro.fuzz``: generated spec trees are
        checked (and property-tested) without try/except noise at call sites.
        """
        try:
            self.validate()
        except PlatformError as error:
            return str(error)
        return None
