"""Field-by-field comparison of two :class:`PlatformSpec` trees.

The diff is computed over the *canonical* serialized form
(:meth:`PlatformSpec.to_dict`), which omits defaulted sections — so two
specs compare equal exactly when they would serialize identically, and
differences are reported against the same dotted paths the validator uses
(``platform.ips[2].psm.transitions[0].energy_j``).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.platform.spec import PlatformSpec

__all__ = ["SpecDiffEntry", "diff_specs", "render_spec_diff"]


class _Missing:
    """Sentinel for "this side has no value at the path"."""

    def __repr__(self) -> str:
        return "<missing>"


_MISSING = _Missing()

# (dotted path, value in A or _MISSING, value in B or _MISSING)
SpecDiffEntry = Tuple[str, Any, Any]


def _walk(path: str, a: Any, b: Any, out: List[SpecDiffEntry]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            child = f"{path}.{key}" if path else key
            _walk(child, a.get(key, _MISSING), b.get(key, _MISSING), out)
        return
    if isinstance(a, list) and isinstance(b, list):
        for index in range(max(len(a), len(b))):
            left = a[index] if index < len(a) else _MISSING
            right = b[index] if index < len(b) else _MISSING
            _walk(f"{path}[{index}]", left, right, out)
        return
    if a is _MISSING and b is _MISSING:
        return
    if type(a) is type(b) and a == b:
        return
    # bool is an int subclass; True == 1 must still be reported.
    if a == b and isinstance(a, (int, float)) and isinstance(b, (int, float)) and (
        isinstance(a, bool) == isinstance(b, bool)
    ):
        return
    out.append((path, a, b))


def diff_specs(a: PlatformSpec, b: PlatformSpec) -> List[SpecDiffEntry]:
    """Return the list of paths where ``a`` and ``b`` differ.

    Each entry is ``(dotted_path, value_a, value_b)``; a side that has no
    value at the path (section omitted, shorter list) carries the
    ``<missing>`` sentinel.  An empty list means the specs are canonically
    identical.
    """
    out: List[SpecDiffEntry] = []
    _walk("", a.to_dict(), b.to_dict(), out)
    return out


def _show(value: Any) -> str:
    if isinstance(value, _Missing):
        return "<missing>"
    return repr(value)


def render_spec_diff(
    a: PlatformSpec,
    b: PlatformSpec,
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """Human-readable rendering of :func:`diff_specs`.

    Returns an empty string when the specs match.
    """
    entries = diff_specs(a, b)
    if not entries:
        return ""
    lines = [f"{len(entries)} difference(s) between {label_a} and {label_b}:"]
    for path, left, right in entries:
        lines.append(f"  {path}: {_show(left)} -> {_show(right)}")
    return "\n".join(lines)
