"""The named workload library: realistic platforms beyond the paper rows.

Four hand-built archetypes — a bursty phone-like handset, a diurnal server,
an IoT duty-cycle node and a thermally-throttled sustained load — registered
at import time alongside the six paper scenarios, shipped as canonical JSON
under ``examples/specs/`` (pinned equal by ``tests/fuzz/test_library.py``)
and exercised by the same differential-oracle harness as the generated fuzz
platforms.  Use them by name anywhere a scenario name works::

    repro-dpm platform run --name phone-bursty
    repro-dpm scenario iot-duty-cycle
"""

from __future__ import annotations

from typing import Dict, List

from repro.platform.registry import has_platform, register_platform
from repro.platform.spec import (
    BatteryDef,
    BusDef,
    GemDef,
    IpDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    ThermalDef,
    WorkloadDef,
)

__all__ = [
    "LIBRARY_PLATFORM_NAMES",
    "iot_duty_cycle",
    "library_platforms",
    "phone_bursty",
    "register_library",
    "server_diurnal",
    "sustained_throttled",
]


def phone_bursty() -> PlatformSpec:
    """Handset-style platform: a bursty apps core plus a chatty modem.

    Interactive bursts separated by long quiet gaps are the textbook case
    for predictive shutdown — plenty of idle above break-even — while the
    modem's steady low-rate traffic keeps the shared bus from idling.
    """
    return PlatformSpec(
        name="phone-bursty",
        description=(
            "Bursty phone-like handset: interactive app bursts over an idle "
            "baseline, modem keep-alives on the shared bus"
        ),
        ips=[
            IpDef(
                name="apps",
                workload=WorkloadDef(
                    kind="bursty",
                    burst_count=4,
                    tasks_per_burst=5,
                    seed=11,
                    cycles_min=40_000,
                    cycles_max=120_000,
                    intra_burst_idle_us=50.0,
                    inter_burst_idle_us=8_000.0,
                ),
                static_priority=2,
                bus_words_per_task=256,
                bus_priority=1,
            ),
            IpDef(
                name="modem",
                workload=WorkloadDef(
                    kind="periodic",
                    task_count=20,
                    cycles=12_000,
                    idle_us=2_000.0,
                    priority="high",
                ),
                static_priority=3,
                bus_words_per_task=64,
                bus_priority=2,
            ),
        ],
        battery=BatteryDef(condition="medium"),
        bus=BusDef(enabled=True, words_per_second=10e6, arbitration="priority"),
        policy=PolicyDef(name="paper", predictor="ewma"),
        max_time_ms=400.0,
        sample_interval_us=1000.0,
    )


def server_diurnal() -> PlatformSpec:
    """Mains-powered server: daytime request storms, deep night valleys.

    The diurnal day/night cycle is compressed into bursts with very long
    inter-burst gaps; on AC power the interesting axis is thermal, not
    battery, so the fan stays on and the thermal condition is warm.
    """
    return PlatformSpec(
        name="server-diurnal",
        description=(
            "Diurnal server: compressed day/night request cycles on AC "
            "power, warm ambient, fan-assisted"
        ),
        ips=[
            IpDef(
                name="web",
                workload=WorkloadDef(
                    kind="bursty",
                    burst_count=3,
                    tasks_per_burst=8,
                    seed=23,
                    cycles_min=60_000,
                    cycles_max=160_000,
                    intra_burst_idle_us=100.0,
                    inter_burst_idle_us=25_000.0,
                ),
                static_priority=2,
            ),
            IpDef(
                name="db",
                workload=WorkloadDef(
                    kind="random",
                    task_count=12,
                    seed=29,
                    cycles_min=30_000,
                    cycles_max=90_000,
                    idle_min_us=1_000.0,
                    idle_max_us=6_000.0,
                ),
                static_priority=3,
            ),
        ],
        battery=BatteryDef(condition="full", on_ac_power=True),
        thermal=ThermalDef(condition="high"),
        policy=PolicyDef(name="paper", predictor="adaptive"),
        max_time_ms=500.0,
        sample_interval_us=1000.0,
    )


def iot_duty_cycle() -> PlatformSpec:
    """Battery-constrained IoT node: tiny periodic samples, mostly asleep.

    Sub-percent duty cycle with a low battery: the deepest sleep states
    (``allow_off``) dominate the energy budget, and the slow sampling
    interval keeps the monitor overhead proportionate.
    """
    return PlatformSpec(
        name="iot-duty-cycle",
        description=(
            "IoT duty-cycle sensor node: short periodic sampling tasks, "
            "long sleeps, low battery, OFF allowed"
        ),
        ips=[
            IpDef(
                name="sensor",
                workload=WorkloadDef(
                    kind="periodic",
                    task_count=10,
                    cycles=8_000,
                    idle_us=40_000.0,
                    priority="low",
                ),
                static_priority=1,
                psm=PsmDef(wakeup_latency_us={"SL1": 40.0}),
            ),
        ],
        battery=BatteryDef(condition="low"),
        policy=PolicyDef(name="paper", allow_off=True),
        max_time_ms=800.0,
        sample_interval_us=2000.0,
    )


def sustained_throttled() -> PlatformSpec:
    """Fanless sustained compute under a hot ambient: the GEM's thermal beat.

    Back-to-back DSP work with no idle to harvest — the paper policy can
    only downshift, and the GEM's thermal rules are the mechanism that
    keeps the hot, fanless package in check.
    """
    return PlatformSpec(
        name="sustained-throttled",
        description=(
            "Thermally-throttled sustained load: continuous high-activity "
            "work, hot ambient, no fan, GEM thermal rules active"
        ),
        ips=[
            IpDef(
                name="dsp",
                workload=WorkloadDef(kind="high_activity", task_count=30, seed=37),
                static_priority=3,
            ),
            IpDef(
                name="dma",
                workload=WorkloadDef(
                    kind="random",
                    task_count=10,
                    seed=41,
                    cycles_min=20_000,
                    cycles_max=60_000,
                    idle_min_us=500.0,
                    idle_max_us=2_000.0,
                    priorities=["low", "medium"],
                ),
                static_priority=1,
            ),
        ],
        battery=BatteryDef(condition="high"),
        thermal=ThermalDef(condition="high"),
        gem=GemDef(enabled=True, high_priority_count=1),
        with_fan=False,
        max_time_ms=400.0,
        sample_interval_us=1000.0,
    )


#: builders in registration order
_BUILDERS = (phone_bursty, server_diurnal, iot_duty_cycle, sustained_throttled)

LIBRARY_PLATFORM_NAMES = tuple(builder().name for builder in _BUILDERS)


def library_platforms() -> List[PlatformSpec]:
    """Fresh spec objects of the whole library, in registration order."""
    return [builder() for builder in _BUILDERS]


def register_library() -> Dict[str, PlatformSpec]:
    """Register every library platform (idempotent); returns name -> spec."""
    registered = {}
    for builder in _BUILDERS:
        spec = builder()
        if not has_platform(spec.name):
            register_platform(spec)
        registered[spec.name] = spec
    return registered
