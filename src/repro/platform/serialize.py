"""Load and save :class:`~repro.platform.spec.PlatformSpec` files.

JSON is the primary interchange format; TOML is supported symmetrically
(read via :mod:`tomllib`, written by the small emitter below).  The TOML
emitter intentionally produces *inline* tables and arrays — every value a
platform spec contains is representable that way, the output is valid TOML
v1.0 and, crucially, round-trips through ``tomllib`` to the exact same
dictionary, so ``spec -> TOML -> spec`` is lossless just like JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, Union

from repro.errors import PlatformError
from repro.platform.spec import PlatformSpec

__all__ = [
    "dumps_toml",
    "load_platform",
    "load_spec_dict",
    "save_platform",
    "spec_from_json",
    "spec_from_toml",
    "spec_hash",
    "spec_to_json",
    "spec_to_toml",
]

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


# ----------------------------------------------------------------------
# Minimal TOML emitter (inline style)
# ----------------------------------------------------------------------
def _toml_key(key: str) -> str:
    if _BARE_KEY.match(key):
        return key
    return json.dumps(key)  # JSON string escaping is valid for TOML basic strings


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise PlatformError("platform specs cannot contain NaN/Inf values")
        text = repr(value)
        # TOML floats need a dot or exponent ("5e+16" has one, "50.0" too).
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, dict):
        inner = ", ".join(f"{_toml_key(k)} = {_toml_value(v)}" for k, v in value.items())
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise PlatformError(f"cannot encode {type(value).__name__} value {value!r} as TOML")


def dumps_toml(data: Dict[str, Any]) -> str:
    """Encode a plain dictionary as TOML (top-level keys, inline values)."""
    lines = [f"{_toml_key(key)} = {_toml_value(value)}" for key, value in data.items()]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Spec <-> text
# ----------------------------------------------------------------------
def spec_to_json(spec: PlatformSpec, indent: int = 2) -> str:
    """Canonical JSON encoding of ``spec``."""
    return json.dumps(spec.to_dict(), indent=indent, sort_keys=False) + "\n"


def spec_from_json(text: str) -> PlatformSpec:
    """Parse and validate a spec from JSON text."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise PlatformError(f"invalid JSON: {error}") from None
    return PlatformSpec.from_dict(data)


def spec_hash(spec: PlatformSpec) -> str:
    """Content hash of ``spec``'s canonical form (hex SHA-256).

    ``to_dict`` omits defaulted fields, so two specs that differ only in
    *how* they were written (explicit defaults, key order, formatting)
    hash identically.  The fuzz corpus uses this as the content address
    of saved regression specs, and the fuzz harness derives per-spec
    replay seeds from it.
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_to_toml(spec: PlatformSpec) -> str:
    """Canonical TOML encoding of ``spec``."""
    return dumps_toml(spec.to_dict())


def spec_from_toml(text: str) -> PlatformSpec:
    """Parse and validate a spec from TOML text (Python >= 3.11)."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        raise PlatformError(
            "TOML platform specs need Python >= 3.11 (tomllib); use JSON instead"
        ) from None
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise PlatformError(f"invalid TOML: {error}") from None
    return PlatformSpec.from_dict(data)


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def load_spec_dict(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read a ``.json``/``.toml`` file into a plain dictionary (no validation).

    Every way the *file itself* can be wrong — a directory, a missing or
    unreadable path, binary garbage that is not UTF-8 — surfaces as a
    :class:`PlatformError` naming the path, never as a raw traceback:
    ``repro-dpm platform validate`` reports these as ordinary failures.
    """
    text_path = str(path)
    if os.path.isdir(text_path):
        raise PlatformError(
            f"{text_path}: is a directory, not a spec file (expected .json or .toml)"
        )
    if text_path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise PlatformError(
                "TOML platform specs need Python >= 3.11 (tomllib); use JSON instead"
            ) from None
        with open(text_path, "rb") as handle:
            try:
                return tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise PlatformError(f"{text_path}: invalid TOML: {error}") from None
            except UnicodeDecodeError as error:
                raise PlatformError(f"{text_path}: not valid UTF-8: {error}") from None
    if text_path.endswith(".json"):
        with open(text_path, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as error:
                raise PlatformError(f"{text_path}: invalid JSON: {error}") from None
            except UnicodeDecodeError as error:
                raise PlatformError(f"{text_path}: not valid UTF-8: {error}") from None
    raise PlatformError(
        f"unsupported spec file {text_path!r} (expected .json or .toml)"
    )


def load_platform(path: Union[str, os.PathLike]) -> PlatformSpec:
    """Load and validate a platform spec from a ``.json``/``.toml`` file."""
    try:
        return PlatformSpec.from_dict(load_spec_dict(path))
    except PlatformError as error:
        message = str(error)
        if not message.startswith(str(path)):
            raise PlatformError(f"{path}: {message}") from None
        raise


def save_platform(spec: PlatformSpec, path: Union[str, os.PathLike]) -> None:
    """Write ``spec`` to a ``.json`` or ``.toml`` file (by extension)."""
    text_path = str(path)
    if text_path.endswith(".toml"):
        text = spec_to_toml(spec)
    elif text_path.endswith(".json"):
        text = spec_to_json(spec)
    else:
        raise PlatformError(
            f"unsupported platform spec file {text_path!r} (expected .json or .toml)"
        )
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(text)
