"""The named-platform registry.

Maps case-insensitive names to :class:`~repro.platform.spec.PlatformSpec`
objects.  The six paper scenarios (A1–A4, B, C) are registered as thin
built-in specs at import time — they are the proof that the declarative
format subsumes the hardcoded catalogue: the pinned goldens of
``tests/golden/scenario_metrics.json`` are reproduced bit-identically
through this path.

User platforms are added with :func:`register_platform` (or
:meth:`~repro.platform.builder.PlatformBuilder.register`); every consumer of
scenario names — ``scenario_by_name``, the CLI, campaign specs — resolves
through :func:`platform_by_name`, so a registered platform is immediately
usable everywhere.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Sequence

from repro.errors import PlatformError
from repro.platform.spec import (
    BatteryDef,
    GemDef,
    IpDef,
    PlatformSpec,
    ThermalDef,
    WorkloadDef,
)

__all__ = [
    "PAPER_PLATFORM_NAMES",
    "has_platform",
    "paper_platforms",
    "platform_by_name",
    "platform_names",
    "register_platform",
    "unregister_platform",
]

#: The paper's Table-2 rows, in order.
PAPER_PLATFORM_NAMES = ("A1", "A2", "A3", "A4", "B", "C")

_REGISTRY: Dict[str, PlatformSpec] = {}


# ----------------------------------------------------------------------
# Registry operations
# ----------------------------------------------------------------------
def register_platform(spec: PlatformSpec, overwrite: bool = False) -> PlatformSpec:
    """Publish ``spec`` under its (case-insensitive) name.

    Built-in paper platforms cannot be overwritten — the goldens pin them.
    """
    spec.validate()
    key = spec.name.lower()
    if spec.name.upper() in PAPER_PLATFORM_NAMES and key in _REGISTRY:
        raise PlatformError(
            f"the paper platform {spec.name!r} is built in and cannot be replaced"
        )
    if key in _REGISTRY and not overwrite:
        raise PlatformError(
            f"a platform named {spec.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    # Snapshot the spec: the registry must not alias an object the caller
    # may keep mutating (platform_by_name deep-copies on read for the same
    # reason).
    _REGISTRY[key] = copy.deepcopy(spec)
    return spec


def unregister_platform(name: str) -> None:
    """Remove a user-registered platform (built-ins are protected)."""
    if name.upper() in PAPER_PLATFORM_NAMES:
        raise PlatformError(f"the paper platform {name!r} is built in and cannot be removed")
    try:
        del _REGISTRY[name.lower()]
    except KeyError:
        raise PlatformError(f"no platform named {name!r} is registered") from None


def has_platform(name: str) -> bool:
    """True when ``name`` resolves to a registered platform."""
    return name.lower() in _REGISTRY


def platform_by_name(name: str) -> PlatformSpec:
    """A deep copy of the registered platform (callers may mutate freely)."""
    try:
        spec = _REGISTRY[name.lower()]
    except KeyError:
        raise PlatformError(
            f"unknown platform {name!r}; registered platforms: "
            f"{', '.join(platform_names())}"
        ) from None
    return copy.deepcopy(spec)


def platform_names() -> List[str]:
    """All registered names: the paper rows first, then customs, sorted."""
    customs = sorted(
        spec.name for key, spec in _REGISTRY.items()
        if spec.name not in PAPER_PLATFORM_NAMES
    )
    return list(PAPER_PLATFORM_NAMES) + customs


def paper_platforms() -> List[PlatformSpec]:
    """Fresh copies of the six paper platforms, in Table-2 order."""
    return [platform_by_name(name) for name in PAPER_PLATFORM_NAMES]


# ----------------------------------------------------------------------
# The six paper rows as thin built-in specs
# ----------------------------------------------------------------------
def _single_ip_platform(name: str, battery: str, temperature: str) -> PlatformSpec:
    return PlatformSpec(
        name=name,
        description=f"single IP, battery {battery}, temperature {temperature}",
        ips=[
            IpDef(
                name="ip1",
                workload=WorkloadDef(kind="scenario_a", seed=11, task_count=40),
                static_priority=1,
            )
        ],
        battery=BatteryDef(condition=battery),
        thermal=ThermalDef(condition=temperature),
        gem=GemDef(enabled=False),
    )


def _multi_ip_platform(
    name: str, battery: str, temperature: str, high_activity_ips: Sequence[int]
) -> PlatformSpec:
    ips = []
    for index in range(1, 5):
        if index in high_activity_ips:
            workload = WorkloadDef(
                kind="high_activity", task_count=24, seed=21 + index,
                name=f"ip{index}-busy",
            )
        else:
            workload = WorkloadDef(
                kind="low_activity", task_count=24, seed=21 + index,
                name=f"ip{index}-idle",
            )
        ips.append(IpDef(name=f"ip{index}", workload=workload, static_priority=index))
    return PlatformSpec(
        name=name,
        description=(
            f"GEM + 4 IPs, battery {battery}, temperature {temperature}, "
            f"high activity on IPs {sorted(high_activity_ips)}"
        ),
        ips=ips,
        battery=BatteryDef(condition=battery),
        thermal=ThermalDef(condition=temperature),
        gem=GemDef(enabled=True),
    )


def _register_builtins() -> None:
    for spec in (
        _single_ip_platform("A1", "full", "low"),
        _single_ip_platform("A2", "low", "low"),
        _single_ip_platform("A3", "full", "high"),
        _single_ip_platform("A4", "low", "high"),
        _multi_ip_platform("B", "low", "low", high_activity_ips=(1, 2)),
        _multi_ip_platform("C", "low", "low", high_activity_ips=(3, 4)),
    ):
        _REGISTRY[spec.name.lower()] = spec.validate()


_register_builtins()
