"""Fluent construction of :class:`~repro.platform.spec.PlatformSpec` trees.

Writing the dataclass tree by hand is fine for files; in Python the builder
reads better and validates at the end::

    spec = (
        PlatformBuilder("octa")
        .describe("asymmetric 8-IP platform")
        .battery("low")
        .thermal("high")
        .gem(high_priority_count=3)
        .ip("big0", workload={"kind": "high_activity", "task_count": 12, "seed": 7},
            priority=1, max_frequency_hz=400e6)
        .ip("little0", workload={"kind": "low_activity", "task_count": 12, "seed": 8},
            priority=5, max_frequency_hz=100e6, max_voltage_v=0.9)
        .build()
    )

Every method returns the builder, :meth:`build` returns the validated spec
(raising :class:`~repro.errors.PlatformError` with a dotted path on
mistakes) and :meth:`register` additionally publishes it in the named
platform registry.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from repro.errors import PlatformError
from repro.platform.spec import (
    BatteryDef,
    BusDef,
    GemDef,
    IpDef,
    OperatingPointDef,
    PlatformSpec,
    PolicyDef,
    PsmDef,
    ThermalDef,
    TraceDef,
    WorkloadDef,
)

__all__ = ["PlatformBuilder"]


def _as_workload(value: Union[WorkloadDef, Mapping[str, Any], None], ip: str) -> WorkloadDef:
    if value is None:
        raise PlatformError(f"ip {ip!r}: a workload is required (WorkloadDef or mapping)")
    if isinstance(value, WorkloadDef):
        return value
    if isinstance(value, Mapping):
        return WorkloadDef.from_dict(value, f"ip {ip!r}: workload")
    raise PlatformError(
        f"ip {ip!r}: workload must be a WorkloadDef or a mapping, got {type(value).__name__}"
    )


def _as_psm(value: Union[PsmDef, Mapping[str, Any], None], ip: str) -> Optional[PsmDef]:
    if value is None or isinstance(value, PsmDef):
        return value
    if isinstance(value, Mapping):
        return PsmDef.from_dict(value, f"ip {ip!r}: psm")
    raise PlatformError(
        f"ip {ip!r}: psm must be a PsmDef or a mapping, got {type(value).__name__}"
    )


class PlatformBuilder:
    """Accumulates a :class:`PlatformSpec`, one fluent call at a time."""

    def __init__(self, name: str) -> None:
        self._spec = PlatformSpec(name=name)

    # -- metadata -------------------------------------------------------
    def describe(self, description: str) -> "PlatformBuilder":
        """Set the human-readable description."""
        self._spec.description = description
        return self

    # -- SoC-level sections --------------------------------------------
    def battery(self, condition: Optional[str] = None, **fields: Any) -> "PlatformBuilder":
        """Battery condition preset and/or explicit :class:`BatteryDef` fields."""
        self._spec.battery = BatteryDef(condition=condition, **fields)
        return self

    def thermal(self, condition: Optional[str] = None, **fields: Any) -> "PlatformBuilder":
        """Thermal condition preset and/or explicit :class:`ThermalDef` fields."""
        self._spec.thermal = ThermalDef(condition=condition, **fields)
        return self

    def gem(self, **fields: Any) -> "PlatformBuilder":
        """Enable the Global Energy Manager (optionally tuning it)."""
        self._spec.gem = GemDef(enabled=True, **fields)
        return self

    def no_gem(self) -> "PlatformBuilder":
        """Run the IPs under independent LEMs only (the default)."""
        self._spec.gem = GemDef(enabled=False)
        return self

    def policy(self, name: str = "paper", **fields: Any) -> "PlatformBuilder":
        """Set the platform's default power-management policy."""
        self._spec.policy = PolicyDef(name=name, **fields)
        return self

    def max_time_ms(self, value: float) -> "PlatformBuilder":
        """Simulation time budget in milliseconds."""
        self._spec.max_time_ms = float(value)
        return self

    def sample_interval_us(self, value: float) -> "PlatformBuilder":
        """Battery/temperature sampling interval in microseconds."""
        self._spec.sample_interval_us = float(value)
        return self

    def fan(self, power_w: float = 0.05) -> "PlatformBuilder":
        """Fit the supplementary fan (the GEM's worst-case action)."""
        self._spec.with_fan = True
        self._spec.fan_power_w = float(power_w)
        return self

    def no_fan(self) -> "PlatformBuilder":
        """Build the platform without a fan."""
        self._spec.with_fan = False
        return self

    def bus(
        self,
        words_per_second: float = 50e6,
        arbitration: str = "priority",
        timing: str = "event_driven",
        words_per_cycle: int = 1,
    ) -> "PlatformBuilder":
        """Fit the shared bus (see :class:`~repro.platform.spec.BusDef`)."""
        self._spec.bus = BusDef(
            enabled=True,
            words_per_second=float(words_per_second),
            arbitration=arbitration,
            timing=timing,
            words_per_cycle=words_per_cycle,
        )
        return self

    def no_bus(self) -> "PlatformBuilder":
        """Build the platform without a shared bus (the default)."""
        self._spec.bus = BusDef(enabled=False)
        return self

    def trace(
        self,
        format: str = "jsonl",
        path: Optional[str] = None,
        events: Optional[Any] = None,
    ) -> "PlatformBuilder":
        """Enable event tracing (see :class:`~repro.platform.spec.TraceDef`)."""
        self._spec.trace = TraceDef(
            enabled=True,
            format=format,
            path=path,
            events=list(events) if events is not None else [],
        )
        return self

    def no_trace(self) -> "PlatformBuilder":
        """Build the platform without event tracing (the default)."""
        self._spec.trace = TraceDef(enabled=False)
        return self

    # -- IPs ------------------------------------------------------------
    def ip(
        self,
        name: str,
        workload: Union[WorkloadDef, Mapping[str, Any], None] = None,
        priority: int = 1,
        initial_state: str = "ON1",
        bus_words_per_task: int = 0,
        bus_priority: Optional[int] = None,
        operating_points: Optional[Any] = None,
        psm: Union[PsmDef, Mapping[str, Any], None] = None,
        **characterization: Any,
    ) -> "PlatformBuilder":
        """Add one IP block.

        ``workload`` is a :class:`WorkloadDef` or its mapping form;
        ``operating_points`` a list of :class:`OperatingPointDef` (or
        mappings); any remaining keyword goes to the characterisation knobs
        of :class:`IpDef` (``max_frequency_hz``, ``idle_activity``, ...).
        """
        points = None
        if operating_points is not None:
            points = [
                point
                if isinstance(point, OperatingPointDef)
                else OperatingPointDef.from_dict(
                    point, f"ip {name!r}: operating_points[{index}]"
                )
                for index, point in enumerate(operating_points)
            ]
        try:
            ipdef = IpDef(
                name=name,
                workload=_as_workload(workload, name),
                static_priority=priority,
                initial_state=initial_state,
                bus_words_per_task=bus_words_per_task,
                bus_priority=bus_priority,
                operating_points=points,
                psm=_as_psm(psm, name),
                **characterization,
            )
        except TypeError as error:
            raise PlatformError(f"ip {name!r}: {error}") from None
        self._spec.ips.append(ipdef)
        return self

    # -- terminal operations -------------------------------------------
    def build(self) -> PlatformSpec:
        """Validate and return the accumulated spec."""
        return self._spec.validate()

    def register(self, overwrite: bool = False) -> PlatformSpec:
        """Validate, publish under the spec's name, and return the spec."""
        from repro.platform.registry import register_platform

        spec = self.build()
        register_platform(spec, overwrite=overwrite)
        return spec
