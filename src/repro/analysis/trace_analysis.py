"""Post-simulation analysis of PSM behaviour.

These helpers turn the residency and transition statistics kept by each
:class:`~repro.power.psm.PowerStateMachine` (and, optionally, the traced
state signals) into the summaries used by reports and tests: state residency
percentages, transition counts and the per-IP energy breakdown by category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import ExperimentError
from repro.power.energy import EnergyAccount
from repro.power.psm import PowerStateMachine
from repro.power.states import PowerState
from repro.sim.simtime import SimTime, ZERO_TIME

__all__ = ["StateResidency", "psm_residency", "transition_summary", "energy_breakdown"]


@dataclass
class StateResidency:
    """Residency summary of one PSM."""

    psm_name: str
    total: SimTime
    by_state: Dict[PowerState, SimTime] = field(default_factory=dict)

    def fraction(self, state: PowerState) -> float:
        """Fraction of the covered time spent in ``state``."""
        if self.total.is_zero:
            return 0.0
        return self.by_state.get(state, ZERO_TIME) / self.total

    def sleep_fraction(self) -> float:
        """Fraction of time spent in any sleep or off state."""
        return sum(self.fraction(state) for state in self.by_state if not state.is_on)

    def on_fraction(self) -> float:
        """Fraction of time spent in any execution state."""
        return sum(self.fraction(state) for state in self.by_state if state.is_on)

    def dominant_state(self) -> Optional[PowerState]:
        """The state with the largest residency (``None`` when empty)."""
        if not self.by_state:
            return None
        return max(self.by_state, key=lambda state: self.by_state[state].femtoseconds)

    def as_dict(self) -> Dict[str, float]:
        """State-name -> fraction mapping."""
        return {str(state): self.fraction(state) for state in self.by_state}


def psm_residency(psm: PowerStateMachine) -> StateResidency:
    """Summarise where a PSM spent its time (call after ``flush_energy``)."""
    residency = psm.residency()
    total = ZERO_TIME
    for duration in residency.values():
        total = total + duration
    return StateResidency(psm_name=psm.name, total=total, by_state=dict(residency))


def transition_summary(psms: Sequence[PowerStateMachine]) -> Dict[str, int]:
    """Aggregate transition counts (``"SRC->DST" -> count``) over many PSMs."""
    summary: Dict[str, int] = {}
    for psm in psms:
        for key, count in psm.transition_counts.items():
            summary[key] = summary.get(key, 0) + count
    return summary


def energy_breakdown(accounts: Sequence[EnergyAccount]) -> Dict[str, Dict[str, float]]:
    """Per-owner, per-category energy in joules."""
    if not accounts:
        raise ExperimentError("at least one energy account is required")
    return {account.owner: account.breakdown for account in accounts}
