"""Evaluation metrics.

The paper's Table 2 reports three figures per scenario, all relative to the
reference condition "task execution at the maximum clock frequency without
going to sleep or off mode":

* **energy saving (%)** — reduction of the total SoC energy;
* **temperature reduction (%)** — reduction of the average chip temperature
  rise above ambient;
* **average delay overhead (%)** — mean, over all executed tasks, of the
  extra latency of each task relative to its maximum-frequency execution
  time.

:func:`compare_runs` computes all three from a DPM run and a baseline run of
the same scenario; :class:`ScenarioMetrics` is the result record used by the
experiment runner, the report renderer and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import ExperimentError
from repro.soc.task import TaskExecution

__all__ = [
    "average_delay_overhead",
    "energy_saving",
    "temperature_reduction",
    "ScenarioMetrics",
    "compare_runs",
]


def energy_saving(baseline_energy_j: float, dpm_energy_j: float) -> float:
    """Fractional energy saving of the DPM run versus the baseline run."""
    if baseline_energy_j <= 0.0:
        raise ExperimentError("baseline energy must be positive")
    if dpm_energy_j < 0.0:
        raise ExperimentError("DPM energy must be non-negative")
    return (baseline_energy_j - dpm_energy_j) / baseline_energy_j


def temperature_reduction(baseline_rise_c: float, dpm_rise_c: float) -> float:
    """Fractional reduction of the average temperature rise above ambient."""
    if baseline_rise_c < 0.0 or dpm_rise_c < 0.0:
        raise ExperimentError("temperature rises must be non-negative")
    if baseline_rise_c == 0.0:
        return 0.0
    return (baseline_rise_c - dpm_rise_c) / baseline_rise_c


def average_delay_overhead(executions: Sequence[TaskExecution]) -> float:
    """Mean fractional delay overhead over the executed tasks."""
    if not executions:
        raise ExperimentError("cannot compute a delay overhead with no executed tasks")
    overheads = [execution.delay_overhead for execution in executions]
    return sum(overheads) / len(overheads)


@dataclass
class ScenarioMetrics:
    """Result record of one scenario (one row of Table 2)."""

    scenario: str
    energy_saving_pct: float
    temperature_reduction_pct: float
    average_delay_overhead_pct: float
    dpm_energy_j: float = 0.0
    baseline_energy_j: float = 0.0
    dpm_average_rise_c: float = 0.0
    baseline_average_rise_c: float = 0.0
    dpm_peak_c: float = 0.0
    baseline_peak_c: float = 0.0
    tasks_executed: int = 0
    simulated_time_s: float = 0.0
    wall_clock_s: float = 0.0
    kilocycles_per_second: float = 0.0
    per_ip: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    # Shared-bus figures of the DPM run; all zero on bus-less platforms.
    bus_occupancy_pct: float = 0.0
    bus_transfer_count: int = 0
    bus_words_transferred: int = 0
    bus_average_wait_us: float = 0.0
    bus_cancelled_count: int = 0

    @property
    def has_bus_figures(self) -> bool:
        """True when the DPM run carried (or at least attempted) bus traffic."""
        return (self.bus_transfer_count > 0 or self.bus_occupancy_pct > 0.0
                or self.bus_cancelled_count > 0)

    def as_dict(self) -> dict:
        """Flat dictionary view (used by reports and benchmark output)."""
        data = {
            "scenario": self.scenario,
            "energy_saving_pct": self.energy_saving_pct,
            "temperature_reduction_pct": self.temperature_reduction_pct,
            "average_delay_overhead_pct": self.average_delay_overhead_pct,
            "dpm_energy_j": self.dpm_energy_j,
            "baseline_energy_j": self.baseline_energy_j,
            "dpm_average_rise_c": self.dpm_average_rise_c,
            "baseline_average_rise_c": self.baseline_average_rise_c,
            "tasks_executed": self.tasks_executed,
            "simulated_time_s": self.simulated_time_s,
            "wall_clock_s": self.wall_clock_s,
            "kilocycles_per_second": self.kilocycles_per_second,
            **self.extra,
        }
        if self.has_bus_figures:
            # Only on bus-bearing runs: bus-less records stay byte-identical
            # with the archives of pre-bus campaign stores.
            data["bus_occupancy_pct"] = self.bus_occupancy_pct
            data["bus_transfer_count"] = self.bus_transfer_count
            data["bus_words_transferred"] = self.bus_words_transferred
            data["bus_average_wait_us"] = self.bus_average_wait_us
            data["bus_cancelled_count"] = self.bus_cancelled_count
        return data


def compare_runs(
    scenario: str,
    dpm_energy_j: float,
    baseline_energy_j: float,
    dpm_rise_c: float,
    baseline_rise_c: float,
    dpm_executions: Sequence[TaskExecution],
    dpm_peak_c: float = 0.0,
    baseline_peak_c: float = 0.0,
    simulated_time_s: float = 0.0,
    wall_clock_s: float = 0.0,
    kilocycles_per_second: float = 0.0,
    per_ip: Optional[Dict[str, Dict[str, float]]] = None,
    bus: Optional[Dict[str, float]] = None,
) -> ScenarioMetrics:
    """Build the :class:`ScenarioMetrics` record from two runs of a scenario.

    ``bus`` carries the DPM run's shared-bus figures (as produced by
    :meth:`repro.experiments.runner.RunArtifacts.bus_summary`); ``None`` on
    bus-less platforms.
    """
    saving = energy_saving(baseline_energy_j, dpm_energy_j)
    reduction = temperature_reduction(baseline_rise_c, dpm_rise_c)
    overhead = average_delay_overhead(dpm_executions)
    bus = bus or {}
    return ScenarioMetrics(
        scenario=scenario,
        energy_saving_pct=saving * 100.0,
        temperature_reduction_pct=reduction * 100.0,
        average_delay_overhead_pct=overhead * 100.0,
        dpm_energy_j=dpm_energy_j,
        baseline_energy_j=baseline_energy_j,
        dpm_average_rise_c=dpm_rise_c,
        baseline_average_rise_c=baseline_rise_c,
        dpm_peak_c=dpm_peak_c,
        baseline_peak_c=baseline_peak_c,
        tasks_executed=len(dpm_executions),
        simulated_time_s=simulated_time_s,
        wall_clock_s=wall_clock_s,
        kilocycles_per_second=kilocycles_per_second,
        per_ip=per_ip or {},
        bus_occupancy_pct=float(bus.get("occupancy_pct", 0.0)),
        bus_transfer_count=int(bus.get("transfer_count", 0)),
        bus_words_transferred=int(bus.get("words_transferred", 0)),
        bus_average_wait_us=float(bus.get("average_wait_us", 0.0)),
        bus_cancelled_count=int(bus.get("cancelled_count", 0)),
    )
