"""Markdown export of experiment results.

``EXPERIMENTS.md``-style reports can be regenerated from code so that the
documentation never drifts from what the harness actually measures.  The
exporter takes the :class:`~repro.analysis.metrics.ScenarioMetrics` rows
produced by the experiment runner and renders:

* a markdown table comparing the measured values with the paper's Table 2,
* an optional per-IP breakdown section,
* an optional simulation-speed section.

Used by the ``repro-dpm report`` CLI subcommand and by tests.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.metrics import ScenarioMetrics
from repro.analysis.report import PAPER_TABLE2

__all__ = ["markdown_table2", "markdown_per_ip", "markdown_speed", "markdown_report"]


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def markdown_table2(
    results: Sequence[ScenarioMetrics],
    paper: Mapping[str, Mapping[str, float]] = PAPER_TABLE2,
) -> str:
    """Markdown table of measured rows next to the paper's Table 2."""
    headers = [
        "Scenario",
        "Saving % (paper)",
        "Saving % (ours)",
        "Temp. red. % (paper)",
        "Temp. red. % (ours)",
        "Delay % (paper)",
        "Delay % (ours)",
    ]
    rows = []
    for result in results:
        reference = paper.get(result.scenario, {})

        def fmt(key):
            value = reference.get(key)
            return "-" if value is None else f"{value:.0f}"

        rows.append(
            [
                result.scenario,
                fmt("energy_saving_pct"),
                f"{result.energy_saving_pct:.0f}",
                fmt("temperature_reduction_pct"),
                f"{result.temperature_reduction_pct:.0f}",
                fmt("average_delay_overhead_pct"),
                f"{result.average_delay_overhead_pct:.0f}",
            ]
        )
    return _md_table(headers, rows)


def markdown_per_ip(results: Sequence[ScenarioMetrics]) -> str:
    """Markdown table with the per-IP breakdown of every scenario."""
    headers = ["Scenario", "IP", "Tasks", "Energy (mJ)", "Mean delay (%)", "Transitions"]
    rows = []
    for result in results:
        for ip_name, stats in sorted(result.per_ip.items()):
            rows.append(
                [
                    result.scenario,
                    ip_name,
                    int(stats.get("tasks", 0)),
                    f"{1e3 * stats.get('energy_j', 0.0):.2f}",
                    f"{stats.get('mean_delay_overhead_pct', 0.0):.0f}",
                    int(stats.get("transitions", 0)),
                ]
            )
    return _md_table(headers, rows)


def markdown_speed(speeds: Mapping[str, float]) -> str:
    """Markdown table of the simulation-speed figure."""
    paper_reference = {"A1": 35.0, "A2": 35.0, "A3": 35.0, "A4": 35.0, "B": 7.5, "C": 7.5}
    headers = ["Scenario", "Paper (Kcycle/s)", "This implementation (Kcycle/s)"]
    rows = [
        [name, f"{paper_reference.get(name, float('nan')):.1f}", f"{value:.1f}"]
        for name, value in speeds.items()
    ]
    return _md_table(headers, rows)


def markdown_report(
    results: Sequence[ScenarioMetrics],
    speeds: Optional[Mapping[str, float]] = None,
    title: str = "Reproduction report",
) -> str:
    """Full markdown report: Table 2, per-IP breakdown and optional speeds."""
    sections = [f"# {title}", "", "## Table 2 — paper vs. measured", "", markdown_table2(results)]
    if any(result.per_ip for result in results):
        sections += ["", "## Per-IP breakdown (DPM runs)", "", markdown_per_ip(results)]
    if speeds:
        sections += ["", "## Simulation speed", "", markdown_speed(speeds)]
    sections.append("")
    return "\n".join(sections)
