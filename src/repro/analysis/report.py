"""Plain-text / markdown rendering of experiment results.

The experiment runners produce :class:`~repro.analysis.metrics.ScenarioMetrics`
records; this module turns them into the tables printed by the benchmarks,
the CLI and ``EXPERIMENTS.md`` — including a side-by-side comparison with the
values the paper reports in its Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import ScenarioMetrics

__all__ = ["format_table", "render_table2", "render_comparison", "PAPER_TABLE2"]

#: The paper's Table 2, exactly as printed (percentages).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "A1": {"energy_saving_pct": 39.0, "temperature_reduction_pct": 31.0, "average_delay_overhead_pct": 30.0},
    "A2": {"energy_saving_pct": 55.0, "temperature_reduction_pct": 21.0, "average_delay_overhead_pct": 339.0},
    "A3": {"energy_saving_pct": 39.0, "temperature_reduction_pct": 18.0, "average_delay_overhead_pct": 37.0},
    "A4": {"energy_saving_pct": 55.0, "temperature_reduction_pct": 18.0, "average_delay_overhead_pct": 339.0},
    "B": {"energy_saving_pct": 65.0, "temperature_reduction_pct": 19.0, "average_delay_overhead_pct": 242.0},
    "C": {"energy_saving_pct": 64.0, "temperature_reduction_pct": 18.0, "average_delay_overhead_pct": 253.0},
}


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("every row must have as many cells as the header")
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def render_table2(results: Sequence[ScenarioMetrics], title: str = "Table 2 (reproduced)") -> str:
    """Render the reproduced Table 2 rows."""
    headers = ["Scenario", "Energy saving (%)", "Temperature reduction (%)", "Avg delay overhead (%)"]
    rows = [
        [
            result.scenario,
            f"{result.energy_saving_pct:.0f}",
            f"{result.temperature_reduction_pct:.0f}",
            f"{result.average_delay_overhead_pct:.0f}",
        ]
        for result in results
    ]
    return format_table(headers, rows, title=title)


def render_comparison(
    results: Sequence[ScenarioMetrics],
    paper: Mapping[str, Mapping[str, float]] = PAPER_TABLE2,
    title: str = "Paper vs. reproduction",
) -> str:
    """Render the measured values next to the paper's Table 2."""
    headers = [
        "Scenario",
        "Saving % (paper)",
        "Saving % (ours)",
        "Temp red. % (paper)",
        "Temp red. % (ours)",
        "Delay % (paper)",
        "Delay % (ours)",
    ]
    rows = []
    for result in results:
        reference = paper.get(result.scenario, {})
        rows.append(
            [
                result.scenario,
                _fmt(reference.get("energy_saving_pct")),
                f"{result.energy_saving_pct:.0f}",
                _fmt(reference.get("temperature_reduction_pct")),
                f"{result.temperature_reduction_pct:.0f}",
                _fmt(reference.get("average_delay_overhead_pct")),
                f"{result.average_delay_overhead_pct:.0f}",
            ]
        )
    return format_table(headers, rows, title=title)


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.0f}"
