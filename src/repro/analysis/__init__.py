"""Analysis layer: evaluation metrics, PSM trace analysis and report rendering."""

from repro.analysis.export import (
    markdown_per_ip,
    markdown_report,
    markdown_speed,
    markdown_table2,
)
from repro.analysis.metrics import (
    ScenarioMetrics,
    average_delay_overhead,
    compare_runs,
    energy_saving,
    temperature_reduction,
)
from repro.analysis.report import PAPER_TABLE2, format_table, render_comparison, render_table2
from repro.analysis.trace_analysis import (
    StateResidency,
    energy_breakdown,
    psm_residency,
    transition_summary,
)

__all__ = [
    "PAPER_TABLE2",
    "ScenarioMetrics",
    "StateResidency",
    "average_delay_overhead",
    "compare_runs",
    "energy_breakdown",
    "energy_saving",
    "format_table",
    "markdown_per_ip",
    "markdown_report",
    "markdown_speed",
    "markdown_table2",
    "psm_residency",
    "render_comparison",
    "render_table2",
    "temperature_reduction",
    "transition_summary",
]
