"""Hypothesis strategies generating random-but-valid platform specs.

Every strategy draws shrinkable primitives (bounded integers, small choice
lists) and assembles them into :class:`~repro.platform.spec.PlatformSpec`
trees, so a failing example shrinks toward the smallest platform that still
trips an oracle.  The bounds are deliberately tight — one to three IPs, a
handful of tasks each, a few hundred simulated milliseconds — because the
differential harness simulates each generated platform up to eight times;
a single example must stay in the low-millisecond range.

Design constraints encoded here (not just chosen for speed):

* Workload ``seed`` fields are always drawn explicitly, so the saved JSON of
  a shrunk failure replays bit-identically — nothing depends on a default
  hiding in the builder.
* ``bus_words_per_task`` is a multiple of ``words_per_cycle``, so the
  cycle-accurate bus never quantises durations and the single-master timing
  bound of the ``bus_timing`` oracle is exact.
* The GEM is only enabled together with a healthy battery and cool thermal
  condition: under battery-low/thermal-high rules the GEM legitimately
  parks low-priority IPs, which is deliberate deadline sacrifice, not a
  policy-oracle counterexample.
* ``max_time_ms`` is generous relative to the largest generated workload,
  so "did not finish" verdicts point at real bugs, not tight budgets.
"""

from __future__ import annotations

from typing import List, Optional

from hypothesis import strategies as st

from repro.platform.spec import (
    BatteryDef,
    BusDef,
    GemDef,
    INSTRUCTION_CLASS_NAMES,
    IpDef,
    PlatformSpec,
    PolicyDef,
    PRIORITY_NAMES,
    PsmDef,
    ThermalDef,
    WorkloadDef,
)

__all__ = [
    "bus_defs",
    "ip_defs",
    "platform_specs",
    "policy_defs",
    "workload_defs",
]

#: states a generated IP may start in (ON states only: a platform whose IP
#: starts asleep exercises the wake-up path in every single run instead).
_INITIAL_STATES = ("ON1", "ON2")

_SEEDS = st.integers(min_value=0, max_value=999)
_CYCLES = st.integers(min_value=2_000, max_value=80_000)
_IDLE_US = st.integers(min_value=50, max_value=2_000)
_PRIORITY = st.sampled_from(PRIORITY_NAMES)
_INSTRUCTION_CLASS = st.sampled_from(INSTRUCTION_CLASS_NAMES)


@st.composite
def _cycles_range(draw) -> tuple:
    low = draw(st.integers(min_value=2_000, max_value=40_000))
    span = draw(st.integers(min_value=0, max_value=40_000))
    return low, low + span


@st.composite
def _idle_range_us(draw) -> tuple:
    low = draw(st.integers(min_value=50, max_value=1_000))
    span = draw(st.integers(min_value=0, max_value=2_000))
    return low, low + span


@st.composite
def _explicit_items(draw) -> List[dict]:
    count = draw(st.integers(min_value=1, max_value=4))
    items = []
    for index in range(count):
        item = {"task": f"t{index}", "cycles": draw(_CYCLES)}
        if draw(st.booleans()):
            item["priority"] = draw(_PRIORITY)
        if draw(st.booleans()):
            item["instruction_class"] = draw(_INSTRUCTION_CLASS)
        # lossless femtosecond idle (the canonical as_dicts key)
        item["idle_after_fs"] = draw(_IDLE_US) * 1_000_000_000
        items.append(item)
    return items


@st.composite
def workload_defs(draw) -> WorkloadDef:
    """A bounded workload of any declarative kind."""
    kind = draw(
        st.sampled_from(
            ("periodic", "random", "bursty", "high_activity", "low_activity", "explicit")
        )
    )
    if kind == "periodic":
        return WorkloadDef(
            kind=kind,
            task_count=draw(st.integers(min_value=1, max_value=5)),
            cycles=draw(_CYCLES),
            idle_us=float(draw(_IDLE_US)),
            priority=draw(st.none() | _PRIORITY),
            instruction_class=draw(st.none() | _INSTRUCTION_CLASS),
        )
    if kind == "random":
        cycles_min, cycles_max = draw(_cycles_range())
        idle_min, idle_max = draw(_idle_range_us())
        return WorkloadDef(
            kind=kind,
            task_count=draw(st.integers(min_value=1, max_value=5)),
            seed=draw(_SEEDS),
            cycles_min=cycles_min,
            cycles_max=cycles_max,
            idle_min_us=float(idle_min),
            idle_max_us=float(idle_max),
        )
    if kind == "bursty":
        cycles_min, cycles_max = draw(_cycles_range())
        return WorkloadDef(
            kind=kind,
            burst_count=draw(st.integers(min_value=1, max_value=2)),
            tasks_per_burst=draw(st.integers(min_value=1, max_value=3)),
            seed=draw(_SEEDS),
            cycles_min=cycles_min,
            cycles_max=cycles_max,
            intra_burst_idle_us=float(draw(st.integers(min_value=10, max_value=200))),
            inter_burst_idle_us=float(draw(st.integers(min_value=500, max_value=4_000))),
        )
    if kind in ("high_activity", "low_activity"):
        return WorkloadDef(
            kind=kind,
            task_count=draw(st.integers(min_value=1, max_value=6)),
            seed=draw(_SEEDS),
        )
    return WorkloadDef(kind="explicit", items=draw(_explicit_items()))


@st.composite
def _psm_defs(draw) -> PsmDef:
    psm = PsmDef()
    if draw(st.booleans()):
        psm.dvfs_latency_us = float(draw(st.integers(min_value=1, max_value=20)))
    if draw(st.booleans()):
        psm.entry_latency_us = {"SL1": float(draw(st.integers(min_value=5, max_value=50)))}
    if draw(st.booleans()):
        psm.wakeup_latency_us = {"SL1": float(draw(st.integers(min_value=10, max_value=100)))}
    return psm


@st.composite
def ip_defs(draw, index: int = 0, bus_words_per_cycle: Optional[int] = None) -> IpDef:
    """One IP block; produces bus traffic only when ``bus_words_per_cycle`` is set."""
    bus_words = 0
    bus_priority = None
    if bus_words_per_cycle is not None:
        # whole multiples of words_per_cycle: CA duration == ED duration
        bus_words = bus_words_per_cycle * draw(st.integers(min_value=1, max_value=64))
        bus_priority = draw(st.none() | st.integers(min_value=0, max_value=3))
    return IpDef(
        name=f"ip{index}",
        workload=draw(workload_defs()),
        static_priority=draw(st.integers(min_value=1, max_value=3)),
        initial_state=draw(st.sampled_from(_INITIAL_STATES)),
        bus_words_per_task=bus_words,
        bus_priority=bus_priority,
        idle_activity=draw(
            st.none() | st.floats(min_value=0.05, max_value=0.3, allow_nan=False)
        ),
        psm=draw(st.none() | _psm_defs()),
    )


@st.composite
def bus_defs(draw) -> BusDef:
    """An enabled bus with bounded bandwidth (callers decide enablement)."""
    return BusDef(
        enabled=True,
        words_per_second=float(draw(st.sampled_from((1_000_000, 10_000_000, 50_000_000)))),
        arbitration=draw(st.sampled_from(("fifo", "priority"))),
        timing=draw(st.sampled_from(("event_driven", "cycle_accurate"))),
        words_per_cycle=draw(st.sampled_from((1, 2, 4))),
    )


@st.composite
def policy_defs(draw) -> PolicyDef:
    """A declarative default policy of any supported name."""
    name = draw(st.sampled_from(("paper", "always-on", "greedy-sleep", "fixed-timeout")))
    policy = PolicyDef(name=name)
    if name == "paper":
        policy.predictor = draw(
            st.none() | st.sampled_from(("fixed", "last-value", "ewma", "adaptive"))
        )
        policy.allow_off = draw(st.none() | st.booleans())
    elif name == "greedy-sleep":
        policy.allow_off = draw(st.none() | st.booleans())
    elif name == "fixed-timeout":
        policy.timeout_ms = float(draw(st.integers(min_value=1, max_value=5)))
    return policy


@st.composite
def platform_specs(draw, max_ips: int = 3, allow_bus: bool = True) -> PlatformSpec:
    """A complete, valid, bounded platform spec (the fuzz harness input)."""
    ip_count = draw(st.integers(min_value=1, max_value=max_ips))
    bus = None
    masters: List[bool] = [False] * ip_count
    if allow_bus and draw(st.booleans()):
        bus = draw(bus_defs())
        masters = [draw(st.booleans()) for _ in range(ip_count)]
        if not any(masters):
            masters[0] = True

    gem_enabled = draw(st.booleans())
    if gem_enabled:
        # GEM + stressed conditions legitimately parks low-priority IPs
        # (deliberate deadline sacrifice); keep the rules quiescent so the
        # policy oracle's deadline check stays meaningful.
        battery = BatteryDef(condition=draw(st.sampled_from(("full", "high"))))
        thermal = None
        gem = GemDef(
            enabled=True,
            high_priority_count=draw(st.none() | st.integers(min_value=1, max_value=2)),
            evaluation_interval_us=float(draw(st.integers(min_value=500, max_value=5_000))),
        )
    else:
        battery = BatteryDef(
            condition=draw(st.none() | st.sampled_from(("full", "high", "medium", "low"))),
            state_of_charge=draw(
                st.none() | st.floats(min_value=0.3, max_value=1.0, allow_nan=False)
            ),
            on_ac_power=draw(st.none() | st.booleans()),
        )
        thermal = draw(st.none() | st.sampled_from(("low", "high")))
        gem = GemDef()

    spec = PlatformSpec(
        name="fuzz",
        ips=[
            draw(
                ip_defs(
                    index=index,
                    bus_words_per_cycle=bus.words_per_cycle if (bus and masters[index]) else None,
                )
            )
            for index in range(ip_count)
        ],
        battery=battery,
        gem=gem,
        bus=bus if bus is not None else BusDef(),
        policy=draw(st.none() | policy_defs()),
        max_time_ms=float(draw(st.integers(min_value=150, max_value=400))),
        sample_interval_us=float(draw(st.sampled_from((500, 1000, 2000)))),
        with_fan=draw(st.booleans()),
    )
    if thermal is not None:
        spec.thermal = ThermalDef(condition=thermal)
    return spec
