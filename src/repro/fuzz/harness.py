"""The differential fuzz harness: generate, run, shrink, save.

:func:`run_fuzz` drives Hypothesis over :func:`~repro.fuzz.strategies.
platform_specs`: every generated platform goes through
:func:`~repro.experiments.differential.run_differential`, and the first
platform that trips an oracle is *shrunk* by Hypothesis to a minimal
counterexample, saved to the content-addressed corpus and reported in the
returned :class:`FuzzReport`.  A fixed ``seed`` makes the whole run — the
generated platforms, the shrink sequence and the saved file — reproducible
bit for bit; the workload seeds inside each spec are explicit fields drawn
by the strategies, so replaying the *saved spec* needs no Hypothesis at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.differential import DifferentialResult, run_differential
from repro.fuzz.corpus import Corpus
from repro.fuzz.strategies import platform_specs
from repro.platform.spec import PlatformSpec

__all__ = ["FuzzFailure", "FuzzReport", "replay_corpus", "run_fuzz"]


class FuzzFailure(AssertionError):
    """Raised inside the Hypothesis property when an oracle fails.

    Subclasses :class:`AssertionError` so Hypothesis treats it as a normal
    counterexample (shrinks it) rather than an error in the harness itself.
    """

    def __init__(self, spec: PlatformSpec, result: DifferentialResult) -> None:
        super().__init__(result.summary())
        self.spec = spec
        self.result = result


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    examples: int = 0
    seed: int = 0
    elapsed_s: float = 0.0
    #: differential runs actually executed (includes Hypothesis shrink steps)
    runs: int = 0
    #: the shrunk failing spec, when an oracle failed
    failure: Optional[FuzzFailure] = None
    #: where the shrunk failure was saved (None when green or no corpus)
    saved_path: Optional[str] = None
    skips: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def examples_per_second(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.runs / self.elapsed_s

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.runs} differential runs "
            f"({self.examples} requested, seed {self.seed}) in "
            f"{self.elapsed_s:.1f}s — {self.examples_per_second():.1f} examples/s"
        ]
        for oracle, count in sorted(self.skips.items()):
            lines.append(f"  ~ {oracle}: skipped in {count} run(s)")
        if self.failure is None:
            lines.append("  all oracles agreed on every generated platform")
        else:
            lines.append("  shrunk counterexample:")
            lines.extend("  " + line for line in self.failure.result.summary().splitlines())
            if self.saved_path:
                lines.append(f"  saved to {self.saved_path}")
        return "\n".join(lines)


def run_fuzz(
    examples: int = 100,
    seed: int = 0,
    oracles: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    corpus: Optional[Corpus] = None,
    max_ips: int = 3,
) -> FuzzReport:
    """Fuzz ``examples`` generated platforms through the differential oracles.

    Returns a :class:`FuzzReport`; when an oracle failed, the report carries
    the *shrunk* counterexample and (when ``corpus`` is given) the path the
    failing spec was saved under.  Never raises on oracle failures — the
    caller decides what a failure means (the CLI exits nonzero, the nightly
    CI job uploads the corpus file).
    """
    from hypothesis import HealthCheck, Phase, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings as hypothesis_settings

    report = FuzzReport(examples=examples, seed=seed)

    @hypothesis_settings(
        max_examples=examples,
        deadline=None,
        database=None,  # stateless: reproducibility comes from --seed alone
        derandomize=False,
        suppress_health_check=list(HealthCheck),
        phases=(Phase.generate, Phase.shrink),
        print_blob=False,
    )
    @hypothesis_seed(seed)
    @given(spec=platform_specs(max_ips=max_ips))
    def check(spec: PlatformSpec) -> None:
        report.runs += 1
        result = run_differential(spec, oracles=oracles, backend=backend)
        for verdict in result.verdicts:
            if verdict.status == "skip":
                report.skips[verdict.oracle] = report.skips.get(verdict.oracle, 0) + 1
        if not result.ok:
            raise FuzzFailure(spec, result)

    start = time.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]
    try:
        check()
    except FuzzFailure as failure:
        # Hypothesis re-raises the failure of the *minimal* shrunk example.
        report.failure = failure
        if corpus is not None:
            reason = "; ".join(
                f"{verdict.oracle}: {verdict.detail}" if verdict.detail else verdict.oracle
                for verdict in failure.result.failures
            )
            report.saved_path = str(corpus.save(failure.spec, reason=reason))
    report.elapsed_s = time.perf_counter() - start  # repro-lint: allow[DET-WALLCLOCK]
    return report


def replay_corpus(
    targets: Sequence[str],
    corpus: Optional[Corpus] = None,
    oracles: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> List[DifferentialResult]:
    """Replay corpus entries (paths, directories, or hash prefixes).

    A directory target expands to every ``*.json`` inside it; other targets
    resolve through :meth:`Corpus.load`.  Returns one
    :class:`DifferentialResult` per replayed spec, in replay order.
    """
    import os

    corpus = corpus or Corpus()
    specs: List[PlatformSpec] = []
    for target in targets:
        if os.path.isdir(target):
            for path in Corpus(target).entries():
                specs.append(corpus.load(path))
        else:
            specs.append(corpus.load(target))
    return [
        run_differential(spec, oracles=oracles, backend=backend) for spec in specs
    ]
