"""Greedy spec-level delta debugging for failing platforms.

Hypothesis already shrinks the *primitives* it drew; this minimizer works on
the spec tree itself, so it also applies to corpus entries and hand-written
platforms that Hypothesis never saw.  It repeatedly tries structural
simplifications — drop an IP, drop an optional section, shrink a workload —
and keeps every change under which the caller's predicate still holds
(normally "`run_differential` still fails"), until a fixed point.

The predicate is injectable, which keeps the reduction logic unit-testable
without running a single simulation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import PlatformError
from repro.platform.spec import PlatformSpec

__all__ = ["minimize_spec"]

#: optional top-level sections a minimal repro usually doesn't need
_DROPPABLE_SECTIONS = ("gem", "policy", "thermal", "battery", "trace")

#: per-IP optional fields worth clearing
_DROPPABLE_IP_FIELDS = (
    "psm", "idle_activity", "bus_priority", "operating_points",
    "activity_by_class", "residual_fraction", "max_frequency_hz",
    "max_voltage_v", "effective_capacitance_f", "leakage_coefficient",
)

#: workload count knobs to walk downward
_COUNT_FIELDS = ("task_count", "burst_count", "tasks_per_burst")


def _candidates(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One-step simplifications of the spec dictionary, most drastic first."""
    out: List[Dict[str, Any]] = []
    ips = data.get("ips", [])

    def clone(**overrides: Any) -> Dict[str, Any]:
        new = {key: value for key, value in data.items()}
        new.update(overrides)
        return new

    # Drop whole IPs (keep at least one).
    if len(ips) > 1:
        for index in range(len(ips)):
            out.append(clone(ips=[ip for i, ip in enumerate(ips) if i != index]))
    # Drop optional top-level sections.
    for section in _DROPPABLE_SECTIONS:
        if section in data:
            new = clone()
            del new[section]
            out.append(new)
    # Drop the bus (and the per-IP traffic that requires it).
    if "bus" in data:
        new = clone(
            ips=[
                {
                    key: value
                    for key, value in ip.items()
                    if key not in ("bus_words_per_task", "bus_priority")
                }
                for ip in ips
            ]
        )
        del new["bus"]
        out.append(new)
    # Per-IP simplifications.
    for index, ip in enumerate(ips):
        for field in _DROPPABLE_IP_FIELDS:
            if field in ip:
                new_ip = {key: value for key, value in ip.items() if key != field}
                out.append(clone(ips=[*ips[:index], new_ip, *ips[index + 1:]]))
        workload = ip.get("workload")
        if isinstance(workload, dict):
            for field in _COUNT_FIELDS:
                count = workload.get(field)
                if isinstance(count, int) and count > 1:
                    new_workload = dict(workload)
                    new_workload[field] = count // 2
                    new_ip = dict(ip)
                    new_ip["workload"] = new_workload
                    out.append(clone(ips=[*ips[:index], new_ip, *ips[index + 1:]]))
            items = workload.get("items")
            if isinstance(items, list) and len(items) > 1:
                for drop in range(len(items)):
                    new_workload = dict(workload)
                    new_workload["items"] = [
                        item for i, item in enumerate(items) if i != drop
                    ]
                    new_ip = dict(ip)
                    new_ip["workload"] = new_workload
                    out.append(clone(ips=[*ips[:index], new_ip, *ips[index + 1:]]))
    return out


def minimize_spec(
    spec: PlatformSpec,
    still_fails: Callable[[PlatformSpec], bool],
    max_rounds: int = 50,
) -> PlatformSpec:
    """Greedily simplify ``spec`` while ``still_fails(candidate)`` holds.

    ``still_fails`` must return True for the *input* spec, else there is
    nothing to minimize and the spec is returned unchanged.  Candidates
    that no longer validate are skipped silently (a dropped section can
    orphan a dependent field); the first accepted candidate restarts the
    scan, so the result is a local fixed point.
    """
    if not still_fails(spec):
        return spec
    current = spec.to_dict()
    for _ in range(max_rounds):
        for candidate_data in _candidates(current):
            try:
                candidate = PlatformSpec.from_dict(candidate_data)
            except PlatformError:
                continue
            if still_fails(candidate):
                current = candidate.to_dict()
                break
        else:
            break  # no candidate helped: fixed point
    return PlatformSpec.from_dict(current)
