"""Differential fuzzing: generated platforms, cross-axis oracles, a corpus.

The subsystem has four parts:

* :mod:`repro.fuzz.strategies` — Hypothesis strategies generating bounded,
  valid :class:`~repro.platform.spec.PlatformSpec` trees;
* :mod:`repro.fuzz.harness` — :func:`run_fuzz` drives the strategies
  through :func:`~repro.experiments.differential.run_differential`, shrinks
  failures and saves them;
* :mod:`repro.fuzz.corpus` — the content-addressed regression corpus under
  ``tests/fuzz/corpus/`` that tier-1 replays on every run;
* :mod:`repro.fuzz.minimize` — spec-level delta debugging for corpus
  entries and hand-written platforms.

``repro-dpm fuzz run/replay/minimize`` is the CLI face of all of it.
"""

from repro.fuzz.corpus import Corpus, DEFAULT_CORPUS_DIR
from repro.fuzz.harness import FuzzFailure, FuzzReport, replay_corpus, run_fuzz
from repro.fuzz.minimize import minimize_spec
from repro.fuzz.strategies import (
    bus_defs,
    ip_defs,
    platform_specs,
    policy_defs,
    workload_defs,
)

__all__ = [
    "Corpus",
    "DEFAULT_CORPUS_DIR",
    "FuzzFailure",
    "FuzzReport",
    "bus_defs",
    "ip_defs",
    "minimize_spec",
    "platform_specs",
    "policy_defs",
    "replay_corpus",
    "run_fuzz",
    "workload_defs",
]
