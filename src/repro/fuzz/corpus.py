"""Content-addressed regression corpus for fuzz findings.

Every shrunk failing platform is saved as an ordinary platform-spec JSON
file named by its content hash (``<spec_hash[:16]>.json``), with the
failing oracle verdicts folded into the spec's ``description`` — so a
corpus entry is self-describing, loads through the normal
:func:`~repro.platform.serialize.load_platform` path, and replays through
the same :func:`~repro.experiments.differential.run_differential` harness
that found it.  The tier-1 suite replays every entry on every run (see
``tests/fuzz/test_corpus_replay.py``), which is what turns a one-off fuzz
finding into a permanent regression gate.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import PlatformError
from repro.platform.serialize import load_platform, save_platform, spec_hash
from repro.platform.spec import PlatformSpec

__all__ = ["Corpus", "DEFAULT_CORPUS_DIR"]

#: where the repo keeps its shipped regression corpus (relative to the root)
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz", "corpus")

#: filename stem length — 64 hash bits, plenty for a corpus of thousands
_STEM_CHARS = 16


class Corpus:
    """A directory of content-addressed platform-spec regression files."""

    def __init__(self, root: Union[str, os.PathLike] = DEFAULT_CORPUS_DIR) -> None:
        self.root = Path(root)

    def entries(self) -> List[Path]:
        """Every corpus spec file, sorted by name for deterministic replay.

        Lint sidecars (``*.lint.json``) are metadata, not specs, and are
        excluded.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.glob("*.json")
            if not path.name.endswith(".lint.json")
        )

    def save(self, spec: PlatformSpec, reason: str = "") -> Path:
        """Save ``spec`` under its content hash; returns the file path.

        ``reason`` (typically the failing oracle verdicts) is recorded in
        the spec's ``description`` *before* hashing, so the filename is the
        hash of exactly the bytes on disk.  Saving the same finding twice
        is a no-op returning the existing path.  A ``<hash>.lint.json``
        sidecar records the entry's static-lint findings at capture time,
        so triage can tell "fuzzer found a kernel bug" from "fuzzer found a
        spec lint should have rejected".
        """
        stored = PlatformSpec.from_dict(spec.to_dict())  # defensive copy
        if reason:
            stored.description = (
                f"fuzz regression: {reason}"
                if not stored.description
                else f"{stored.description} | fuzz regression: {reason}"
            )
        digest = spec_hash(stored)
        path = self.root / f"{digest[:_STEM_CHARS]}.json"
        if not path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            save_platform(stored, path)
            self._write_lint_sidecar(stored, path)
        return path

    @staticmethod
    def _write_lint_sidecar(spec: PlatformSpec, path: Path) -> None:
        """Best-effort ``<stem>.lint.json`` next to a new entry; a lint
        crash must never lose the fuzz finding itself."""
        import json

        try:
            from repro.lint import Severity, lint_spec

            report = lint_spec(spec, reach=True)
            sidecar = {
                "spec": path.name,
                "findings": [finding.to_dict() for finding in report.sorted()],
                "counts": {
                    severity.value: report.count(severity)
                    for severity in Severity
                },
            }
            path.with_name(f"{path.stem}.lint.json").write_text(
                json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except Exception:  # pragma: no cover - deliberately non-fatal
            pass

    def load(self, target: Union[str, os.PathLike]) -> PlatformSpec:
        """Load a corpus entry by path, file name, or unique hash prefix."""
        candidate = Path(target)
        if candidate.is_file():
            return load_platform(candidate)
        name = str(target)
        matches = [
            path for path in self.entries() if path.stem.startswith(name)
        ]
        if len(matches) == 1:
            return load_platform(matches[0])
        if not matches:
            raise PlatformError(
                f"no corpus entry matching {name!r} under {self.root}"
            )
        raise PlatformError(
            f"hash prefix {name!r} is ambiguous in {self.root}: "
            + ", ".join(path.stem for path in matches)
        )

    def resolve(self, target: Union[str, os.PathLike]) -> Optional[Path]:
        """The entry path a :meth:`load` of ``target`` would read, if any."""
        candidate = Path(target)
        if candidate.is_file():
            return candidate
        matches = [
            path for path in self.entries() if path.stem.startswith(str(target))
        ]
        return matches[0] if len(matches) == 1 else None
