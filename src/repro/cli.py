"""Command-line interface: ``repro-dpm`` (or ``python -m repro``).

Subcommands
-----------

``table2``
    Reproduce the paper's Table 2 (all rows or a subset) and print the
    measured values next to the paper's.
``scenario``
    Run a single scenario under a chosen DPM setup and print the detailed
    per-IP results.
``rules``
    Print the Table-1 rule table, evaluate it for one input combination, or
    trace a first-match decision (``--explain P B T [BUS]``, ``--spec`` to
    use a platform's custom table).
``sweep``
    Run the battery x temperature condition sweep.
``speed``
    Measure the simulation speed (the paper's Kcycle/s figure).
``breakeven``
    Print the break-even times of the default IP characterisation.
``campaign``
    Run, inspect or report a parallel experiment campaign described by a
    JSON/TOML spec file (see :mod:`repro.campaign`).
``platform``
    Validate, inspect, diff, list or run declarative platform specs —
    user-defined SoCs as JSON/TOML files (see :mod:`repro.platform`).
``lint``
    Static analysis of platform specs (rule-table structure, PSM
    reachability, policy knobs, bus saturation, workload feasibility) and,
    with ``--self``, the determinism self-check over the library's own
    sources (see :mod:`repro.lint`).  Exit 0 clean / 1 findings / 2 bad
    input.

Run-style subcommands (``scenario``, ``platform run``) accept
``--trace [FORMAT]``/``--trace-format``/``--trace-out`` to record a
structured event trace of the DPM run (see :mod:`repro.obs`);
``campaign run --trace`` stores one trace per job next to the records.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.report import format_table, render_comparison
from repro.battery.status import BatteryLevel
from repro.dpm.controller import DpmSetup
from repro.dpm.rules import paper_rule_table
from repro.power.breakeven import BreakEvenAnalyzer
from repro.power.characterization import default_characterization
from repro.power.transitions import default_transition_table
from repro.sim.simtime import ms
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel

__all__ = ["main", "build_parser"]

_SETUPS = {
    "paper": DpmSetup.paper,
    "always-on": DpmSetup.always_on,
    "greedy-sleep": DpmSetup.greedy_sleep,
    "oracle": DpmSetup.oracle,
    "fixed-timeout": lambda: DpmSetup.fixed_timeout(ms(2)),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-dpm",
        description=(
            "Reproduction of 'SystemC Analysis of a New Dynamic Power Management "
            "Architecture' (DATE 2005): ACPI-style PSMs, local/global energy "
            "managers, battery and thermal models on a discrete-event kernel."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    def add_accuracy_flag(sub) -> None:
        sub.add_argument(
            "--accuracy",
            choices=["exact", "fast"],
            default="exact",
            help="accuracy mode: 'exact' (bit-identical reference) or 'fast' "
            "(toleranced fast math; see README 'Accuracy modes')",
        )

    def add_backend_flag(sub) -> None:
        sub.add_argument(
            "--backend",
            choices=["python", "native", "auto"],
            default=None,
            help="simulation kernel backend: 'python' (pure Python), 'native' "
            "(compiled event heap; falls back to python with a notice when "
            "the extension is not built) or 'auto' (native when available); "
            "default: the REPRO_SIM_BACKEND environment variable, else python",
        )

    def add_trace_flags(sub) -> None:
        sub.add_argument(
            "--trace",
            nargs="?",
            const="jsonl",
            default=None,
            choices=["jsonl", "perfetto", "vcd"],
            metavar="FORMAT",
            help="trace the DPM run (jsonl, perfetto or vcd; bare --trace "
            "means jsonl); overrides the spec's trace section",
        )
        sub.add_argument(
            "--trace-format",
            choices=["jsonl", "perfetto", "vcd"],
            default=None,
            help="trace format (implies --trace; wins over --trace FORMAT)",
        )
        sub.add_argument(
            "--trace-out",
            default=None,
            metavar="FILE",
            help="trace output file (default: <scenario>_trace.<ext>)",
        )

    table2 = subparsers.add_parser("table2", help="reproduce the paper's Table 2")
    table2.add_argument(
        "scenarios",
        nargs="*",
        help="subset of rows to run (A1 A2 A3 A4 B C); default: all",
    )
    table2.add_argument(
        "--setup",
        choices=sorted(_SETUPS),
        default="paper",
        help="DPM configuration to evaluate against the always-on baseline",
    )
    add_accuracy_flag(table2)

    scenario = subparsers.add_parser("scenario", help="run one scenario in detail")
    scenario.add_argument(
        "name", help="scenario id (A1..A4, B, C) or a registered platform name"
    )
    scenario.add_argument(
        "--setup", choices=sorted(_SETUPS), default=None,
        help="DPM setup to evaluate (default: the platform's policy, else 'paper')",
    )
    add_accuracy_flag(scenario)
    add_backend_flag(scenario)
    add_trace_flags(scenario)

    rules = subparsers.add_parser("rules", help="print or query the Table-1 rules")
    rules.add_argument("--priority", choices=[p.value for p in TaskPriority])
    rules.add_argument("--battery", choices=[b.value for b in BatteryLevel])
    rules.add_argument("--temperature", choices=[t.value for t in TemperatureLevel])
    rules.add_argument("--bus", choices=[b.value for b in BusLevel],
                       help="bus occupation level (default: low)")
    rules.add_argument(
        "--explain", nargs="+", metavar="LEVEL",
        help="first-match trace for PRIORITY BATTERY TEMPERATURE [BUS]: "
             "print which rule matched and why every earlier rule was skipped",
    )
    rules.add_argument(
        "--spec", metavar="SPEC",
        help="spec file or registered platform name whose rule table to use "
             "(default: the paper's Table 1)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="static analysis of platform specs (rules/psm/policy/bus/workload)",
    )
    lint.add_argument(
        "specs", nargs="*", metavar="SPEC",
        help="spec files or registered platform names "
             "(default: every registered platform)",
    )
    lint.add_argument(
        "--self", dest="self_check", action="store_true",
        help="run the determinism AST lint over the installed repro package",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit 1 on info-level findings too",
    )
    lint.add_argument(
        "--reach", action="store_true",
        help="attach the trajectory reachability envelope: uncovered rules "
             "the dynamics can never reach downgrade to info, and "
             "trajectory-dead rules/thresholds are reported",
    )

    reach = subparsers.add_parser(
        "reach",
        help="interval abstract interpretation of a platform's trajectory: "
             "reachable battery/thermal/bus levels with entry-time bounds",
    )
    reach.add_argument(
        "spec", metavar="SPEC",
        help="spec file or registered platform name",
    )

    sweep = subparsers.add_parser("sweep", help="battery x temperature condition sweep")
    sweep.add_argument("--tasks", type=int, default=20, help="tasks per scenario")

    speed = subparsers.add_parser("speed", help="measure simulation speed (Kcycle/s)")
    add_accuracy_flag(speed)
    add_backend_flag(speed)

    subparsers.add_parser("breakeven", help="break-even times of the default IP")

    report = subparsers.add_parser(
        "report", help="write a markdown reproduction report (Table 2 + breakdowns)"
    )
    report.add_argument("scenarios", nargs="*", help="subset of rows; default: all")
    report.add_argument("-o", "--output", default=None, help="output file (default: stdout)")
    report.add_argument("--with-speed", action="store_true", help="include the Kcycle/s figure")

    campaign = subparsers.add_parser(
        "campaign", help="run/inspect/report a parallel experiment campaign"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command")

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign grid described by a JSON/TOML spec file"
    )
    campaign_run.add_argument("spec", help="campaign spec file (.json or .toml)")
    campaign_run.add_argument(
        "--dir", dest="directory", default=None,
        help="campaign directory (default: campaigns/<name>)",
    )
    campaign_run.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    campaign_run.add_argument(
        "--resume", action="store_true",
        help="skip jobs that already have a stored result",
    )
    campaign_run.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    campaign_run.add_argument(
        "--quiet", action="store_true", help="do not print per-job progress lines"
    )
    campaign_run.add_argument(
        "--accuracy",
        choices=["exact", "fast"],
        default=None,
        help="override the spec's accuracy mode for every job",
    )
    campaign_run.add_argument(
        "--trace",
        nargs="?",
        const="jsonl",
        default=None,
        choices=["jsonl", "perfetto"],
        metavar="FORMAT",
        help="trace every job's DPM run; per-job files land in the campaign "
        "directory's traces/ folder (bare --trace means jsonl)",
    )
    campaign_run.add_argument(
        "--no-preflight", action="store_true",
        help="skip the reach-lint preflight of the grid's platform specs "
        "(by default, error-severity findings abort before any job runs)",
    )

    campaign_status_p = campaign_sub.add_parser(
        "status", help="show done/failed/missing jobs of a campaign directory"
    )
    campaign_status_p.add_argument("directory", help="campaign directory")

    campaign_report = campaign_sub.add_parser(
        "report", help="render the aggregate report of a campaign directory"
    )
    campaign_report.add_argument("directory", help="campaign directory")
    campaign_report.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    platform = subparsers.add_parser(
        "platform", help="validate/show/run declarative platform specs"
    )
    platform_sub = platform.add_subparsers(dest="platform_command")

    def add_spec_source(sub, required: bool = True) -> None:
        group = sub.add_mutually_exclusive_group(required=required)
        group.add_argument(
            "--spec", default=None, metavar="FILE",
            help="platform spec file (.json or .toml)",
        )
        group.add_argument(
            "--name", default=None,
            help="name of a registered platform (A1..C or custom)",
        )

    platform_validate = platform_sub.add_parser(
        "validate", help="validate spec files (platform or campaign; exit 1 on errors)"
    )
    platform_validate.add_argument(
        "specs", nargs="+", metavar="FILE", help="spec files (.json or .toml)"
    )

    platform_show = platform_sub.add_parser(
        "show", help="print a human-readable summary of one platform"
    )
    add_spec_source(platform_show)
    platform_show.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the canonical JSON spec instead of the summary",
    )

    platform_run = platform_sub.add_parser(
        "run", help="run one platform end-to-end (DPM vs baseline) and print metrics"
    )
    add_spec_source(platform_run)
    platform_run.add_argument(
        "--setup", choices=sorted(_SETUPS), default=None,
        help="DPM setup to evaluate (default: the spec's policy, else 'paper')",
    )
    add_accuracy_flag(platform_run)
    add_backend_flag(platform_run)
    add_trace_flags(platform_run)

    platform_diff = platform_sub.add_parser(
        "diff", help="compare two platform specs field by field (exit 1 when they differ)"
    )
    platform_diff.add_argument(
        "spec_a", metavar="SPEC_A",
        help="first spec: a .json/.toml file or a registered platform name",
    )
    platform_diff.add_argument(
        "spec_b", metavar="SPEC_B",
        help="second spec: a .json/.toml file or a registered platform name",
    )

    platform_sub.add_parser("list", help="list the registered platform names")

    fuzz = subparsers.add_parser(
        "fuzz", help="differential fuzzing: generated platforms vs cross-axis oracles"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command")

    def add_oracle_flag(sub) -> None:
        sub.add_argument(
            "--oracles", default=None, metavar="NAMES",
            help="comma-separated oracle subset (exact_vs_fast, backend_parity, "
            "bus_timing, policy, structural); default: all",
        )

    fuzz_run = fuzz_sub.add_parser(
        "run", help="fuzz generated platforms through the differential oracles"
    )
    fuzz_run.add_argument(
        "--examples", type=int, default=100, metavar="N",
        help="number of generated platforms (default 100)",
    )
    fuzz_run.add_argument(
        "--seed", type=int, default=0,
        help="generation seed; the whole run (examples, shrinking, saved "
        "failure) is reproducible from it (default 0)",
    )
    fuzz_run.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus directory for shrunk failures "
        "(default tests/fuzz/corpus; 'none' disables saving)",
    )
    add_oracle_flag(fuzz_run)
    add_backend_flag(fuzz_run)

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="replay corpus entries (spec files, directories or hash prefixes)"
    )
    fuzz_replay.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="spec file, directory, or corpus hash prefix "
        "(default: the whole tests/fuzz/corpus directory)",
    )
    fuzz_replay.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus directory hash prefixes resolve against "
        "(default tests/fuzz/corpus)",
    )
    add_oracle_flag(fuzz_replay)
    add_backend_flag(fuzz_replay)

    fuzz_minimize = fuzz_sub.add_parser(
        "minimize", help="delta-debug a failing spec down to a minimal repro"
    )
    fuzz_minimize.add_argument(
        "spec", metavar="FILE", help="platform spec file that currently fails an oracle"
    )
    fuzz_minimize.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the minimized spec here (default: print its JSON)",
    )
    add_oracle_flag(fuzz_minimize)
    add_backend_flag(fuzz_minimize)

    return parser


def _cmd_table2(args) -> int:
    from repro.experiments.scenarios import paper_scenarios, scenario_by_name
    from repro.experiments.table2 import reproduce_table2

    if args.scenarios:
        scenarios = [scenario_by_name(name) for name in args.scenarios]
    else:
        scenarios = paper_scenarios()
    results = reproduce_table2(scenarios, dpm=_SETUPS[args.setup](), accuracy=args.accuracy)
    print(render_comparison(results))
    return 0


def _cmd_scenario(args) -> int:
    from repro.experiments.runner import run_comparison
    from repro.experiments.scenarios import scenario_by_name

    scenario = scenario_by_name(args.name)
    # None defers to the platform's own policy (when the scenario is
    # platform-backed and declares one), exactly like `platform run`.
    setup = None if args.setup is None else _SETUPS[args.setup]()
    request = _trace_request(args, scenario)
    metrics = run_comparison(
        scenario, dpm=setup, accuracy=args.accuracy,
        trace=request if request is not None else False,
        backend=args.backend,
    )
    setup_name = args.setup or _default_setup_name(scenario)
    _print_comparison(scenario, setup_name, args.accuracy, metrics,
                      backend_note=_backend_note(args.backend))
    if request is not None:
        print(f"\ntrace written to {request.resolve_path(scenario.name)}")
    return 0


def _trace_request(args, scenario):
    """The effective trace request of one CLI run (None when untraced).

    Explicit ``--trace``/``--trace-format`` flags win; without them the
    platform spec's ``trace:`` section applies (when the scenario came
    from one).
    """
    from repro.obs import TraceRequest

    fmt = getattr(args, "trace_format", None) or getattr(args, "trace", None)
    if fmt is not None:
        return TraceRequest(format=fmt, path=getattr(args, "trace_out", None))
    spec = getattr(scenario, "spec", None)
    request = TraceRequest.from_trace_def(getattr(spec, "trace", None))
    out = getattr(args, "trace_out", None)
    if request is not None and out is not None:
        request = TraceRequest(format=request.format, path=out,
                               events=request.events)
    return request


def _default_setup_name(scenario) -> str:
    spec = getattr(scenario, "spec", None)
    if spec is not None and spec.policy is not None:
        return spec.policy.name
    return "paper"


def _backend_note(requested) -> str:
    """Human-readable resolved backend, e.g. ``python`` or
    ``python (requested native: extension not built ...)``."""
    from repro.sim.native import resolve_backend

    return resolve_backend(requested).describe()


def _print_comparison(scenario, setup_name: str, accuracy: str, metrics,
                      backend_note: str = "python") -> None:
    print(f"Scenario {scenario.name}: {scenario.description}")
    print(f"DPM setup: {setup_name} (accuracy: {accuracy}, backend: {backend_note})\n")
    rows = [
        ["energy saving (%)", f"{metrics.energy_saving_pct:.1f}"],
        ["temperature reduction (%)", f"{metrics.temperature_reduction_pct:.1f}"],
        ["average delay overhead (%)", f"{metrics.average_delay_overhead_pct:.1f}"],
        ["tasks executed", str(metrics.tasks_executed)],
        ["simulated time (ms)", f"{metrics.simulated_time_s * 1e3:.1f}"],
        ["DPM energy (mJ)", f"{metrics.dpm_energy_j * 1e3:.2f}"],
        ["baseline energy (mJ)", f"{metrics.baseline_energy_j * 1e3:.2f}"],
    ]
    if metrics.has_bus_figures:
        rows.extend([
            ["bus occupancy (%)", f"{metrics.bus_occupancy_pct:.1f}"],
            ["bus transfers", str(metrics.bus_transfer_count)],
            ["bus words moved", str(metrics.bus_words_transferred)],
            ["bus average wait (us)", f"{metrics.bus_average_wait_us:.1f}"],
        ])
        if metrics.bus_cancelled_count:
            rows.append(["bus cancelled requests", str(metrics.bus_cancelled_count)])
    print(format_table(["metric", "value"], rows))
    if metrics.per_ip:
        print("\nPer IP:")
        ip_rows = [
            [name, int(stats["tasks"]), f"{stats['energy_j'] * 1e3:.2f}",
             f"{stats['mean_delay_overhead_pct']:.0f}", int(stats["transitions"])]
            for name, stats in sorted(metrics.per_ip.items())
        ]
        print(format_table(["IP", "tasks", "energy (mJ)", "delay (%)", "transitions"], ip_rows))


def _cmd_rules(args) -> int:
    if args.spec:
        from repro.lint import spec_rule_table

        table = spec_rule_table(_load_spec_or_name(args.spec))
        if table is None:
            print(f"error: {args.spec} uses a non-rule-based policy",
                  file=sys.stderr)
            return 2
    else:
        table = paper_rule_table()
    if args.explain is not None:
        return _explain_rules(table, args.explain)
    if args.priority and args.battery and args.temperature:
        state = table.select_levels(
            TaskPriority(args.priority),
            BatteryLevel(args.battery),
            TemperatureLevel(args.temperature),
            bus=BusLevel(args.bus) if args.bus else BusLevel.LOW,
        )
        rendering = (
            f"priority={args.priority}, battery={args.battery}, "
            f"temperature={args.temperature}"
        )
        if args.bus:
            rendering += f", bus={args.bus}"
        print(f"{rendering} -> {state}")
        return 0
    if args.priority or args.battery or args.temperature:
        print("error: --priority, --battery and --temperature must be given together",
              file=sys.stderr)
        return 2
    print(table.describe())
    return 0


def _explain_rules(table, levels: List[str]) -> int:
    """First-match trace: ``rules --explain PRIORITY BATTERY TEMP [BUS]``."""
    from repro.dpm.levels import RuleContext

    if not 3 <= len(levels) <= 4:
        print("error: --explain takes PRIORITY BATTERY TEMPERATURE [BUS]",
              file=sys.stderr)
        return 2
    try:
        context = RuleContext(
            TaskPriority(levels[0]),
            BatteryLevel(levels[1]),
            TemperatureLevel(levels[2]),
            bus=BusLevel(levels[3]) if len(levels) == 4 else BusLevel.LOW,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    trace = table.explain(context)
    for step in trace:
        print(step.describe())
    winner = trace[-1] if trace and trace[-1].matched else None
    if winner is None:
        print(f"\nno rule matches ({context.describe()})")
        return 1
    print(
        f"\n{context.describe()} -> {winner.rule.state} "
        f"(rule {winner.index}, {len(trace) - 1} earlier rule(s) skipped)"
    )
    return 0


def _cmd_lint(args) -> int:
    from repro.errors import ReproError
    from repro.lint import lint_spec, selfcheck
    from repro.platform import (
        PlatformSpec,
        load_spec_dict,
        platform_by_name,
        platform_names,
    )

    reports = []
    bad_input = 0
    if args.self_check:
        reports.append(selfcheck())
    if args.specs:
        import os

        for target in args.specs:
            try:
                if os.path.exists(target) or target.endswith((".json", ".toml")):
                    data = load_spec_dict(target)
                    if "scenarios" in data or "setups" in data:
                        print(f"{target}: campaign spec, nothing to lint")
                        continue
                    spec = PlatformSpec.from_dict(data)
                else:
                    spec = platform_by_name(target)
            except (ReproError, OSError) as error:
                bad_input += 1
                print(f"error: {target}: {error}", file=sys.stderr)
                continue
            reports.append(lint_spec(spec, reach=args.reach))
    elif not args.self_check:
        for name in platform_names():
            reports.append(lint_spec(platform_by_name(name), reach=args.reach))
    for report in reports:
        print(report.describe())
    if bad_input:
        return 2
    return 0 if all(r.is_clean(strict=args.strict) for r in reports) else 1


def _cmd_reach(args) -> int:
    import os

    from repro.errors import ReproError
    from repro.lint import build_model, compute_reach
    from repro.platform import PlatformSpec, load_spec_dict, platform_by_name

    target = args.spec
    try:
        if os.path.exists(target) or target.endswith((".json", ".toml")):
            spec = PlatformSpec.from_dict(load_spec_dict(target))
        else:
            spec = platform_by_name(target)
        result = compute_reach(build_model(spec))
    except (ReproError, OSError) as error:
        print(f"error: {target}: {error}", file=sys.stderr)
        return 2
    print(result.describe())
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import condition_sweep

    results = condition_sweep(task_count=args.tasks)
    rows = [
        [metrics.scenario, f"{metrics.energy_saving_pct:.1f}",
         f"{metrics.temperature_reduction_pct:.1f}",
         f"{metrics.average_delay_overhead_pct:.1f}"]
        for metrics in results
    ]
    print(
        format_table(
            ["battery/temperature", "energy saving (%)", "temp. reduction (%)", "delay (%)"],
            rows,
            title="Condition sweep (paper DPM vs always-on)",
        )
    )
    return 0


def _cmd_speed(args) -> int:
    from repro.experiments.table2 import simulation_speed, simulation_speed_report

    print(f"backend: {_backend_note(args.backend)} (accuracy: {args.accuracy})")
    print(simulation_speed_report(
        simulation_speed(accuracy=args.accuracy, backend=args.backend)
    ))
    return 0


def _cmd_breakeven(_args) -> int:
    characterization = default_characterization()
    transitions = default_transition_table(
        reference_power_w=characterization.active_power_w(
            characterization.operating_points.fastest.state
        )
    )
    analyzer = BreakEvenAnalyzer(characterization, transitions)
    rows = [
        [str(entry.state),
         f"{entry.round_trip_latency.seconds * 1e6:.0f}",
         f"{entry.round_trip_energy_j * 1e6:.2f}",
         "-" if entry.break_even is None else f"{entry.break_even.seconds * 1e6:.0f}"]
        for entry in analyzer.entries
    ]
    print(format_table(["state", "round trip (us)", "round trip (uJ)", "break-even (us)"], rows))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.export import markdown_report
    from repro.experiments.scenarios import paper_scenarios, scenario_by_name
    from repro.experiments.table2 import reproduce_table2, simulation_speed

    if args.scenarios:
        scenarios = [scenario_by_name(name) for name in args.scenarios]
    else:
        scenarios = paper_scenarios()
    results = reproduce_table2(scenarios)
    speeds = simulation_speed(scenarios) if args.with_speed else None
    text = markdown_report(results, speeds=speeds)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_campaign(args) -> int:
    from repro.errors import ReproError

    try:
        return _cmd_campaign_inner(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            "\ninterrupted — finished jobs are stored; "
            "re-run with --resume to complete the campaign",
            file=sys.stderr,
        )
        return 130


def _cmd_campaign_inner(args) -> int:
    import os

    from repro.campaign import (
        CampaignSpec,
        ResultStore,
        campaign_status,
        preflight_campaign,
        render_campaign_report,
        render_status,
        run_campaign,
    )

    if args.campaign_command is None:
        print("error: campaign needs a subcommand (run, status or report)", file=sys.stderr)
        return 2
    if args.campaign_command == "run":
        spec = CampaignSpec.from_file(args.spec)
        if args.accuracy is not None:
            spec.accuracy = args.accuracy
        directory = args.directory or os.path.join("campaigns", spec.name)
        if not args.no_preflight:
            # Lint here (not inside run_campaign) so the per-platform
            # summary lines are printed; errors raise CampaignError and
            # surface through the standard error path with exit code 2.
            for line in preflight_campaign(spec):
                if not args.quiet:
                    print(line)
        progress = None
        if not args.quiet:
            def progress(record):
                print(f"[{record['status']:>7}] {record['label']} "
                      f"({record['wall_clock_s']:.2f} s)")
        summary = run_campaign(
            spec,
            directory,
            workers=args.workers,
            resume=args.resume,
            job_timeout_s=args.timeout,
            progress=progress,
            trace_format=args.trace,
            preflight=False,
        )
        print(
            f"campaign {summary.campaign!r}: {summary.total_jobs} jobs, "
            f"{summary.executed} executed ({summary.ok} ok, {summary.errors} errors, "
            f"{summary.timeouts} timeouts), {summary.skipped} skipped, "
            f"{summary.wall_clock_s:.2f} s"
        )
        print(f"results stored in {directory}")
        failed = summary.errors + summary.timeouts
        return 1 if failed else 0
    store = ResultStore(args.directory)
    if args.campaign_command == "status":
        status = campaign_status(store)
        print(render_status(status))
        return 0 if status["counts"]["missing"] == 0 else 1
    # report
    spec = CampaignSpec.from_dict(store.read_manifest())
    # Only the current grid: a re-used directory may hold records of grid
    # cells that a later spec edit removed, which must not skew the means.
    current_ids = {job.job_id for job in spec.jobs()}
    stored = store.records()
    records = [record for record in stored if record.get("job_id") in current_ids]
    stale = len(stored) - len(records)
    if stale:
        print(f"note: ignoring {stale} stored record(s) no longer in the campaign grid",
              file=sys.stderr)
    text = render_campaign_report(records, title=f"Campaign {spec.name!r}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_platform(args) -> int:
    from repro.errors import ReproError

    try:
        return _cmd_platform_inner(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _load_platform_arg(args):
    """Resolve the --spec/--name pair into a validated PlatformSpec."""
    from repro.platform import load_platform, platform_by_name

    if args.spec is not None:
        return load_platform(args.spec)
    return platform_by_name(args.name)


def _cmd_platform_inner(args) -> int:
    if args.platform_command is None:
        print("error: platform needs a subcommand (validate, show, run, diff or list)",
              file=sys.stderr)
        return 2
    if args.platform_command == "validate":
        return _cmd_platform_validate(args)
    if args.platform_command == "diff":
        return _cmd_platform_diff(args)
    if args.platform_command == "list":
        from repro.platform import PAPER_PLATFORM_NAMES, platform_by_name, platform_names

        rows = []
        for name in platform_names():
            spec = platform_by_name(name)
            origin = "built-in" if name in PAPER_PLATFORM_NAMES else "registered"
            rows.append([name, str(len(spec.ips)), origin, spec.description])
        print(format_table(["platform", "IPs", "origin", "description"], rows))
        return 0
    spec = _load_platform_arg(args)
    if args.platform_command == "show":
        if args.as_json:
            from repro.platform import spec_to_json

            print(spec_to_json(spec), end="")
        else:
            _print_platform_summary(spec)
        return 0
    # run
    from repro.experiments.runner import run_comparison
    from repro.platform import to_scenario

    scenario = to_scenario(spec)
    setup = None if args.setup is None else _SETUPS[args.setup]()
    request = _trace_request(args, scenario)
    metrics = run_comparison(
        scenario, dpm=setup, accuracy=args.accuracy,
        trace=request if request is not None else False,
        backend=args.backend,
    )
    setup_name = args.setup or _default_setup_name(scenario)
    _print_comparison(scenario, setup_name, args.accuracy, metrics,
                      backend_note=_backend_note(args.backend))
    if request is not None:
        print(f"\ntrace written to {request.resolve_path(scenario.name)}")
    return 0


def _load_spec_or_name(value):
    """Resolve a positional spec argument: a file path or a registered name."""
    import os

    from repro.platform import load_platform, platform_by_name

    if os.path.exists(value) or value.endswith((".json", ".toml")):
        return load_platform(value)
    return platform_by_name(value)


def _cmd_platform_diff(args) -> int:
    from repro.platform import diff_specs, render_spec_diff

    spec_a = _load_spec_or_name(args.spec_a)
    spec_b = _load_spec_or_name(args.spec_b)
    if not diff_specs(spec_a, spec_b):
        print(f"specs are identical ({args.spec_a} == {args.spec_b})")
        return 0
    print(render_spec_diff(spec_a, spec_b, label_a=args.spec_a, label_b=args.spec_b))
    return 1


def _cmd_platform_validate(args) -> int:
    """Validate each file as a platform spec or (auto-detected) campaign spec."""
    from repro.campaign import CampaignSpec
    from repro.errors import ReproError
    from repro.platform import PlatformSpec, load_spec_dict

    failures = 0
    for path in args.specs:
        try:
            data = load_spec_dict(path)
            if "scenarios" in data or "setups" in data:
                spec = CampaignSpec.from_dict(data)
                print(f"ok: {path} (campaign {spec.name!r}, {len(spec.jobs())} jobs)")
            else:
                spec = PlatformSpec.from_dict(data)
                print(f"ok: {path} (platform {spec.name!r}, {len(spec.ips)} IPs)")
        except (ReproError, OSError) as error:
            failures += 1
            print(f"error: {path}: {error}", file=sys.stderr)
    if failures:
        print(f"{failures} of {len(args.specs)} spec file(s) failed validation",
              file=sys.stderr)
    return 1 if failures else 0


def _print_platform_summary(spec) -> None:
    print(f"Platform {spec.name}: {spec.description or '(no description)'}")
    battery = spec.battery.to_dict() or {"condition": "(library default)"}
    thermal = spec.thermal.to_dict() or {"condition": "(library default)"}
    if spec.bus.enabled:
        bus_detail = (
            f"{spec.bus.timing}, {spec.bus.arbitration}, "
            f"{spec.bus.words_per_second:g} words/s"
        )
        if spec.bus.timing == "cycle_accurate":
            bus_detail += f", {spec.bus.words_per_cycle} words/cycle"
    else:
        bus_detail = "none"
    facts = [
        ["IPs", str(len(spec.ips))],
        ["GEM", "enabled" if spec.gem.enabled else "disabled"],
        ["bus", bus_detail],
        ["battery", ", ".join(f"{k}={v}" for k, v in battery.items())],
        ["thermal", ", ".join(f"{k}={v}" for k, v in thermal.items())],
        ["policy", spec.policy.name if spec.policy else "(caller's choice)"],
        ["max time (ms)", f"{spec.max_time_ms:g}"],
        ["sample interval (us)", f"{spec.sample_interval_us:g}"],
    ]
    print(format_table(["property", "value"], facts))
    rows = []
    for ip in spec.ips:
        workload = ip.workload
        detail = workload.kind
        if workload.task_count is not None:
            detail += f" x{workload.task_count}"
        if workload.seed is not None:
            detail += f" (seed {workload.seed})"
        custom = []
        if ip.has_custom_characterization():
            custom.append("characterization")
        if ip.psm is not None:
            custom.append("psm")
        rows.append(
            [ip.name, str(ip.static_priority), detail, ip.initial_state,
             ", ".join(custom) or "-"]
        )
    print()
    print(format_table(["IP", "priority", "workload", "initial state", "custom"], rows))


def _parse_oracles(args):
    if args.oracles is None:
        return None
    return [name.strip() for name in args.oracles.split(",") if name.strip()]


def _cmd_fuzz(args) -> int:
    if args.fuzz_command is None:
        print("error: fuzz needs a subcommand (run, replay or minimize)",
              file=sys.stderr)
        return 2
    try:
        from repro.fuzz import Corpus, DEFAULT_CORPUS_DIR
    except ImportError as error:  # hypothesis is a test dependency
        print(f"error: fuzzing needs the 'hypothesis' package ({error})",
              file=sys.stderr)
        return 2
    oracles = _parse_oracles(args)

    if args.fuzz_command == "run":
        from repro.fuzz import run_fuzz

        corpus = None
        if args.corpus != "none":
            corpus = Corpus(args.corpus or DEFAULT_CORPUS_DIR)
        report = run_fuzz(
            examples=args.examples,
            seed=args.seed,
            oracles=oracles,
            backend=args.backend,
            corpus=corpus,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.fuzz_command == "replay":
        from repro.fuzz import replay_corpus

        corpus = Corpus(args.corpus or DEFAULT_CORPUS_DIR)
        targets = args.targets or [str(path) for path in corpus.entries()]
        if not targets:
            print(f"no corpus entries under {corpus.root}")
            return 0
        results = replay_corpus(
            targets, corpus=corpus, oracles=oracles, backend=args.backend
        )
        failures = 0
        for result in results:
            print(result.summary())
            if not result.ok:
                failures += 1
        print(f"replayed {len(results)} spec(s), {failures} failing")
        return 1 if failures else 0

    # minimize
    from repro.experiments.differential import run_differential
    from repro.fuzz import minimize_spec
    from repro.platform import load_platform, save_platform, spec_to_json

    spec = load_platform(args.spec)

    def still_fails(candidate) -> bool:
        return not run_differential(
            candidate, oracles=oracles, backend=args.backend
        ).ok

    if not still_fails(spec):
        print(f"error: {args.spec} passes every selected oracle; nothing to minimize",
              file=sys.stderr)
        return 2
    minimized = minimize_spec(spec, still_fails)
    result = run_differential(minimized, oracles=oracles, backend=args.backend)
    print(result.summary())
    if args.out:
        save_platform(minimized, args.out)
        print(f"minimized spec written to {args.out}")
    else:
        print(spec_to_json(minimized), end="")
    return 0


_COMMANDS = {
    "table2": _cmd_table2,
    "scenario": _cmd_scenario,
    "rules": _cmd_rules,
    "sweep": _cmd_sweep,
    "speed": _cmd_speed,
    "breakeven": _cmd_breakeven,
    "report": _cmd_report,
    "campaign": _cmd_campaign,
    "platform": _cmd_platform,
    "fuzz": _cmd_fuzz,
    "lint": _cmd_lint,
    "reach": _cmd_reach,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        # Library errors are user errors at the CLI boundary (unknown
        # scenario name, invalid spec, ...): print them cleanly instead of
        # a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
