"""Workload generation.

The functional IP blocks of the paper's evaluation are "pure traffic
generators": each IP "executes a sequence of tasks or remains in idle state
for a fixed time", and "different types of input statistics have been
considered ... in some sequences the IP is often busy, in some it is often in
idle state".

A :class:`Workload` is an ordered list of :class:`WorkloadItem` entries, each
pairing a :class:`~repro.soc.task.Task` with the idle gap that follows it.
The generator functions below build the statistics used by the experiments:

* :func:`periodic_workload` — fixed task size, fixed idle gap;
* :func:`high_activity_workload` — short idle gaps, the "often busy" case;
* :func:`low_activity_workload` — long idle gaps, the "often idle" case;
* :func:`bursty_workload` — back-to-back bursts separated by long pauses;
* :func:`random_workload` — fully parameterised uniform-random traffic.

All random generators take an explicit seed so simulations are reproducible.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.power.characterization import InstructionClass
from repro.sim.simtime import SimTime, ZERO_TIME, ms, us
from repro.soc.task import Task, TaskPriority

__all__ = [
    "WorkloadItem",
    "Workload",
    "periodic_workload",
    "random_workload",
    "high_activity_workload",
    "low_activity_workload",
    "bursty_workload",
]


@dataclass(frozen=True)
class WorkloadItem:
    """One task plus the idle gap that separates it from the next request."""

    task: Task
    idle_after: SimTime = ZERO_TIME


@dataclass
class Workload:
    """An ordered sequence of workload items."""

    items: List[WorkloadItem] = field(default_factory=list)
    name: str = "workload"

    def __post_init__(self) -> None:
        for item in self.items:
            if not isinstance(item, WorkloadItem):
                raise WorkloadError("workload items must be WorkloadItem instances")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[WorkloadItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> WorkloadItem:
        return self.items[index]

    # -- statistics -----------------------------------------------------------
    @property
    def task_count(self) -> int:
        """Number of tasks."""
        return len(self.items)

    @property
    def total_cycles(self) -> int:
        """Sum of the cycle counts of every task."""
        return sum(item.task.cycles for item in self.items)

    @property
    def total_idle(self) -> SimTime:
        """Sum of the idle gaps."""
        total = ZERO_TIME
        for item in self.items:
            total = total + item.idle_after
        return total

    def busy_fraction(self, max_frequency_hz: float) -> float:
        """Fraction of time the IP is busy when running at maximum frequency."""
        busy_s = self.total_cycles / max_frequency_hz
        idle_s = self.total_idle.seconds
        if busy_s + idle_s == 0.0:
            return 0.0
        return busy_s / (busy_s + idle_s)

    def priorities(self) -> List[TaskPriority]:
        """Priority of each task, in order."""
        return [item.task.priority for item in self.items]

    def with_priority(self, priority: TaskPriority) -> "Workload":
        """Copy of this workload with every task forced to ``priority``."""
        items = [
            WorkloadItem(
                Task(
                    name=item.task.name,
                    cycles=item.task.cycles,
                    priority=priority,
                    instruction_class=item.task.instruction_class,
                ),
                item.idle_after,
            )
            for item in self.items
        ]
        return Workload(items=items, name=f"{self.name}@{priority}")

    def scaled_idle(self, factor: float) -> "Workload":
        """Copy of this workload with every idle gap multiplied by ``factor``."""
        if factor < 0.0:
            raise WorkloadError("idle scaling factor must be non-negative")
        items = [WorkloadItem(item.task, item.idle_after * factor) for item in self.items]
        return Workload(items=items, name=f"{self.name}xidle{factor:g}")

    # -- (de)serialisation -------------------------------------------------------
    def as_dicts(self) -> List[dict]:
        """Serializable representation of every item.

        Idle gaps are stored as an exact femtosecond integer
        (``idle_after_fs``) so a round trip is lossless — campaign job hashes
        and platform-spec hashes depend on it.  The float ``idle_after_us``
        key of the legacy format is no longer emitted (it is deprecated and
        read-only, see :meth:`from_dicts`).
        """
        return [
            {
                "task": item.task.name,
                "cycles": item.task.cycles,
                "priority": str(item.task.priority),
                "instruction_class": str(item.task.instruction_class),
                "idle_after_fs": item.idle_after.femtoseconds,
            }
            for item in self.items
        ]

    @staticmethod
    def from_dicts(entries: Iterable[dict], name: str = "workload") -> "Workload":
        """Rebuild a workload from :meth:`as_dicts` output.

        Prefers the lossless ``idle_after_fs`` key.  Entries written by the
        pre-PR-1 format carry only the float ``idle_after_us``; they are
        still read, with a :class:`DeprecationWarning` — re-serialize such
        workloads to upgrade them (only ``idle_after_fs`` is emitted).
        """
        items = []
        legacy_keys = 0
        for entry in entries:
            task = Task(
                name=entry["task"],
                cycles=int(entry["cycles"]),
                priority=TaskPriority(entry.get("priority", "medium")),
                instruction_class=InstructionClass(entry.get("instruction_class", "alu")),
            )
            if "idle_after_fs" in entry:
                idle = SimTime(int(entry["idle_after_fs"]))
            else:
                if "idle_after_us" in entry:
                    legacy_keys += 1
                idle = us(float(entry.get("idle_after_us", 0.0)))
            items.append(WorkloadItem(task, idle))
        if legacy_keys:
            warnings.warn(
                f"workload {name!r}: {legacy_keys} item(s) use the deprecated "
                "'idle_after_us' float key; re-serialize with as_dicts() to the "
                "lossless 'idle_after_fs' format",
                DeprecationWarning,
                stacklevel=2,
            )
        return Workload(items=items, name=name)


def _choose_priority(rng: random.Random, priorities: Sequence[TaskPriority]) -> TaskPriority:
    return priorities[rng.randrange(len(priorities))]


def periodic_workload(
    task_count: int,
    cycles: int = 100_000,
    idle: SimTime = ms(1),
    priority: TaskPriority = TaskPriority.MEDIUM,
    instruction_class: InstructionClass = InstructionClass.ALU,
    name: str = "periodic",
) -> Workload:
    """Identical tasks separated by identical idle gaps."""
    if task_count <= 0:
        raise WorkloadError("task count must be positive")
    items = [
        WorkloadItem(
            Task(f"{name}-{index}", cycles, priority, instruction_class),
            idle,
        )
        for index in range(task_count)
    ]
    return Workload(items=items, name=name)


def random_workload(
    task_count: int,
    seed: int = 0,
    cycles_range: Tuple[int, int] = (20_000, 200_000),
    idle_range: Tuple[SimTime, SimTime] = (us(200), ms(2)),
    priorities: Sequence[TaskPriority] = tuple(TaskPriority),
    instruction_classes: Sequence[InstructionClass] = tuple(InstructionClass),
    name: str = "random",
) -> Workload:
    """Uniform-random traffic with configurable ranges."""
    if task_count <= 0:
        raise WorkloadError("task count must be positive")
    if cycles_range[0] <= 0 or cycles_range[0] > cycles_range[1]:
        raise WorkloadError("invalid cycle range")
    if idle_range[0].femtoseconds > idle_range[1].femtoseconds:
        raise WorkloadError("invalid idle range")
    rng = random.Random(seed)
    items = []
    for index in range(task_count):
        cycles = rng.randint(cycles_range[0], cycles_range[1])
        idle_fs = rng.randint(idle_range[0].femtoseconds, idle_range[1].femtoseconds)
        task = Task(
            name=f"{name}-{index}",
            cycles=cycles,
            priority=_choose_priority(rng, priorities),
            instruction_class=instruction_classes[rng.randrange(len(instruction_classes))],
        )
        items.append(WorkloadItem(task, SimTime(idle_fs)))
    return Workload(items=items, name=name)


def high_activity_workload(
    task_count: int = 40,
    seed: int = 1,
    priorities: Sequence[TaskPriority] = tuple(TaskPriority),
    name: str = "high-activity",
) -> Workload:
    """The "often busy" statistic: long tasks, short idle gaps (~80 % busy)."""
    return random_workload(
        task_count=task_count,
        seed=seed,
        cycles_range=(80_000, 240_000),
        idle_range=(us(50), us(400)),
        priorities=priorities,
        name=name,
    )


def low_activity_workload(
    task_count: int = 40,
    seed: int = 2,
    priorities: Sequence[TaskPriority] = tuple(TaskPriority),
    name: str = "low-activity",
) -> Workload:
    """The "often idle" statistic: short tasks, long idle gaps (~15 % busy)."""
    return random_workload(
        task_count=task_count,
        seed=seed,
        cycles_range=(20_000, 80_000),
        idle_range=(ms(1), ms(4)),
        priorities=priorities,
        name=name,
    )


def bursty_workload(
    burst_count: int = 6,
    tasks_per_burst: int = 8,
    seed: int = 3,
    cycles_range: Tuple[int, int] = (40_000, 120_000),
    intra_burst_idle: SimTime = us(20),
    inter_burst_idle: SimTime = ms(6),
    priorities: Sequence[TaskPriority] = tuple(TaskPriority),
    name: str = "bursty",
) -> Workload:
    """Bursts of back-to-back tasks separated by long pauses.

    This is the statistic where predictive shutdown matters most: the long
    inter-burst gaps are worth a deep sleep state, the short intra-burst gaps
    are not.
    """
    if burst_count <= 0 or tasks_per_burst <= 0:
        raise WorkloadError("burst count and tasks per burst must be positive")
    rng = random.Random(seed)
    items: List[WorkloadItem] = []
    for burst in range(burst_count):
        for position in range(tasks_per_burst):
            cycles = rng.randint(cycles_range[0], cycles_range[1])
            last_in_burst = position == tasks_per_burst - 1
            idle = inter_burst_idle if last_in_burst else intra_burst_idle
            task = Task(
                name=f"{name}-{burst}-{position}",
                cycles=cycles,
                priority=_choose_priority(rng, priorities),
            )
            items.append(WorkloadItem(task, idle))
    return Workload(items=items, name=name)
