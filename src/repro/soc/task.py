"""Tasks: the unit of work a functional IP executes.

The paper groups the instructions an IP executes into *tasks* (sequences of
instructions).  The IP sends a task execution request to its LEM before each
task; the LEM decides the power state, the PSM applies it and only then does
the IP execute.

This module defines the task description (:class:`Task`), the four task
priority classes of the paper (:class:`TaskPriority`) and the execution
record (:class:`TaskExecution`) from which the evaluation metrics — average
delay overhead in particular — are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro._enumtools import dense_index
from repro.errors import WorkloadError
from repro.power.characterization import InstructionClass
from repro.power.states import PowerState
from repro.sim.simtime import SimTime, ZERO_TIME, sec

__all__ = ["TaskPriority", "Task", "TaskExecution"]


class TaskPriority(Enum):
    """Task priority, "coded in 4 classes: Low, Medium, High and Very high"."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    VERY_HIGH = "very_high"

    @property
    def rank(self) -> int:
        """Ordering helper: LOW=0 ... VERY_HIGH=3."""
        return self._idx

    def at_least(self, other: "TaskPriority") -> bool:
        """True when this priority is at least as urgent as ``other``."""
        return self._idx >= other._idx

    def __str__(self) -> str:
        return self._str


dense_index(TaskPriority)  # _idx doubles as rank; _str for hot-path __str__


@dataclass(frozen=True)
class Task:
    """Description of one task (a sequence of instructions).

    Parameters
    ----------
    name:
        Identifier used in traces and reports.
    cycles:
        Number of clock cycles the task needs (independent of the ON state;
        slower states stretch the wall-clock time, not the cycle count).
    priority:
        The task priority class the LEM rules consume.
    instruction_class:
        Dominant instruction type, which scales the energy per cycle.
    """

    name: str
    cycles: int
    priority: TaskPriority = TaskPriority.MEDIUM
    instruction_class: InstructionClass = InstructionClass.ALU

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("task name must be non-empty")
        if self.cycles <= 0:
            raise WorkloadError(f"task {self.name!r} must have a positive cycle count")

    def reference_duration(self, max_frequency_hz: float) -> SimTime:
        """Execution time at the maximum clock frequency (the paper's baseline)."""
        if max_frequency_hz <= 0.0:
            raise WorkloadError("maximum frequency must be positive")
        return sec(self.cycles / max_frequency_hz)


@dataclass
class TaskExecution:
    """Record of one executed task, filled in by the functional IP."""

    task: Task
    ip_name: str
    request_time: SimTime = ZERO_TIME
    grant_time: SimTime = ZERO_TIME
    completion_time: SimTime = ZERO_TIME
    power_state: Optional[PowerState] = None
    energy_j: float = 0.0
    reference_duration: SimTime = ZERO_TIME
    reference_energy_j: float = 0.0

    # -- derived figures -------------------------------------------------
    @property
    def waiting_time(self) -> SimTime:
        """Time between the request and the LEM grant (wake-up, GEM gating)."""
        return self.grant_time - self.request_time

    @property
    def execution_time(self) -> SimTime:
        """Time between the grant and the completion."""
        return self.completion_time - self.grant_time

    @property
    def total_latency(self) -> SimTime:
        """Time between the request and the completion."""
        return self.completion_time - self.request_time

    @property
    def delay_overhead(self) -> float:
        """Fractional delay overhead versus the maximum-frequency reference.

        A value of ``0.0`` means the task completed exactly as fast as the
        reference; ``3.0`` means it took four times as long (300 % overhead).
        """
        if self.reference_duration.is_zero:
            raise WorkloadError("reference duration is not set on this execution record")
        actual = self.total_latency.seconds
        reference = self.reference_duration.seconds
        return max(0.0, (actual - reference) / reference)

    @property
    def energy_saving(self) -> float:
        """Fractional energy saving versus the maximum-frequency reference."""
        if self.reference_energy_j <= 0.0:
            raise WorkloadError("reference energy is not set on this execution record")
        return (self.reference_energy_j - self.energy_j) / self.reference_energy_j

    def as_dict(self) -> dict:
        """Serializable summary of this execution."""
        return {
            "task": self.task.name,
            "ip": self.ip_name,
            "priority": str(self.task.priority),
            "cycles": self.task.cycles,
            "state": None if self.power_state is None else str(self.power_state),
            "request_time_s": self.request_time.seconds,
            "grant_time_s": self.grant_time.seconds,
            "completion_time_s": self.completion_time.seconds,
            "energy_j": self.energy_j,
            "delay_overhead": self.delay_overhead if not self.reference_duration.is_zero else None,
        }
