"""Service requests between IP blocks.

The paper's functional IPs execute tasks "on the basis of some external
service requests coming from the other IP blocks or from outside the SoC".
The Table-2 experiments drive each IP with a pre-generated workload, but the
library also supports the request-driven mode through a simple channel:

* :class:`ServiceRequest` — a task wrapped with its originator and timestamp;
* :class:`ServiceChannel` — an unbounded FIFO with an event that wakes the
  consumer, usable directly from thread processes;
* :class:`ServiceRequestGenerator` — a module that converts a workload into
  service requests pushed onto a channel (i.e. a traffic source "outside the
  SoC").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ZERO_TIME
from repro.soc.task import Task
from repro.soc.workload import Workload

__all__ = ["ServiceRequest", "ServiceChannel", "ServiceRequestGenerator"]


@dataclass(frozen=True)
class ServiceRequest:
    """One request for a task execution, sent to an IP."""

    task: Task
    source: str = "external"
    issue_time: SimTime = ZERO_TIME


class ServiceChannel:
    """Unbounded FIFO of service requests with a not-empty event."""

    def __init__(self, kernel: Kernel, name: str = "service") -> None:
        self._kernel = kernel
        self.name = name
        self._queue: List[ServiceRequest] = []
        self.request_event: Event = kernel.event(f"{name}.request")
        self._closed = False
        self._pushed = 0
        self._popped = 0

    # -- producer side ------------------------------------------------------
    def push(self, request: ServiceRequest) -> None:
        """Append a request and wake the consumer."""
        if self._closed:
            raise WorkloadError(f"service channel {self.name!r} is closed")
        self._queue.append(request)
        self._pushed += 1
        self.request_event.notify()

    def push_task(self, task: Task, source: str = "external") -> None:
        """Convenience wrapper building the :class:`ServiceRequest`."""
        self.push(ServiceRequest(task=task, source=source, issue_time=self._kernel.now))

    def close(self) -> None:
        """Mark the channel as finished; consumers drain and stop."""
        self._closed = True
        self.request_event.notify()

    # -- consumer side ----------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        """True once the producer called :meth:`close`."""
        return self._closed

    @property
    def pending(self) -> int:
        """Number of queued, not yet consumed requests."""
        return len(self._queue)

    @property
    def pushed_count(self) -> int:
        """Total number of requests ever pushed."""
        return self._pushed

    @property
    def popped_count(self) -> int:
        """Total number of requests consumed."""
        return self._popped

    def try_pop(self) -> Optional[ServiceRequest]:
        """Pop the oldest request, or ``None`` when the queue is empty."""
        if not self._queue:
            return None
        self._popped += 1
        return self._queue.pop(0)

    def wait_and_pop(self):
        """Generator helper: wait until a request is available and pop it.

        Returns ``None`` if the channel is closed and drained.  Use as
        ``request = yield from channel.wait_and_pop()``.
        """
        while True:
            request = self.try_pop()
            if request is not None:
                return request
            if self._closed:
                return None
            yield self.request_event


class ServiceRequestGenerator(Module):
    """Pushes the tasks of a workload onto a channel with their idle gaps."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        workload: Workload,
        channel: ServiceChannel,
        source: str = "external",
        close_when_done: bool = True,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        self.workload = workload
        self.channel = channel
        self.source = source
        self.close_when_done = close_when_done
        self.issued = 0
        self.add_thread(self._generate, name="generate")

    def _generate(self):
        for item in self.workload:
            self.channel.push_task(item.task, source=self.source)
            self.issued += 1
            if item.idle_after.femtoseconds > 0:
                yield item.idle_after
        if self.close_when_done:
            self.channel.close()
