"""SoC builder: wires IPs, PSMs, LEMs, GEM, battery, thermal sensor and bus.

This module turns a declarative description (:class:`IpSpec` per IP plus a
:class:`SocConfig`) into a ready-to-run :class:`SoC` — the structure of the
paper's Fig. 1: every IP gets a PSM and a LEM; the optional GEM, battery
monitor, temperature sensor, supplementary fan and shared bus are SoC-level
singletons.

The same builder produces both the DPM configuration under study and the
paper's baseline (maximum frequency, never sleep): only the
:class:`~repro.dpm.controller.DpmSetup` changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.battery.model import Battery, BatteryConfig
from repro.battery.monitor import BatteryMonitor
from repro.errors import ConfigurationError
from repro.power.breakeven import BreakEvenAnalyzer
from repro.power.characterization import PowerCharacterization, default_characterization
from repro.power.energy import EnergyLedger
from repro.power.psm import PowerStateMachine
from repro.power.states import PowerState
from repro.power.transitions import TransitionTable, default_transition_table
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ms, sec
from repro.sim.simulator import Simulator
from repro.soc.bus import Bus
from repro.soc.ip import FunctionalIP
from repro.soc.workload import Workload
from repro.thermal.fan import Fan
from repro.thermal.model import ThermalConfig, ThermalModel
from repro.thermal.sensor import TemperatureSensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dpm imports soc.task)
    from repro.dpm.controller import DpmSetup
    from repro.dpm.gem import GlobalEnergyManager
    from repro.dpm.lem import LocalEnergyManager

__all__ = ["IpSpec", "SocConfig", "IpInstance", "SoC", "build_soc"]


@dataclass
class IpSpec:
    """Declarative description of one IP block."""

    name: str
    workload: Workload
    static_priority: int = 1
    characterization: Optional[PowerCharacterization] = None
    transitions: Optional[TransitionTable] = None
    initial_state: PowerState = PowerState.ON1
    bus_words_per_task: int = 0
    #: arbitration priority on the shared bus; ``None`` reuses the static
    #: priority (lower wins), the historical behaviour
    bus_priority: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("IP name must be non-empty")
        if self.static_priority < 1:
            raise ConfigurationError("static priority must be >= 1")
        if self.bus_priority is not None and self.bus_priority < 0:
            raise ConfigurationError("bus priority must be >= 0")


@dataclass
class SocConfig:
    """SoC-level configuration shared by every IP."""

    name: str = "soc"
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    sample_interval: SimTime = field(default_factory=lambda: ms(1))
    use_gem: bool = False
    with_fan: bool = True
    fan_power_w: float = 0.05
    with_bus: bool = False
    bus_words_per_second: float = 50e6
    bus_arbitration: str = "priority"
    bus_timing: str = "event_driven"
    bus_words_per_cycle: int = 1
    trace_states: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval.is_zero:
            raise ConfigurationError("sample interval must be positive")


@dataclass
class IpInstance:
    """One built IP with its power-management entourage."""

    spec: IpSpec
    ip: FunctionalIP
    psm: PowerStateMachine
    lem: "LocalEnergyManager"
    characterization: PowerCharacterization


class SoC(Module):
    """The elaborated SoC of Fig. 1, ready to simulate."""

    #: structured-tracing hook (repro.obs); None keeps every hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None
    #: last battery/thermal levels reported on the trace (level-change
    #: detection; seeded by repro.obs.instrument)
    _traced_battery_level = None
    _traced_thermal_level = None

    def __init__(self, simulator: Simulator, config: SocConfig) -> None:
        super().__init__(simulator.kernel, config.name)
        self.simulator = simulator
        self.config = config
        self.ledger = EnergyLedger()
        self.battery = Battery(config.battery)
        self.thermal = ThermalModel(config.thermal)
        # Both sensors sample on the same schedule, so the SoC drives them
        # from one shared thread (monitor first, sensor second — the same
        # order in which their autonomous loops would have been activated):
        # one process activation per sample instead of two, with an
        # observable behaviour identical to independent samplers.
        self.battery_monitor = BatteryMonitor(
            simulator.kernel,
            "battery_monitor",
            self.battery,
            self.ledger,
            sample_interval=config.sample_interval,
            pre_sample=self.flush_power_books,
            autonomous=False,
            parent=self,
        )
        self.temperature_sensor = TemperatureSensor(
            simulator.kernel,
            "temperature_sensor",
            self.thermal,
            self.ledger,
            sample_interval=config.sample_interval,
            pre_sample=self.flush_power_books,
            autonomous=False,
            parent=self,
        )
        self.fast_engine = None
        if simulator.accuracy.is_fast:
            # Fast accuracy mode: no periodic sampler process at all — the
            # engine replays windows lazily (closed-form batches) and a
            # crossing guard materialises only the boundaries where a level
            # signal change could be observed.
            from repro.soc.sampling import FastSampleEngine

            self.fast_engine = FastSampleEngine(
                kernel=simulator.kernel,
                battery=self.battery,
                thermal=self.thermal,
                ledger=self.ledger,
                monitor=self.battery_monitor,
                sensor=self.temperature_sensor,
                interval=config.sample_interval,
                books_flusher=self.flush_power_books,
                name=f"{config.name}.fast_sampler",
            )
        else:
            self.add_thread(self._shared_sample_loop, name="sampler")
        self.fan: Optional[Fan] = None
        if config.with_fan:
            self.fan = Fan(
                simulator.kernel,
                "fan",
                self.thermal,
                self.ledger.account("fan"),
                power_w=config.fan_power_w,
                parent=self,
            )
        self.bus: Optional[Bus] = None
        if config.with_bus:
            self.bus = Bus(
                simulator.kernel,
                "bus",
                words_per_second=config.bus_words_per_second,
                arbitration=config.bus_arbitration,
                timing=config.bus_timing,
                words_per_cycle=config.bus_words_per_cycle,
                parent=self,
            )
        self.gem: Optional[GlobalEnergyManager] = None
        self.instances: List[IpInstance] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ips(self) -> List[FunctionalIP]:
        """The functional IP blocks, in creation order."""
        return [instance.ip for instance in self.instances]

    @property
    def lems(self) -> List[LocalEnergyManager]:
        """The local energy managers, in creation order."""
        return [instance.lem for instance in self.instances]

    @property
    def psms(self) -> List[PowerStateMachine]:
        """The power state machines, in creation order."""
        return [instance.psm for instance in self.instances]

    def instance(self, name: str) -> IpInstance:
        """Look up one IP instance by name."""
        for candidate in self.instances:
            if candidate.spec.name == name:
                return candidate
        raise ConfigurationError(f"SoC has no IP named {name!r}")

    @property
    def all_done(self) -> bool:
        """True once every IP finished its task source."""
        return all(ip.done for ip in self.ips)

    def total_energy_j(self) -> float:
        """SoC-wide energy consumed so far."""
        return self.ledger.total_j

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def run_until_done(
        self,
        max_time: SimTime = sec(10),
        check_interval: SimTime = ms(5),
    ) -> SimTime:
        """Simulate until every IP finished (or ``max_time`` elapsed).

        Returns the simulated time at the end of the run.  Energy books are
        flushed so the ledger reflects the full interval.
        """
        if max_time.is_zero:
            raise ConfigurationError("max_time must be positive")
        self.simulator.elaborate()
        # Fast mode drives the kernel directly: the per-chunk wall-clock
        # bookkeeping and statistics snapshots of Simulator.run are pure
        # overhead here, and the chunked end-time semantics are identical.
        run_chunk = (
            self.simulator.run if self.fast_engine is None else self.simulator.kernel.run
        )
        while not self.all_done and self.simulator.now < max_time:
            remaining = max_time - self.simulator.now
            chunk = check_interval if check_interval < remaining else remaining
            run_chunk(chunk)
        self.flush()
        return self.simulator.now

    def _shared_sample_loop(self):
        """One periodic process sampling battery and temperature in order."""
        interval = self.config.sample_interval
        monitor_sample = self.battery_monitor.sample_now
        sensor_sample = self.temperature_sensor.sample_now
        while True:
            yield interval
            monitor_sample()
            sensor_sample()
            if self._tracer is not None:
                self._trace_sample()

    def _trace_sample(self) -> None:
        """Emit one ``sample.window`` event plus any level crossings."""
        tracer = self._tracer
        now_fs = self.kernel.now_fs
        soc_value = self.battery.state_of_charge
        temperature = self.thermal.temperature_c
        tracer.emit(now_fs, "sample.window", self.name,
                    state_of_charge=soc_value, temperature_c=temperature)
        battery_level = self.battery.level
        if battery_level is not self._traced_battery_level:
            self._traced_battery_level = battery_level
            tracer.emit(now_fs, "battery.level", self.name,
                        level=str(battery_level), state_of_charge=soc_value)
        thermal_level = self.thermal.level
        if thermal_level is not self._traced_thermal_level:
            self._traced_thermal_level = thermal_level
            tracer.emit(now_fs, "thermal.level", self.name,
                        level=str(thermal_level), temperature_c=temperature)

    def flush_power_books(self, full: bool = False) -> None:
        """Post the lazily integrated background/fan energy up to now.

        ``full`` forces unquantised integration of in-flight PSM transitions
        (fast-mode end-of-run flush; a no-op in exact mode).
        """
        for instance in self.instances:
            instance.psm.flush_energy(full)
        if self.fan is not None:
            self.fan.flush_energy()

    def flush(self) -> None:
        """Close the energy books of every PSM and the fan, and resample sensors."""
        if self.fast_engine is not None:
            self.fast_engine.final_flush()
            return
        self.flush_power_books()
        self.battery_monitor.sample_now()
        self.temperature_sensor.sample_now()
        if self._tracer is not None:
            self._trace_sample()


def build_soc(
    ip_specs: Sequence[IpSpec],
    soc_config: Optional[SocConfig] = None,
    dpm: Optional[DpmSetup] = None,
    simulator: Optional[Simulator] = None,
    accuracy: Optional[object] = None,
    backend: Optional[str] = None,
) -> SoC:
    """Build the complete SoC of Fig. 1.

    Parameters
    ----------
    ip_specs:
        One :class:`IpSpec` per IP block.
    soc_config:
        SoC-level configuration (battery, thermal, GEM, bus, sampling).
    dpm:
        The power-management setup; defaults to the paper's DPM
        (:meth:`DpmSetup.paper`).
    simulator:
        Optional pre-existing simulator to build into.
    accuracy:
        Accuracy mode of the run (:class:`~repro.sim.accuracy.AccuracyMode`
        or its name).  Defaults to ``exact``; when a ``simulator`` is passed
        its mode wins and a conflicting ``accuracy`` raises.
    backend:
        Kernel backend of the run (``"python"``, ``"native"`` or ``"auto"``;
        see :mod:`repro.sim.native`).  Defaults to the ``REPRO_SIM_BACKEND``
        environment variable; when a ``simulator`` is passed its backend
        wins and a conflicting explicit ``backend`` raises.
    """
    # Imported here (not at module level) to keep repro.soc importable on its
    # own: repro.dpm depends on repro.soc.task, so a module-level import in
    # the other direction would create a cycle.
    from repro.dpm.controller import DpmSetup
    from repro.dpm.gem import GlobalEnergyManager
    from repro.dpm.lem import LocalEnergyManager
    from repro.sim.accuracy import AccuracyMode

    if not ip_specs:
        raise ConfigurationError("at least one IP is required")
    names = [spec.name for spec in ip_specs]
    if len(names) != len(set(names)):
        raise ConfigurationError("IP names must be unique")
    soc_config = soc_config or SocConfig()
    dpm = dpm or DpmSetup.paper()
    if simulator is None:
        simulator = Simulator(
            name=soc_config.name,
            accuracy=AccuracyMode.from_name(accuracy),
            backend=backend,
        )
    else:
        if accuracy is not None and AccuracyMode.from_name(accuracy) is not simulator.accuracy:
            raise ConfigurationError(
                f"accuracy {accuracy!r} conflicts with the simulator's mode "
                f"{simulator.accuracy.value!r}"
            )
        if backend is not None:
            from repro.sim.native import resolve_backend

            if resolve_backend(backend).backend != simulator.backend:
                raise ConfigurationError(
                    f"backend {backend!r} conflicts with the simulator's "
                    f"backend {simulator.backend!r}"
                )
    soc = SoC(simulator, soc_config)
    simulator.add_module(soc)

    if soc_config.use_gem:
        soc.gem = GlobalEnergyManager(
            simulator.kernel,
            "gem",
            battery_monitor=soc.battery_monitor,
            temperature_sensor=soc.temperature_sensor,
            fan=soc.fan,
            bus=soc.bus,
            config=dpm.gem_config,
            parent=soc,
            fast=simulator.accuracy.is_fast,
        )

    for spec in ip_specs:
        characterization = spec.characterization or default_characterization()
        transitions = spec.transitions or default_transition_table(
            reference_power_w=characterization.active_power_w(PowerState.ON1)
        )
        account = soc.ledger.account(spec.name)
        psm = PowerStateMachine(
            simulator.kernel,
            f"{spec.name}_psm",
            characterization=characterization,
            transitions=transitions,
            energy_account=account,
            initial_state=spec.initial_state,
            parent=soc,
            fast=simulator.accuracy.is_fast,
            sample_interval=soc_config.sample_interval,
        )
        breakeven = BreakEvenAnalyzer(characterization, transitions)
        lem = LocalEnergyManager(
            simulator.kernel,
            f"{spec.name}_lem",
            ip_name=spec.name,
            psm=psm,
            characterization=characterization,
            battery=soc.battery,
            thermal=soc.thermal,
            breakeven=breakeven,
            policy=dpm.make_policy(),
            predictor=dpm.make_predictor(),
            gem=soc.gem,
            bus=soc.bus,
            static_priority=spec.static_priority,
            config=dpm.lem_config,
            parent=soc,
            fast=simulator.accuracy.is_fast,
        )
        ip = FunctionalIP(
            simulator.kernel,
            spec.name,
            characterization=characterization,
            psm=psm,
            energy_account=account,
            workload=spec.workload,
            bus=soc.bus,
            bus_words_per_task=spec.bus_words_per_task if soc.bus is not None else 0,
            bus_priority=(
                spec.static_priority if spec.bus_priority is None else spec.bus_priority
            ),
            parent=soc,
        )
        ip.connect_lem(lem)
        soc.instances.append(
            IpInstance(spec=spec, ip=ip, psm=psm, lem=lem, characterization=characterization)
        )
        if soc_config.trace_states:
            simulator.watch(psm.state_signal)

    if soc.fast_engine is not None:
        # The crossing guard's conservative horizons need an upper bound on
        # the SoC's non-task power: every IP idling in its hungriest state
        # plus the fan.  Started after the GEM so the guard's first plan
        # already sees the registered level-signal waiters.
        background_w = sum(
            instance.characterization.idle_power_w(PowerState.ON1)
            for instance in soc.instances
        )
        if soc.fan is not None:
            background_w += soc.fan.power_w
        soc.fast_engine.start(max_background_w=background_w)

    return soc
