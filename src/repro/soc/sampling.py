"""Lazy, event-driven battery/thermal sampling for the fast accuracy mode.

The exact accuracy mode drives the battery monitor and temperature sensor
from a periodic process: every sampling window it flushes the lazily
integrated background energy, reads the ledger, drains the battery by the
window's energy and advances the lumped-RC thermal model by one exponential
step.  That is faithful but expensive — the per-window arithmetic dominates
end-to-end scenario runtime once the kernel hot path is fast.

:class:`FastSampleEngine` produces the same per-window trajectory *lazily*:

* every energy deposit is mirrored into a **power timeline** (via the
  :class:`~repro.power.energy.EnergyAccount` recorder hook), keeping the
  interval each deposit was integrated over, so the per-window energy flux
  can be reconstructed exactly — the PSM background integration is free to
  coalesce arbitrarily long constant-power intervals;
* whenever simulation code *observes* battery or thermal state (the LEM's
  per-task estimates, the GEM's enable algorithm, the end-of-run flush), the
  engine replays all complete windows since the last replay.  Runs of
  windows with identical energy are collapsed into closed-form updates
  (linear state-of-charge drain, geometric temperature decay — see
  :meth:`~repro.battery.model.Battery.drain_windows` and
  :meth:`~repro.thermal.model.ThermalModel.advance_windows`);
* a **crossing guard** process wakes only at sampling boundaries where the
  quantised battery or temperature *level* could possibly change (computed
  from conservative bounds, re-armed when deposited energy exceeds the
  margin), so level-signal waiters — the GEM's sensor watch — still see
  level changes on exactly the window boundary where the exact sampler
  would have published them.  With no waiters the guard sleeps in long
  strides and the monitor processes are effectively skipped entirely.

The replay performs the *same arithmetic* as the exact sampler over the same
windows; only the floating-point association differs (documented tolerances:
1e-9 relative on energies, 1e-6 on temperatures and state of charge).
Decision-visible timing — task grants, power-state transitions, level-signal
change events — is preserved exactly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

from repro.sim.kernel import Kernel
from repro.sim.process import AnyOf
from repro.sim.simtime import SimTime

try:  # vectorised window bucketing (optional; pure-Python fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally present
    _np = None

__all__ = ["FastSampleEngine"]

_INF = float("inf")

#: Window count below which the scalar replay path wins (numpy call overhead
#: exceeds the loop cost on tiny replays).
_VECTOR_MIN_WINDOWS = 64

#: Upper bound on guard strides (windows): even with no possible level
#: crossing the guard wakes this often, keeping histories loosely populated
#: and re-validating its bounds.
_MAX_STRIDE = 512

#: Safety factor applied to deposit-energy margins (a deposit consuming more
#: than this fraction of the distance to the nearest level threshold re-arms
#: the guard early).
_MARGIN_SAFETY = 0.5


class FastSampleEngine:
    """Replays battery/thermal sampling windows lazily and in closed form."""

    #: structured-tracing hook (repro.obs); None keeps the hook site to a
    #: single attribute test, so untraced runs stay bit-identical.  Fast
    #: mode publishes sparsely (only at observed boundaries), so traced
    #: ``sample.window`` events are sparse too — level crossings are still
    #: reported on the exact boundary where they become observable.
    _tracer = None
    _trace_source = None
    _traced_battery_level = None
    _traced_thermal_level = None

    def __init__(
        self,
        kernel: Kernel,
        battery,
        thermal,
        ledger,
        monitor,
        sensor,
        interval: SimTime,
        books_flusher: Callable[[], None],
        name: str = "fast_sampler",
    ) -> None:
        self._kernel = kernel
        self._battery = battery
        self._thermal = thermal
        self._ledger = ledger
        self._monitor = monitor
        self._sensor = sensor
        self._name = name
        self._interval_fs = int(interval)
        self._interval_st = SimTime(self._interval_fs)
        self._interval_s = interval.seconds
        self._books_flusher = books_flusher
        # Replay state: last fully replayed window boundary and the running
        # ledger total apportioned to it (what the exact monitor would have
        # read there).
        self._boundary_fs = 0
        self._total_at_boundary = 0.0
        self._entries: List[Tuple[int, int, float]] = []
        self._fan_marks: List[Tuple[int, bool]] = []
        self._fan_at_boundary = bool(thermal._fan_on)
        self._replaying = False
        # Crossing-guard state.
        self._max_background_w = 0.0
        self._watching = False
        self._every_window = False
        self._margin_j = _INF
        self._pending_excess_j = 0.0
        self._reguard_sent = False
        self._reguard_event = kernel.event(f"{name}.reguard")
        self._started = False
        # Install the observation hooks.
        battery._sync_hook = self.sync
        thermal._sync_hook = self.sync
        thermal._fan_listener = self._on_fan_toggle
        ledger.attach_recorder(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self, max_background_w: float) -> None:
        """Arm the crossing guard; ``max_background_w`` bounds the SoC's
        non-task power (idle/residual/fan), used for conservative
        level-crossing horizons."""
        if self._started:
            return
        self._started = True
        self._max_background_w = max(0.0, max_background_w)
        self._kernel.create_thread(self._guard_loop, f"{self._name}.guard")

    # ------------------------------------------------------------------
    # Deposit recording (EnergyAccount hook)
    # ------------------------------------------------------------------
    def record(self, energy_j: float, span_fs: int, end_fs: int = 0) -> None:
        """Mirror one ledger deposit into the power timeline."""
        if not end_fs:
            end_fs = self._kernel._now_fs
        self._entries.append((end_fs - span_fs, end_fs, energy_j))
        margin = self._margin_j
        if margin != _INF:
            # Only energy *beyond* the assumed background rate consumes the
            # crossing margin: coalesced background intervals are already
            # covered by the guard's horizon bounds.
            excess = energy_j
            if span_fs:
                excess -= self._max_background_w * (span_fs * 1e-15)
            if excess > 0.0:
                self._pending_excess_j += excess
                if self._pending_excess_j >= margin and not self._reguard_sent:
                    self._reguard_sent = True
                    self._reguard_event.notify()

    def _on_fan_toggle(self, on: bool) -> None:
        self._fan_marks.append((self._kernel.now_fs, on))

    # ------------------------------------------------------------------
    # Lazy replay
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Replay all complete sampling windows up to the current time.

        Called before every observation of battery/thermal state; a no-op
        (two integer operations) while the simulation stays inside the
        window of the last replay.
        """
        now = self._kernel._now_fs
        target = now - now % self._interval_fs
        if target <= self._boundary_fs or self._replaying:
            return
        self._replay(target)

    def _replay(self, target_fs: int) -> None:
        self._replaying = True
        try:
            # Post all lazily integrated background energy first, exactly
            # like the exact sampler's pre-sample flush: afterwards every
            # source's accounting marker is at `now`, so no deposit can ever
            # straddle an already-replayed boundary.
            self._books_flusher()
            interval = self._interval_fs
            boundary = self._boundary_fs
            count = (target_fs - boundary) // interval
            # Vectorised bucketing: per-element IEEE operations (single adds
            # per slot) are identical to the scalar loop, so the numpy path
            # changes nothing but the interpreter overhead.  Reductions that
            # would reassociate (numpy's pairwise sum) are NOT used.
            vector = _np is not None and count >= _VECTOR_MIN_WINDOWS
            deltas = _np.zeros(count) if vector else [0.0] * count
            keep: List[Tuple[int, int, float]] = []
            for entry in self._entries:
                start, end, energy = entry
                if start == end:
                    # Point deposit.  One exactly on the replay target was
                    # recorded *before* this replay ran, which mirrors the
                    # exact ordering where the depositing process ran before
                    # the boundary sample: it belongs to the window ending
                    # at the target.  Deposits arriving at an already
                    # replayed boundary instead land in the next window,
                    # again matching exact (depositor after the sampler).
                    if start > target_fs:
                        keep.append(entry)
                    elif start == target_fs:
                        deltas[count - 1] += energy
                    else:
                        deltas[(start - boundary) // interval] += energy
                    continue
                if start >= target_fs:
                    keep.append(entry)
                    continue
                if end > target_fs:
                    # Tail fraction beyond the replay range stays pending.
                    keep.append((target_fs, end, energy * (end - target_fs) / (end - start)))
                    hi = target_fs
                else:
                    hi = end
                lo = start if start > boundary else boundary
                if lo >= hi:
                    continue
                power = energy / (end - start)  # joules per femtosecond
                first = (lo - boundary) // interval
                last = (hi - 1 - boundary) // interval
                if first == last:
                    deltas[first] += power * (hi - lo)
                else:
                    deltas[first] += power * (boundary + (first + 1) * interval - lo)
                    per_window = power * interval
                    if vector:
                        if last > first + 1:
                            deltas[first + 1:last] += per_window
                    else:
                        for index in range(first + 1, last):
                            deltas[index] += per_window
                    deltas[last] += power * (hi - (boundary + last * interval))
            self._entries = keep
            self._apply_windows(deltas, boundary, target_fs)
            # Sequential left-to-right sum in both paths: numpy's pairwise
            # reduction would reassociate and drift off the exact trajectory.
            self._total_at_boundary += float(sum(deltas))
            self._boundary_fs = target_fs
        finally:
            self._replaying = False

    def _apply_windows(self, deltas: List[float], boundary: int, target_fs: int) -> None:
        battery = self._battery
        thermal = self._thermal
        interval = self._interval_fs
        interval_st = self._interval_st
        interval_s = self._interval_s
        marks = self._fan_marks
        if marks and marks[0][0] < target_fs:
            # Rare path: the fan toggled inside the replay range, so the
            # thermal resistance is window-dependent.  Step window by window
            # under the historical fan state (the state the exact sampler
            # would have seen at each window's end).
            pending = [mark for mark in marks if mark[0] < target_fs]
            self._fan_marks = [mark for mark in marks if mark[0] >= target_fs]
            current_fan = thermal._fan_on
            state = self._fan_at_boundary
            mark_index = 0
            for index in range(len(deltas)):
                delta = float(deltas[index])
                window_end = boundary + (index + 1) * interval
                while mark_index < len(pending) and pending[mark_index][0] < window_end:
                    state = pending[mark_index][1]
                    mark_index += 1
                thermal._fan_on = state
                thermal.step(delta / interval_s, interval_st)
                battery.drain_windows(delta, interval_st, 1)
            while mark_index < len(pending):
                state = pending[mark_index][1]
                mark_index += 1
            self._fan_at_boundary = state
            thermal._fan_on = current_fan
            return
        count = len(deltas)
        if _np is not None and isinstance(deltas, _np.ndarray):
            # Vectorised run detection: one diff finds the boundaries of
            # equal-value runs, then the per-run closed-form updates are the
            # same calls, in the same order, with the same (exact) float
            # values as the scalar scan below.
            starts = [0]
            starts.extend(int(i) + 1 for i in _np.flatnonzero(_np.diff(deltas)))
            starts.append(count)
            for position in range(len(starts) - 1):
                index = starts[position]
                run = starts[position + 1] - index
                delta = float(deltas[index])
                battery.drain_windows(delta, interval_st, run)
                thermal.advance_windows(delta / interval_s, interval_st, run)
            return
        index = 0
        while index < count:
            delta = deltas[index]
            stop = index + 1
            while stop < count and deltas[stop] == delta:
                stop += 1
            run = stop - index
            battery.drain_windows(delta, interval_st, run)
            thermal.advance_windows(delta / interval_s, interval_st, run)
            index = stop

    # ------------------------------------------------------------------
    # End-of-run flush
    # ------------------------------------------------------------------
    def final_flush(self) -> None:
        """Reproduce the exact-mode end-of-run sample at the current time.

        Replays pending windows, drains the battery by the tail energy over
        the actual tail interval, applies the sensor's unconditional
        full-window thermal step, and publishes signals and histories.
        """
        self.sync()
        self._books_flusher(True)
        kernel = self._kernel
        now_fs = kernel.now_fs
        total = self._ledger.total_j
        delta = total - self._total_at_boundary
        elapsed_fs = now_fs - self._boundary_fs
        battery = self._battery
        if delta > 0.0:
            battery.draw_energy(
                delta, over=SimTime(elapsed_fs) if elapsed_fs else None
            )
        thermal = self._thermal
        tail = delta if delta > 0.0 else 0.0
        thermal.step(tail / self._interval_s, self._interval_st)
        self._total_at_boundary = total
        self._boundary_fs = now_fs
        self._entries = []
        self._fan_marks = []
        self._fan_at_boundary = bool(thermal._fan_on)
        self._publish()

    def _publish(self) -> None:
        """Write the monitor/sensor signals and histories (sparse in fast mode)."""
        now = self._kernel.now
        battery = self._battery
        thermal = self._thermal
        monitor = self._monitor
        sensor = self._sensor
        soc_value = battery.state_of_charge
        monitor._history.append((now, soc_value))
        monitor.level_signal.write(battery.level)
        monitor.soc_signal.write(soc_value)
        temperature = thermal._temperature_c
        sensor._history.append((now, temperature))
        sensor.temperature_signal.write(temperature)
        sensor.level_signal.write(thermal.level)
        tracer = self._tracer
        if tracer is not None:
            now_fs = self._kernel.now_fs
            source = self._trace_source or self._name
            tracer.emit(now_fs, "sample.window", source,
                        state_of_charge=soc_value, temperature_c=temperature)
            battery_level = battery.level
            if battery_level is not self._traced_battery_level:
                self._traced_battery_level = battery_level
                tracer.emit(now_fs, "battery.level", source,
                            level=str(battery_level), state_of_charge=soc_value)
            thermal_level = thermal.level
            if thermal_level is not self._traced_thermal_level:
                self._traced_thermal_level = thermal_level
                tracer.emit(now_fs, "thermal.level", source,
                            level=str(thermal_level), temperature_c=temperature)

    # ------------------------------------------------------------------
    # Crossing guard
    # ------------------------------------------------------------------
    def _guard_loop(self):
        kernel = self._kernel
        interval = self._interval_fs
        stride_timer = kernel.event(f"{self._name}.stride")
        timer_handle = None
        while True:
            stride = self._plan()
            wake_fs = self._boundary_fs + stride * interval
            now = kernel.now_fs
            if wake_fs <= now:
                wake_fs = (now // interval + 1) * interval
            if self._watching:
                timer_handle = kernel.schedule_timed(stride_timer, SimTime(wake_fs - now))
                yield AnyOf([stride_timer, self._reguard_event])
                # A reguard wake leaves the stride notification pending;
                # withdraw it so it cannot fire spuriously into a later wait.
                kernel.cancel_timed(timer_handle)
            else:
                yield SimTime(wake_fs - now)
            if kernel.now_fs % interval == 0:
                self.sync()
                self._publish()

    def _plan(self) -> int:
        """Number of windows with no possible level crossing (>= 1)."""
        self.sync()
        monitor_changed = self._monitor.level_signal.changed_event
        sensor_changed = self._sensor.level_signal.changed_event
        level_watchers = bool(
            monitor_changed._waiters
            or monitor_changed._callbacks
            or sensor_changed._waiters
            or sensor_changed._callbacks
        )
        raw_watchers = self._raw_signal_watchers()
        self._watching = level_watchers or raw_watchers
        self._reguard_sent = False
        self._margin_j = _INF
        if raw_watchers:
            # Someone watches the raw per-window signals: fall back to
            # materialising every boundary (exact sampling cadence).
            self._pending_excess_j = 0.0
            self._margin_j = 0.0
            return 1
        if not level_watchers:
            self._pending_excess_j = 0.0
            return _MAX_STRIDE
        stride = int(min(self._thermal_horizon(), self._battery_horizon(), _MAX_STRIDE))
        # Deposits recorded but not yet replayed (the current partial window,
        # including whichever one triggered a reguard) still count against
        # the fresh margin: they will land on upcoming boundaries.
        pending = 0.0
        background = self._max_background_w
        for start, end, energy in self._entries:
            excess = energy
            if end > start:
                excess -= background * ((end - start) * 1e-15)
            if excess > 0.0:
                pending += excess
        self._pending_excess_j = pending
        if pending >= self._margin_j:
            return 1  # a crossing at the very next boundary is possible
        return stride if stride >= 1 else 1

    def _raw_signal_watchers(self) -> bool:
        for signal in (
            self._monitor.soc_signal,
            self._sensor.temperature_signal,
        ):
            changed = signal.changed_event
            if changed._waiters or changed._callbacks or signal._observers:
                return True
        monitor_level = self._monitor.level_signal
        sensor_level = self._sensor.level_signal
        return bool(monitor_level._observers or sensor_level._observers)

    def _thermal_horizon(self) -> float:
        """Windows until a temperature-level crossing could possibly occur."""
        thermal = self._thermal
        config = thermal.config
        thresholds = config.thresholds
        temperature = thermal._temperature_c
        ambient = config.ambient_c
        resistance = config.thermal_resistance_c_per_w
        capacitance = config.thermal_capacitance_j_per_c
        # Fastest possible movement: the fan-reduced time constant.
        tau_fast = resistance * config.fan_resistance_scale * capacitance
        decay_fast = math.exp(-self._interval_s / tau_fast)
        if decay_fast >= 1.0:  # pragma: no cover - defensive
            return 1.0
        log_decay = math.log(decay_fast)
        horizon = _INF
        # Upward: background power alone cannot exceed steady_max; deposits
        # beyond the background rate consume the energy margin instead.
        steady_max = ambient + self._max_background_w * resistance
        upper = None
        if temperature < thresholds.medium_c:
            upper = thresholds.medium_c
        elif temperature < thresholds.high_c:
            upper = thresholds.high_c
        margin = _INF
        if upper is not None:
            margin = (upper - temperature) * capacitance * _MARGIN_SAFETY
            if steady_max > upper and temperature < steady_max:
                ratio = (upper - steady_max) / (temperature - steady_max)
                if ratio > 0.0:
                    horizon = min(horizon, math.log(ratio) / log_decay - 1.0)
                else:  # pragma: no cover - defensive
                    horizon = 1.0
        # Downward: cooling can at best decay toward ambient.
        lower = None
        if temperature >= thresholds.high_c:
            lower = thresholds.high_c
        elif temperature >= thresholds.medium_c:
            lower = thresholds.medium_c
        if lower is not None and temperature > ambient:
            if lower <= ambient:
                horizon = 1.0
            else:
                ratio = (lower - ambient) / (temperature - ambient)
                if 0.0 < ratio < 1.0:
                    horizon = min(horizon, math.log(ratio) / log_decay - 1.0)
        self._set_margin(margin)
        if horizon is _INF:
            return _INF
        return max(1.0, math.floor(horizon))

    def _battery_horizon(self) -> float:
        """Windows until a battery-level crossing could possibly occur."""
        battery = self._battery
        config = battery.config
        if config.on_ac_power:
            return _INF
        thresholds = config.thresholds
        soc = (
            max(0.0, min(1.0, battery._remaining_j / config.capacity_j))
        )
        lower = None
        for threshold in (thresholds.high, thresholds.medium, thresholds.low, thresholds.empty):
            if soc >= threshold:
                lower = threshold
                break
        if lower is None:
            return _INF  # already in the bottom class; no further crossing
        margin_j = (soc - lower) * config.capacity_j
        # Deposits beyond the background rate consume the energy margin; the
        # Peukert factor amplifies the removal, so solve for the smallest
        # deposit that could cross (factor capped via the closed form).
        exponent = config.peukert_exponent
        if exponent > 1.0:
            reference = config.nominal_power_w * self._interval_s
            deposit_margin = min(
                margin_j, (margin_j * reference ** (exponent - 1.0)) ** (1.0 / exponent)
            )
        else:
            deposit_margin = margin_j
        self._set_margin(deposit_margin * _MARGIN_SAFETY)
        per_window = self._max_background_w * self._interval_s
        if per_window <= 0.0 and config.self_discharge_w <= 0.0:
            return _INF
        rate = per_window
        if rate > 0.0 and per_window / self._interval_s > config.nominal_power_w:
            rate = per_window * (
                (per_window / self._interval_s / config.nominal_power_w)
                ** (exponent - 1.0)
            )
        rate += config.self_discharge_w * self._interval_s
        if rate <= 0.0:
            return _INF
        horizon = margin_j / rate - 1.0
        return max(1.0, math.floor(horizon))

    def _set_margin(self, margin_j: float) -> None:
        if margin_j < self._margin_j:
            self._margin_j = margin_j
