"""Functional IP: the traffic generator that executes tasks.

The paper treats each IP as a black box: it "executes a sequence of tasks or
remains in idle state for a fixed time", asking its Local Energy Manager for
permission (and a power state) before every task.  This module implements
that behaviour:

1. for every workload item, the IP sends a *task execution request* to its
   LEM and waits for the grant;
2. once granted, it executes the task at the speed of the PSM's current ON
   state, charging the task energy to its energy account;
3. it notifies the LEM of the completion and idles until the next request.

The IP can alternatively be driven by a :class:`~repro.soc.service.ServiceChannel`
(request-driven mode) and can optionally perform a bus transfer per task.

The LEM is any object honouring the small protocol used here:
``submit_task_request(task) -> grant`` (where ``grant`` exposes ``granted``,
``event`` and ``state``) and ``notify_task_complete(task)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError, WorkloadError
from repro.power.characterization import PowerCharacterization
from repro.power.energy import EnergyAccount, EnergyCategory
from repro.power.psm import PowerStateMachine
from repro.power.states import PowerState
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime
from repro.soc.bus import Bus
from repro.soc.service import ServiceChannel
from repro.soc.task import Task, TaskExecution
from repro.soc.workload import Workload

__all__ = ["FunctionalIP"]


class FunctionalIP(Module):
    """Workload- or request-driven traffic generator with DPM hooks.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Instance name; also used as the energy-account owner and bus master id.
    characterization:
        Power characterisation shared with the PSM and the LEM.
    psm:
        The IP's power state machine.
    energy_account:
        Ledger receiving the task (active) energy.
    workload:
        Task sequence to execute (mutually exclusive with ``service_channel``).
    service_channel:
        Optional request-driven source of tasks.
    bus:
        Optional shared bus; when given, every task performs one transfer of
        ``bus_words_per_task`` words before executing.
    bus_words_per_task:
        Words moved per task when a bus is attached.
    bus_priority:
        Arbitration priority used on the bus (lower wins).
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        characterization: PowerCharacterization,
        psm: PowerStateMachine,
        energy_account: EnergyAccount,
        workload: Optional[Workload] = None,
        service_channel: Optional[ServiceChannel] = None,
        bus: Optional[Bus] = None,
        bus_words_per_task: int = 0,
        bus_priority: int = 0,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if (workload is None) == (service_channel is None):
            raise ConfigurationError(
                f"IP {name!r} needs exactly one task source: a workload or a service channel"
            )
        if bus is None and bus_words_per_task:
            raise ConfigurationError("bus_words_per_task requires a bus")
        if bus is not None and bus_words_per_task < 0:
            raise ConfigurationError("bus_words_per_task must be non-negative")
        self.characterization = characterization
        self.psm = psm
        self.energy_account = energy_account
        self.workload = workload
        self.service_channel = service_channel
        self.bus = bus
        self.bus_words_per_task = bus_words_per_task
        self.bus_priority = bus_priority
        self.lem = None
        self.executions: List[TaskExecution] = []
        self.done_signal = self.signal("done", False)
        self.done_event = self.event("done")
        self.busy_signal = self.signal("busy", False)
        self._tasks_executed = 0
        # Fast accuracy mode (inherited from the PSM): the busy mirror is
        # only written while watched; exact mode keeps unconditional writes.
        self._fast = psm._fast
        self.add_thread(self._run, name="traffic")

    #: structured-tracing hook (repro.obs); None keeps every hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None

    # -- wiring -----------------------------------------------------------
    def connect_lem(self, lem) -> None:
        """Attach the Local Energy Manager that will serve this IP."""
        if self.lem is not None:
            raise ConfigurationError(f"IP {self.name!r} already has a LEM")
        self.lem = lem

    # -- status ---------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the whole task source has been executed."""
        return self.done_signal.read()

    @property
    def tasks_executed(self) -> int:
        """Number of completed tasks."""
        return self._tasks_executed

    @property
    def total_task_energy_j(self) -> float:
        """Active energy charged by this IP so far."""
        return self.energy_account.category_j(EnergyCategory.ACTIVE)

    def reference_duration(self, task: Task) -> SimTime:
        """Task duration at maximum frequency (paper baseline)."""
        return self.characterization.execution_time(PowerState.ON1, task.cycles)

    def reference_energy_j(self, task: Task) -> float:
        """Task energy at maximum frequency (paper baseline)."""
        return self.characterization.task_energy_j(
            PowerState.ON1, task.cycles, task.instruction_class
        )

    # -- main process -------------------------------------------------------------
    def _run(self):
        if self.lem is None:
            raise ConfigurationError(
                f"IP {self.name!r} has no LEM attached; call connect_lem() before running"
            )
        if self.workload is not None:
            yield from self._run_workload()
        else:
            yield from self._run_channel()
        self.done_signal.write(True)
        self.done_event.notify()

    def _run_workload(self):
        for item in self.workload:
            yield from self._execute_task(item.task, next_idle_hint=item.idle_after)
            if item.idle_after.femtoseconds > 0:
                yield item.idle_after

    def _run_channel(self):
        while True:
            request = yield from self.service_channel.wait_and_pop()
            if request is None:
                return
            yield from self._execute_task(request.task)

    def _execute_task(self, task: Task, next_idle_hint: Optional[SimTime] = None):
        record = TaskExecution(
            task=task,
            ip_name=self.name,
            request_time=self.kernel.now,
            reference_duration=self.reference_duration(task),
            reference_energy_j=self.reference_energy_j(task),
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                self.kernel.now_fs, "task.request", self.name,
                task=task.name, priority=str(task.priority), cycles=task.cycles,
            )
        grant = self.lem.submit_task_request(task)
        if not grant.granted:
            yield grant.event
        record.grant_time = self.kernel.now
        state = self.psm.state
        if not state.can_execute:
            raise WorkloadError(
                f"IP {self.name!r} was granted task {task.name!r} in non-executing state {state}"
            )
        if self.bus is not None and self.bus_words_per_task > 0:
            yield from self.bus.transfer(self.name, self.bus_words_per_task, self.bus_priority)
        duration = self.characterization.execution_time(state, task.cycles)
        energy = self.characterization.task_energy_j(state, task.cycles, task.instruction_class)
        if tracer is not None:
            now_fs = self.kernel.now_fs
            tracer.emit(
                now_fs, "task.start", self.name,
                task=task.name,
                wait_us=(now_fs - int(record.request_time)) / 1e9,
                duration_us=int(duration) / 1e9,
                energy_j=energy,
            )
        self.psm.set_busy(True)
        if self._fast:
            # Pure status mirror: in fast mode it is only written while
            # someone watches, skipping two update-phase visits per task.
            self.busy_signal.write_if_watched(True)
        else:
            self.busy_signal.write(True)
        yield duration
        self.psm.set_busy(False)
        if self._fast:
            self.busy_signal.write_if_watched(False)
        else:
            self.busy_signal.write(False)
        self.energy_account.add_energy(energy, EnergyCategory.ACTIVE)
        record.completion_time = self.kernel.now
        record.power_state = state
        record.energy_j = energy
        self.executions.append(record)
        self._tasks_executed += 1
        if tracer is not None:
            tracer.emit(
                self.kernel.now_fs, "task.complete", self.name,
                task=task.name, energy_j=energy,
            )
        self.lem.notify_task_complete(task, next_idle_hint)
