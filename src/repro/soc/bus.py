"""Shared on-chip bus with arbitration and occupancy statistics.

The GEM conditions its decisions on "the status of the SoC resources
(battery energy, chip temperature, bus occupation, etc.)".  This module
provides the bus occupation part: a single shared bus that masters acquire
for a number of word transfers, with either first-come-first-served or
priority arbitration.

The bus is optional in the Table-2 scenarios (the paper's traffic generators
do not describe bus traffic), but it is exercised by examples, tests and the
GEM's resource view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ZERO_TIME, sec

__all__ = ["Bus", "BusStatistics"]


@dataclass
class _BusRequest:
    master: str
    words: int
    priority: int
    event: Event
    arrival: SimTime
    granted: bool = False


@dataclass
class BusStatistics:
    """Aggregate bus statistics."""

    transfer_count: int = 0
    words_transferred: int = 0
    busy_time: SimTime = ZERO_TIME
    total_wait_time: SimTime = ZERO_TIME
    per_master_words: Dict[str, int] = field(default_factory=dict)

    def occupancy(self, elapsed: SimTime) -> float:
        """Fraction of ``elapsed`` during which the bus was busy."""
        if elapsed.is_zero:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def average_wait(self) -> SimTime:
        """Average time a transfer waited for the bus grant."""
        if self.transfer_count == 0:
            return ZERO_TIME
        return self.total_wait_time / self.transfer_count


class Bus(Module):
    """Single shared bus.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Instance name.
    words_per_second:
        Transfer bandwidth in words per second.
    arbitration:
        ``"fifo"`` (first come, first served) or ``"priority"`` (lowest
        priority number wins; ties broken by arrival order).
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        words_per_second: float = 50e6,
        arbitration: str = "priority",
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if words_per_second <= 0.0:
            raise ConfigurationError("bus bandwidth must be positive")
        if arbitration not in ("fifo", "priority"):
            raise ConfigurationError(f"unknown arbitration policy {arbitration!r}")
        self.words_per_second = words_per_second
        self.arbitration = arbitration
        self.stats = BusStatistics()
        self.busy_signal = self.signal("busy", False)
        self._queue: List[_BusRequest] = []
        self._owner: Optional[_BusRequest] = None

    # -- queries ------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        """True while a transfer is in progress."""
        return self._owner is not None

    @property
    def queue_length(self) -> int:
        """Number of masters waiting for the bus."""
        return len(self._queue)

    def occupancy(self) -> float:
        """Busy fraction since the start of the simulation."""
        return self.stats.occupancy(self.kernel.now)

    def transfer_duration(self, words: int) -> SimTime:
        """Time needed to move ``words`` words once the bus is granted."""
        if words <= 0:
            raise ConfigurationError("word count must be positive")
        return sec(words / self.words_per_second)

    # -- master interface ------------------------------------------------------
    def transfer(self, master: str, words: int, priority: int = 0):
        """Generator: acquire the bus, move ``words`` words, release.

        Use from a thread process as ``yield from bus.transfer("ip0", 128)``.
        """
        duration = self.transfer_duration(words)
        request = _BusRequest(
            master=master,
            words=words,
            priority=priority,
            event=self.kernel.event(f"{self.name}.grant.{master}"),
            arrival=self.kernel.now,
        )
        self._queue.append(request)
        self._try_grant()
        if not request.granted:
            yield request.event
        # Bus is ours now.
        wait = self.kernel.now - request.arrival
        self.stats.total_wait_time = self.stats.total_wait_time + wait
        yield duration
        self._release(request, duration)

    # -- internals ----------------------------------------------------------------
    def _select_next(self) -> Optional[_BusRequest]:
        if not self._queue:
            return None
        if self.arbitration == "fifo":
            return self._queue[0]
        return min(self._queue, key=lambda request: (request.priority, request.arrival.femtoseconds))

    def _try_grant(self) -> None:
        if self._owner is not None:
            return
        request = self._select_next()
        if request is None:
            self.busy_signal.write(False)
            return
        self._queue.remove(request)
        self._owner = request
        request.granted = True
        self.busy_signal.write(True)
        request.event.notify()

    def _release(self, request: _BusRequest, duration: SimTime) -> None:
        if self._owner is not request:  # pragma: no cover - defensive
            raise ConfigurationError("bus released by a master that does not own it")
        self._owner = None
        self.stats.transfer_count += 1
        self.stats.words_transferred += request.words
        self.stats.busy_time = self.stats.busy_time + duration
        per_master = self.stats.per_master_words
        per_master[request.master] = per_master.get(request.master, 0) + request.words
        self._try_grant()
