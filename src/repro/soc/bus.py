"""Shared on-chip bus with arbitration, occupancy statistics and two timing
modes.

The GEM conditions its decisions on "the status of the SoC resources
(battery energy, chip temperature, bus occupation, etc.)".  This module
provides the bus occupation part: a single shared bus that masters acquire
for a number of word transfers, with either first-come-first-served or
priority arbitration, and a quantised :class:`BusLevel` the energy managers
(and user rule tables) consume next to the battery and temperature levels.

Two timing modes are supported:

``event_driven`` (default)
    Grants happen immediately whenever the bus frees up and transfer
    durations are exact (``words / words_per_second``).  No clock exists; a
    bus-bearing model stays on the kernel's virtual-clock fast path.

``cycle_accurate``
    The bus owns a :class:`~repro.sim.clock.Clock` and arbitrates on its
    rising edges: requests queue at any time, but grants land only on
    posedges and transfer durations are quantised to whole bus cycles
    (``ceil(words / words_per_cycle)``).  Arbitration is *batched*: instead
    of materialising the clock and waking twice per cycle, the bus computes
    the next **interesting** edge analytically (pending request while free,
    in-flight release, owner cancellation) and jumps to it with one timed
    event, reproducing the classic posedge pipeline's delta ordering —
    edge, then arbiter in the following evaluate phase — so grant instants
    are identical to a per-cycle arbiter on a materialised clock, at
    event-driven cost.  The clock itself stays virtual.

The bus is cancellation-safe: a master that is killed (or otherwise stops
waiting) while queued can no longer wedge the arbiter — dead requests are
dropped at grant time, and :meth:`Bus.cancel` withdraws a request (or aborts
an in-flight transfer) explicitly.  :meth:`Bus.transfer` cleans up after
itself from a ``finally`` block, so a killed thread process releases its
claim on the bus automatically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Tuple

from repro._enumtools import dense_index
from repro.errors import ConfigurationError
from repro.sim.clock import Clock
from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ZERO_TIME, sec

__all__ = [
    "BUS_TIMING_MODES",
    "Bus",
    "BusLevel",
    "BusRequest",
    "BusStatistics",
    "BusThresholds",
]

#: accepted values of the ``timing`` constructor parameter
BUS_TIMING_MODES = ("event_driven", "cycle_accurate")


class BusLevel(Enum):
    """Quantised bus occupation as seen by the energy managers.

    Mirrors the battery (5 classes) and temperature (3 classes) codings of
    the paper's section 1.3: the bus contributes 3 occupation classes.
    """

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def rank(self) -> int:
        """Ordering helper: LOW=0, MEDIUM=1, HIGH=2."""
        return self._idx

    def __str__(self) -> str:
        return self._str


dense_index(BusLevel)  # _idx doubles as rank; _str for hot-path __str__


@dataclass(frozen=True)
class BusThresholds:
    """Occupancy fractions separating the three bus classes.

    An occupancy ``x`` (busy fraction in [0, 1]) maps to ``LOW`` when
    ``x < medium``, ``MEDIUM`` when ``medium <= x < high`` and ``HIGH``
    otherwise.
    """

    medium: float = 0.40
    high: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.medium < self.high < 1.0:
            raise ConfigurationError(
                "bus thresholds must satisfy 0 < medium < high < 1, got "
                f"medium={self.medium!r}, high={self.high!r}"
            )

    def classify(self, occupancy: float) -> BusLevel:
        """Map a busy fraction in [0, 1] to a :class:`BusLevel`."""
        if occupancy < self.medium:
            return BusLevel.LOW
        if occupancy < self.high:
            return BusLevel.MEDIUM
        return BusLevel.HIGH


@dataclass
class BusRequest:
    """One master's claim on the bus, from queueing to release.

    Returned by :meth:`Bus.request`; pass it to :meth:`Bus.cancel` to
    withdraw it (while queued) or abort it (while owning the bus).
    """

    master: str
    words: int
    priority: int
    event: Event
    arrival: SimTime
    duration: SimTime
    granted: bool = False
    completed: bool = False
    cancelled: bool = False
    grant_time: Optional[SimTime] = None

    @property
    def wait_time(self) -> Optional[SimTime]:
        """Time spent queued, or ``None`` while the grant is pending."""
        if self.grant_time is None:
            return None
        return self.grant_time - self.arrival


@dataclass
class BusStatistics:
    """Aggregate bus statistics.

    Wait-time accounting is grant-based: ``total_wait_time`` and
    ``grant_count`` are both updated at grant time, so
    :meth:`average_wait` is correct at any instant of the run (not only
    after the matching releases).  ``transfer_count``/``words_transferred``
    count *completed* transfers; an in-flight transfer shows up in
    occupancy through the ``in_flight`` argument of :meth:`occupancy`.
    """

    transfer_count: int = 0
    grant_count: int = 0
    cancelled_count: int = 0
    words_transferred: int = 0
    busy_time: SimTime = ZERO_TIME
    total_wait_time: SimTime = ZERO_TIME
    per_master_words: Dict[str, int] = field(default_factory=dict)

    def occupancy(self, elapsed: SimTime, in_flight: SimTime = ZERO_TIME) -> float:
        """Fraction of ``elapsed`` during which the bus was busy.

        ``in_flight`` credits the portion of a transfer still in progress
        (release has not happened yet); :meth:`Bus.occupancy` passes it so a
        mid-transfer reading does not underreport.
        """
        if elapsed.is_zero:
            return 0.0
        return min(1.0, (self.busy_time + in_flight) / elapsed)

    def average_wait(self) -> SimTime:
        """Average time a granted request waited for the bus."""
        if self.grant_count == 0:
            return ZERO_TIME
        return self.total_wait_time / self.grant_count


class Bus(Module):
    """Single shared bus.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Instance name.
    words_per_second:
        Transfer bandwidth in words per second.
    arbitration:
        ``"fifo"`` (first come, first served) or ``"priority"`` (lowest
        priority number wins; ties broken by arrival order).
    timing:
        ``"event_driven"`` (immediate grants, exact durations — the default)
        or ``"cycle_accurate"`` (grants on clock posedges, durations
        quantised to whole bus cycles).
    words_per_cycle:
        Words moved per bus cycle in cycle-accurate mode; together with
        ``words_per_second`` it fixes the bus clock frequency
        (``words_per_second / words_per_cycle``).
    thresholds:
        Occupancy thresholds of the :class:`BusLevel` coding.
    level_window:
        Trailing window over which :meth:`occupancy_level` measures the
        busy fraction.  Defaults to the time the bus needs to move 8192
        words, so the level tracks *current* contention instead of the
        lifetime average (which dilutes toward LOW on long runs and would
        make bus-conditioned rules blind to a late saturation burst).
    """

    #: default :attr:`level_window`, expressed in words of traffic
    LEVEL_WINDOW_WORDS = 8192

    #: structured-tracing hook (repro.obs); None keeps every hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        words_per_second: float = 50e6,
        arbitration: str = "priority",
        timing: str = "event_driven",
        words_per_cycle: int = 1,
        thresholds: Optional[BusThresholds] = None,
        level_window: Optional[SimTime] = None,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if words_per_second <= 0.0:
            raise ConfigurationError("bus bandwidth must be positive")
        if arbitration not in ("fifo", "priority"):
            raise ConfigurationError(f"unknown arbitration policy {arbitration!r}")
        if timing not in BUS_TIMING_MODES:
            raise ConfigurationError(
                f"unknown bus timing mode {timing!r} "
                f"(expected one of: {', '.join(BUS_TIMING_MODES)})"
            )
        if not isinstance(words_per_cycle, int) or words_per_cycle < 1:
            raise ConfigurationError(
                f"words_per_cycle must be a positive integer, got {words_per_cycle!r}"
            )
        self.words_per_second = words_per_second
        self.arbitration = arbitration
        self.timing = timing
        self.words_per_cycle = words_per_cycle
        self.thresholds = thresholds or BusThresholds()
        self.stats = BusStatistics()
        self.busy_signal = self.signal("busy", False)
        # Quantised occupancy as of the *last bus transaction* (grant,
        # release or cancel) — the windowed occupancy decays between
        # transactions, so on-demand consumers (the GEM/LEM) call
        # occupancy_level() instead of reading this signal, and the signal
        # is only maintained while someone observes it.
        self.level_signal = self.signal("level", BusLevel.LOW)
        if level_window is None:
            level_window = sec(self.LEVEL_WINDOW_WORDS / words_per_second)
        elif level_window.is_zero:
            raise ConfigurationError("the bus level window must be positive")
        self.level_window = level_window
        self._queue: List[BusRequest] = []
        self._owner: Optional[BusRequest] = None
        self._start_fs = kernel.now_fs
        # Completed busy intervals (start_fs, end_fs) young enough to
        # intersect the level window; trimmed on append and on read.
        self._busy_log: Deque[Tuple[int, int]] = deque()
        self.clock: Optional[Clock] = None
        if timing == "cycle_accurate":
            # One word batch per rising edge.  The clock stays *virtual*:
            # grant instants come from its analytic edge schedule
            # (Clock.next_posedge_fs), so no toggle thread ever runs.
            self.clock = Clock(
                kernel,
                "clk",
                period=sec(words_per_cycle / words_per_second),
                parent=self,
            )
            # Batched arbitration plumbing: a timed event jumps to the next
            # interesting posedge; its callback re-notifies through a delta
            # event so the arbiter method runs one evaluate phase *after*
            # the edge instant begins — exactly where a method statically
            # sensitive to a materialised clock's posedge would run (toggle
            # write, update, posedge delta, arbiter evaluate).
            self._arb_scheduled_fs: Optional[int] = None
            self._arb_timer = self.event("arb_edge")
            self._arb_timer.add_callback(self._on_arb_timer)
            self._arb_fire = self.event("arb_fire")
            self.add_method(
                self._on_posedge,
                sensitivity=[self._arb_fire],
                name="arbiter",
                dont_initialize=True,
            )

    # -- queries ------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        """True while a transfer is in progress."""
        return self._owner is not None

    @property
    def is_cycle_accurate(self) -> bool:
        """True when grants are synchronised to the bus clock."""
        return self.timing == "cycle_accurate"

    @property
    def queue_length(self) -> int:
        """Number of masters waiting for the bus."""
        return len(self._queue)

    def busy_time_so_far(self) -> SimTime:
        """Completed busy time plus the in-flight portion up to now."""
        return self.stats.busy_time + self._in_flight()

    def occupancy(self) -> float:
        """Busy fraction since the bus was created, including the portion of
        an in-flight transfer already elapsed (a mid-transfer reading — the
        GEM's usual one — must not underreport)."""
        return self.stats.occupancy(
            SimTime(self.kernel.now_fs - self._start_fs), self._in_flight()
        )

    def recent_occupancy(self, window: Optional[SimTime] = None) -> float:
        """Busy fraction over the trailing ``window`` (default
        :attr:`level_window`), including the in-flight transfer.

        Unlike the lifetime :meth:`occupancy` this measures *current*
        contention, which is what the energy managers' quantised bus level
        needs: a saturation burst registers immediately and fades once the
        bus has been idle for a window, regardless of how long the run is.
        """
        retention_fs = int(self.level_window)
        window_fs = retention_fs if window is None else int(window)
        if not 0 < window_fs <= retention_fs:
            raise ConfigurationError(
                f"occupancy window must be positive and at most the level "
                f"window ({SimTime(retention_fs)}), got {SimTime(window_fs)}"
            )
        now_fs = self.kernel.now_fs
        elapsed_fs = now_fs - self._start_fs
        if elapsed_fs <= 0:
            return 0.0
        log = self._busy_log
        # The log retains level_window of history; trim with *that* cutoff
        # only, so a narrower diagnostic window never discards intervals
        # later default-window readings still need.
        retention_cutoff_fs = now_fs - min(retention_fs, elapsed_fs)
        while log and log[0][1] <= retention_cutoff_fs:
            log.popleft()
        span_fs = min(window_fs, elapsed_fs)
        cutoff_fs = now_fs - span_fs
        busy_fs = sum(
            end - max(start, cutoff_fs) for start, end in log if end > cutoff_fs
        )
        owner = self._owner
        if owner is not None and owner.grant_time is not None:
            busy_fs += now_fs - max(int(owner.grant_time), cutoff_fs)
        return min(1.0, busy_fs / span_fs)

    def occupancy_level(self) -> BusLevel:
        """The quantised :class:`BusLevel` of :meth:`recent_occupancy`."""
        return self.thresholds.classify(self.recent_occupancy())

    def cycles_for(self, words: int) -> int:
        """Whole bus cycles needed for ``words`` (cycle-accurate mode)."""
        if words <= 0:
            raise ConfigurationError("word count must be positive")
        return -(-words // self.words_per_cycle)  # ceil division

    def transfer_duration(self, words: int) -> SimTime:
        """Time needed to move ``words`` words once the bus is granted.

        Exact in event-driven mode; rounded up to whole bus cycles in
        cycle-accurate mode.
        """
        if self.clock is not None:
            return SimTime(self.cycles_for(words) * int(self.clock.period))
        if words <= 0:
            raise ConfigurationError("word count must be positive")
        return sec(words / self.words_per_second)

    # -- master interface ------------------------------------------------------
    def request(self, master: str, words: int, priority: int = 0) -> BusRequest:
        """Queue a transfer request and return its handle.

        In event-driven mode the request may be granted synchronously
        (``request.granted`` is then already true); in cycle-accurate mode
        grants only ever land on the next clock posedge.  The caller waits
        on ``request.event`` when not yet granted, holds the bus for
        ``request.duration`` once granted, and finishes with
        :meth:`complete` — or :meth:`cancel` to withdraw.

        Contract: a master must stay parked on ``request.event`` (possibly
        inside an ``AnyOf`` with a timeout) from submission until granted.
        A queued request whose master is not waiting when arbitration runs
        is treated as abandoned and dropped — call :meth:`cancel` first if
        you intend to stop waiting.  After any wake-up, check
        ``request.cancelled``: a third party may have withdrawn the request
        (the event is notified so the master never sleeps through it).
        """
        handle = BusRequest(
            master=master,
            words=words,
            priority=priority,
            event=self.kernel.event(f"{self.name}.grant.{master}"),
            arrival=self.kernel.now,
            duration=self.transfer_duration(words),
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.kernel.now_fs, "bus.request", self.name,
                        master=master, words=words, priority=priority)
        self._queue.append(handle)
        if self.clock is None:
            self._try_grant(fresh=handle)
        else:
            self._schedule_arbitration()
        return handle

    def transfer(self, master: str, words: int, priority: int = 0):
        """Generator: acquire the bus, move ``words`` words, release.

        Use from a thread process as ``yield from bus.transfer("ip0", 128)``.
        Cancellation-safe: if the calling process is killed while queued or
        mid-transfer, the ``finally`` block withdraws the request so the bus
        can never be wedged by a dead master.
        """
        handle = self.request(master, words, priority)
        try:
            if not handle.granted:
                yield handle.event
                if handle.cancelled:
                    return  # withdrawn by a third party while queued
            yield handle.duration
            self.complete(handle)
        finally:
            if not handle.completed and not handle.cancelled:
                self.cancel(handle)

    def complete(self, request: BusRequest) -> None:
        """Release the bus at the end of ``request``'s transfer."""
        if request.cancelled:
            return
        if self._owner is not request:
            raise ConfigurationError("bus released by a master that does not own it")
        self._owner = None
        request.completed = True
        self._log_busy(int(request.grant_time), self.kernel.now_fs)
        stats = self.stats
        stats.transfer_count += 1
        stats.words_transferred += request.words
        stats.busy_time = stats.busy_time + request.duration
        per_master = stats.per_master_words
        per_master[request.master] = per_master.get(request.master, 0) + request.words
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.kernel.now_fs, "bus.release", self.name,
                        master=request.master, words=request.words)
        if self.clock is None:
            self._try_grant()
        else:
            self._schedule_arbitration()
        if self._owner is None:
            self.busy_signal.write(False)
        self._update_level()

    def cancel(self, request: BusRequest) -> bool:
        """Withdraw ``request``: dequeue it, or abort its in-flight transfer.

        Returns True when something was actually withdrawn.  Aborting an
        in-flight transfer credits the busy time already consumed (the bus
        *was* occupied) but counts no completed transfer and no words.  A
        master still parked on ``request.event`` is woken (and must check
        ``request.cancelled``); a mid-transfer owner cancelled by a third
        party finishes its timed wait normally and finds :meth:`complete` a
        no-op.
        """
        if request.completed or request.cancelled:
            return False
        request.cancelled = True
        self.stats.cancelled_count += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.kernel.now_fs, "bus.cancel", self.name,
                        master=request.master, granted=request.granted)
        if request.event.waiter_count:
            request.event.notify()
        if request is self._owner:
            self._owner = None
            if request.grant_time is not None:
                self._log_busy(int(request.grant_time), self.kernel.now_fs)
                held = self.kernel.now - request.grant_time
                if held > request.duration:  # pragma: no cover - defensive
                    held = request.duration
                self.stats.busy_time = self.stats.busy_time + held
            if self.clock is None:
                self._try_grant()
            else:
                self._schedule_arbitration()
            if self._owner is None:
                self.busy_signal.write(False)
        else:
            try:
                self._queue.remove(request)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._update_level()
        return True

    # -- internals ----------------------------------------------------------------
    def _log_busy(self, start_fs: int, end_fs: int) -> None:
        """Record one completed busy interval for the level window."""
        if end_fs <= start_fs:
            return
        log = self._busy_log
        log.append((start_fs, end_fs))
        cutoff_fs = end_fs - int(self.level_window)
        while log and log[0][1] <= cutoff_fs:
            log.popleft()

    def _in_flight(self) -> SimTime:
        """Busy time of the current transfer not yet credited to the stats."""
        owner = self._owner
        if owner is None or owner.grant_time is None:
            return ZERO_TIME
        return self.kernel.now - owner.grant_time

    def _on_posedge(self) -> None:
        """Cycle-accurate arbitration: grant (at most) once per armed edge."""
        self._try_grant()

    def _on_arb_timer(self) -> None:
        """Timed-event callback at an armed posedge: defer one delta cycle.

        Fires during the kernel's time advance, before the edge instant's
        first evaluate phase; the delta re-notification pushes the arbiter
        to the *second* evaluate phase, after same-instant requesters (who
        wake in the first) have queued and parked on their grant events.
        """
        self._arb_scheduled_fs = None
        self._arb_fire.notify_delta()

    def _schedule_arbitration(self) -> None:
        """Arm the batched arbiter for the next interesting rising edge.

        Called whenever a grant could become possible: a request while the
        bus is free, a release, or a cancellation of the owner.  While the
        bus is busy (or the queue is empty) there is nothing to arbitrate
        and no per-cycle work happens at all.
        """
        if self._owner is not None or not self._queue:
            return
        now_fs = self.kernel.now_fs
        edge_fs = self.clock.next_posedge_fs(now_fs)
        if edge_fs == now_fs:
            # Already on the grid (releases and on-grid requests): the
            # arbiter still runs in the next-but-one evaluate phase of this
            # instant, matching the per-cycle pipeline's same-edge re-grant.
            self._arb_fire.notify_delta()
            return
        if self._arb_scheduled_fs is not None:
            # A pending arm is always at the first posedge >= its earlier
            # scheduling instant, which is this same edge; don't double-arm.
            return
        self._arb_scheduled_fs = edge_fs
        self.kernel.schedule_timed(self._arb_timer, SimTime(edge_fs - now_fs))

    def _is_dead(self, request: BusRequest, fresh: Optional[BusRequest]) -> bool:
        """True when nobody can ever consume a grant of ``request``.

        Per the :meth:`request` contract a queued master stays parked on
        its grant event until granted, so at arbitration time it either
        still waits there, is the master submitting right now (``fresh`` —
        it has not yielded yet), or is gone: killed while queued, or timed
        out and moved on without cancelling.  Granting to a gone master
        would wedge the bus forever.
        """
        if request.cancelled:
            return True
        return request is not fresh and request.event.waiter_count == 0

    def _select_next(self) -> Optional[BusRequest]:
        if not self._queue:
            return None
        if self.arbitration == "fifo":
            return self._queue[0]
        return min(self._queue, key=lambda request: (request.priority, request.arrival.femtoseconds))

    def _try_grant(self, fresh: Optional[BusRequest] = None) -> None:
        if self._owner is not None:
            return
        # Drop dead requests before arbitrating: a cancelled entry must not
        # shadow a live lower-priority one, and a killed waiter must never
        # be granted (its grant would wedge the bus forever).
        dead = [request for request in self._queue if self._is_dead(request, fresh)]
        for request in dead:
            self._queue.remove(request)
            if not request.cancelled:
                request.cancelled = True
                self.stats.cancelled_count += 1
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(self.kernel.now_fs, "bus.cancel", self.name,
                                master=request.master, granted=False)
        request = self._select_next()
        if request is None:
            self.busy_signal.write(False)
            return
        self._queue.remove(request)
        self._owner = request
        request.granted = True
        request.grant_time = self.kernel.now
        stats = self.stats
        stats.grant_count += 1
        stats.total_wait_time = stats.total_wait_time + (request.grant_time - request.arrival)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                self.kernel.now_fs, "bus.grant", self.name,
                master=request.master, words=request.words,
                wait_us=int(request.grant_time - request.arrival) / 1e9,
            )
        self.busy_signal.write(True)
        self._update_level()
        request.event.notify()

    def _update_level(self) -> None:
        """Refresh the quantised occupancy signal (grant/release/cancel).

        Like the IP busy mirror, the signal — and the occupancy computation
        behind it — is skipped entirely while nobody observes it: the GEM
        and LEM poll :meth:`occupancy_level` on demand, so on a typical run
        this keeps level bookkeeping off the per-transaction hot path.
        """
        level = self.level_signal
        changed = level.changed_event
        if changed._waiters or changed._callbacks or level._observers:
            level.write(self.occupancy_level())
