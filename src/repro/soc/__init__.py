"""SoC substrate: tasks, workloads, functional IPs, bus, service requests and
the SoC builder that wires everything together (Fig. 1 of the paper)."""

from repro.soc.bus import Bus, BusLevel, BusRequest, BusStatistics, BusThresholds
from repro.soc.ip import FunctionalIP
from repro.soc.service import ServiceChannel, ServiceRequest, ServiceRequestGenerator
from repro.soc.soc import IpInstance, IpSpec, SoC, SocConfig, build_soc
from repro.soc.task import Task, TaskExecution, TaskPriority
from repro.soc.workload import (
    Workload,
    WorkloadItem,
    bursty_workload,
    high_activity_workload,
    low_activity_workload,
    periodic_workload,
    random_workload,
)

__all__ = [
    "Bus",
    "BusLevel",
    "BusRequest",
    "BusStatistics",
    "BusThresholds",
    "FunctionalIP",
    "IpInstance",
    "IpSpec",
    "ServiceChannel",
    "ServiceRequest",
    "ServiceRequestGenerator",
    "SoC",
    "SocConfig",
    "Task",
    "TaskExecution",
    "TaskPriority",
    "Workload",
    "WorkloadItem",
    "build_soc",
    "bursty_workload",
    "high_activity_workload",
    "low_activity_workload",
    "periodic_workload",
    "random_workload",
]
