"""Internal enum decoration helpers.

Hot-path code indexes per-member state with plain integers (list slots,
packed cache keys) and renders members with a precomputed string, because
``Enum.__hash__`` and ``DynamicClassAttribute`` lookups are Python-level
calls that show up in simulation profiles.  :func:`dense_index` stamps the
``_idx``/``_str`` attributes that contract relies on.
"""

from __future__ import annotations

__all__ = ["dense_index"]


def dense_index(enum_cls) -> None:
    """Stamp each member with ``_idx`` (dense 0..n-1) and ``_str`` (value).

    ``_idx`` doubles as the member's rank wherever the declaration order is
    the natural ordering (battery levels, temperature levels, task
    priorities).
    """
    for index, member in enumerate(enum_cls):
        member._idx = index
        member._str = member._value_
