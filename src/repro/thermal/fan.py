"""Supplementary fan.

The GEM's worst-case branch ("do not enable any IP, switch on a supplementary
fan") needs a controllable fan.  The fan improves the chip's effective
thermal resistance (see :class:`~repro.thermal.model.ThermalModel`) but draws
power itself, which is charged to its own energy account so the trade-off is
visible in the results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ThermalError
from repro.power.energy import EnergyAccount, EnergyCategory
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ZERO_TIME
from repro.thermal.model import ThermalModel

__all__ = ["Fan"]


class Fan(Module):
    """On/off fan that cools the thermal model and consumes power."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        thermal_model: ThermalModel,
        energy_account: EnergyAccount,
        power_w: float = 0.05,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if power_w < 0.0:
            raise ThermalError("fan power must be non-negative")
        self.thermal_model = thermal_model
        self.energy_account = energy_account
        self.power_w = power_w
        self.state_signal = self.signal("on", False)
        self._switch_history: List[Tuple[SimTime, bool]] = []
        self._last_change: SimTime = ZERO_TIME
        self._on_time: SimTime = ZERO_TIME

    @property
    def is_on(self) -> bool:
        """True while the fan runs."""
        return self.state_signal.read()

    @property
    def switch_history(self) -> List[Tuple[SimTime, bool]]:
        """Recorded ``(time, on)`` switch events."""
        return list(self._switch_history)

    @property
    def total_on_time(self) -> SimTime:
        """Accumulated running time (up to the last switch or flush)."""
        return self._on_time

    def set_on(self, on: bool) -> None:
        """Switch the fan; charges the energy used since the last switch."""
        if on == self.is_on:
            return
        self._account()
        self.thermal_model.set_fan(on)
        self.state_signal.write(on)
        self._switch_history.append((self.kernel.now, on))

    def flush_energy(self) -> None:
        """Charge the energy of the current running interval (end of run)."""
        self._account()

    def _account(self) -> None:
        now = self.kernel.now
        if now == self._last_change:
            return
        elapsed = now - self._last_change
        self._last_change = now
        if self.is_on and not elapsed.is_zero:
            self._on_time = self._on_time + elapsed
            if self.power_w > 0.0:
                self.energy_account.add_power(self.power_w, elapsed, EnergyCategory.OVERHEAD)
