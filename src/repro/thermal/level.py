"""Chip temperature coding.

The LEM receives the chip temperature "coded in 3 classes: Low, Medium and
High" (paper, section 1.3).  :class:`TemperatureThresholds` maps a
temperature in degrees Celsius to a :class:`TemperatureLevel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro._enumtools import dense_index
from repro.errors import ThermalError

__all__ = ["TemperatureLevel", "TemperatureThresholds"]


class TemperatureLevel(Enum):
    """Quantised chip temperature as seen by the energy managers."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def rank(self) -> int:
        """Ordering helper: LOW=0, MEDIUM=1, HIGH=2."""
        return self._idx

    def at_most(self, other: "TemperatureLevel") -> bool:
        """True when this level is at most as hot as ``other``."""
        return self._idx <= other._idx

    def __str__(self) -> str:
        return self._str


dense_index(TemperatureLevel)  # _idx doubles as rank; _str for hot-path __str__


@dataclass(frozen=True)
class TemperatureThresholds:
    """Celsius thresholds separating the three temperature classes.

    A temperature ``t`` maps to ``LOW`` when ``t < medium``, ``MEDIUM`` when
    ``medium <= t < high`` and ``HIGH`` otherwise.
    """

    medium_c: float = 55.0
    high_c: float = 75.0

    def __post_init__(self) -> None:
        if not self.medium_c < self.high_c:
            raise ThermalError("the medium threshold must be below the high threshold")

    def classify(self, temperature_c: float) -> TemperatureLevel:
        """Map a temperature in Celsius to a :class:`TemperatureLevel`."""
        if temperature_c < -273.15:
            raise ThermalError(f"temperature below absolute zero: {temperature_c} C")
        if temperature_c < self.medium_c:
            return TemperatureLevel.LOW
        if temperature_c < self.high_c:
            return TemperatureLevel.MEDIUM
        return TemperatureLevel.HIGH

    def representative_temperature(self, level: TemperatureLevel) -> float:
        """A temperature in Celsius that maps back to ``level``."""
        if level is TemperatureLevel.LOW:
            return self.medium_c - 20.0
        if level is TemperatureLevel.MEDIUM:
            return (self.medium_c + self.high_c) / 2.0
        return self.high_c + 10.0
