"""Thermal substrate: lumped-RC chip model, sensor, fan and level coding."""

from repro.thermal.fan import Fan
from repro.thermal.level import TemperatureLevel, TemperatureThresholds
from repro.thermal.model import ThermalConfig, ThermalModel
from repro.thermal.sensor import TemperatureSensor

__all__ = [
    "Fan",
    "TemperatureLevel",
    "TemperatureSensor",
    "TemperatureThresholds",
    "ThermalConfig",
    "ThermalModel",
]
