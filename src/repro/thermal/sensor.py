"""Temperature sensor simulation module.

Like the battery monitor, the sensor periodically converts the energy the SoC
consumed since the previous sample into an average power, advances the
lumped-RC thermal model by one step and publishes both the raw temperature
and the quantised :class:`~repro.thermal.level.TemperatureLevel`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ThermalError
from repro.power.energy import EnergyLedger
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ms
from repro.thermal.level import TemperatureLevel
from repro.thermal.model import ThermalModel

__all__ = ["TemperatureSensor"]


class TemperatureSensor(Module):
    """Samples SoC power and publishes the chip temperature."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        model: ThermalModel,
        ledger: EnergyLedger,
        sample_interval: Optional[SimTime] = None,
        pre_sample=None,
        autonomous: bool = True,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if sample_interval is not None and sample_interval.is_zero:
            raise ThermalError("temperature sample interval must be positive")
        self.model = model
        self.ledger = ledger
        self.pre_sample = pre_sample
        self.sample_interval = sample_interval or ms(1)
        self.temperature_signal = self.signal("temperature_c", model.temperature_c)
        self.level_signal = self.signal("level", model.level)
        self._last_total_j = ledger.total_j
        self._history: List[Tuple[SimTime, float]] = []
        # ``autonomous=False`` suppresses the sampling thread: an external
        # orchestrator (e.g. the SoC's shared sampler) calls sample_now()
        # on the same schedule, halving the per-sample process activations.
        if autonomous:
            self.add_thread(self._sample_loop, name="sampler")

    @property
    def level(self) -> TemperatureLevel:
        """Most recently published temperature class."""
        return self.level_signal.read()

    @property
    def temperature_c(self) -> float:
        """Most recently published temperature."""
        return self.temperature_signal.read()

    @property
    def history(self) -> List[Tuple[SimTime, float]]:
        """Sampled ``(time, temperature_c)`` pairs."""
        return list(self._history)

    def sample_now(self) -> TemperatureLevel:
        """Force an immediate sample (used by experiment runners at the end)."""
        self._take_sample()
        return self.model.level

    def _take_sample(self) -> None:
        if self.pre_sample is not None:
            # Let lazily-integrated consumers (PSM background power, fan) post
            # their energy up to now, so the measured power is smooth.
            self.pre_sample()
        total = self.ledger.total_j
        delta = max(0.0, total - self._last_total_j)
        self._last_total_j = total
        power = delta / self.sample_interval.seconds
        self.model.step(power, self.sample_interval)
        self._history.append((self.kernel.now, self.model.temperature_c))
        self.temperature_signal.write(self.model.temperature_c)
        self.level_signal.write(self.model.level)

    def _sample_loop(self):
        while True:
            yield self.sample_interval
            self._take_sample()
