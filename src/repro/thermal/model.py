"""Lumped-RC thermal model of the chip.

The chip (die + package) is modelled as a single thermal node with thermal
resistance ``R_th`` to the ambient and thermal capacitance ``C_th``::

    C_th · dT/dt = P(t) - (T - T_amb) / R_th

which discretises (exponential integrator, unconditionally stable) to::

    T(t + dt) = T_inf + (T(t) - T_inf) · exp(-dt / tau)
    T_inf     = T_amb + P · R_th
    tau       = R_th · C_th

A supplementary fan (the GEM's worst-case action) reduces the effective
thermal resistance, lowering both the steady-state temperature and the time
constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ThermalError
from repro.sim.simtime import SimTime
from repro.thermal.level import TemperatureLevel, TemperatureThresholds

__all__ = ["ThermalConfig", "ThermalModel"]


@dataclass
class ThermalConfig:
    """Static parameters of the lumped thermal model."""

    ambient_c: float = 35.0
    initial_c: float = 40.0
    thermal_resistance_c_per_w: float = 60.0
    thermal_capacitance_j_per_c: float = 0.0007
    fan_resistance_scale: float = 0.55
    thresholds: TemperatureThresholds = field(default_factory=TemperatureThresholds)

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w <= 0.0:
            raise ThermalError("thermal resistance must be positive")
        if self.thermal_capacitance_j_per_c <= 0.0:
            raise ThermalError("thermal capacitance must be positive")
        if not 0.0 < self.fan_resistance_scale <= 1.0:
            raise ThermalError("fan resistance scale must be in (0, 1]")
        if self.initial_c < self.ambient_c - 1e-9:
            raise ThermalError("initial temperature cannot be below ambient")


class ThermalModel:
    """Single-node RC thermal model with optional fan."""

    def __init__(self, config: ThermalConfig = None) -> None:
        self.config = config or ThermalConfig()
        self._temperature_c = self.config.initial_c
        self._fan_on = False
        self._peak_c = self.config.initial_c
        self._integral_c_s = 0.0
        self._integrated_time_s = 0.0
        # exp(-dt/tau) per (dt_s, tau): the sampling loops step with a fixed
        # interval, so the decay factor is almost always a cache hit.  The
        # cached value is the result of the identical exp() call.
        self._decay_cache: dict = {}
        # The quantised level is a pure function of the temperature and is
        # read far more often than the temperature moves (every GEM
        # evaluation); cache the classification per temperature value.
        self._level_cache_temperature_c: float = float("nan")
        self._level_cache = None
        # Fast accuracy mode installs a callback replaying pending sampler
        # windows before the state is observed, and a listener notified on
        # fan toggles (the replay needs the historical fan state per window).
        self._sync_hook = None
        self._fan_listener = None

    # -- state ------------------------------------------------------------
    @property
    def temperature_c(self) -> float:
        """Current die temperature in Celsius."""
        if self._sync_hook is not None:
            self._sync_hook()
        return self._temperature_c

    @property
    def peak_c(self) -> float:
        """Highest temperature reached so far."""
        if self._sync_hook is not None:
            self._sync_hook()
        return self._peak_c

    @property
    def fan_on(self) -> bool:
        """True while the supplementary fan runs."""
        return self._fan_on

    @property
    def level(self) -> TemperatureLevel:
        """Quantised temperature class."""
        if self._sync_hook is not None:
            self._sync_hook()
        if self._temperature_c != self._level_cache_temperature_c:
            self._level_cache_temperature_c = self._temperature_c
            self._level_cache = self.config.thresholds.classify(self._temperature_c)
        return self._level_cache

    @property
    def average_c(self) -> float:
        """Time-averaged temperature since the start of the simulation."""
        if self._sync_hook is not None:
            self._sync_hook()
        if self._integrated_time_s <= 0.0:
            return self._temperature_c
        return self._integral_c_s / self._integrated_time_s

    @property
    def average_rise_c(self) -> float:
        """Time-averaged temperature rise above ambient."""
        return max(0.0, self.average_c - self.config.ambient_c)

    def effective_resistance(self) -> float:
        """Thermal resistance including the fan effect."""
        scale = self.config.fan_resistance_scale if self._fan_on else 1.0
        return self.config.thermal_resistance_c_per_w * scale

    def time_constant_s(self) -> float:
        """Current thermal time constant ``tau = R_th · C_th`` in seconds."""
        return self.effective_resistance() * self.config.thermal_capacitance_j_per_c

    # -- control ---------------------------------------------------------------
    def set_fan(self, on: bool) -> None:
        """Switch the supplementary fan on or off."""
        on = bool(on)
        if self._fan_listener is not None and on != self._fan_on:
            self._fan_listener(on)
        self._fan_on = on

    # -- dynamics ----------------------------------------------------------------
    def step(self, power_w: float, dt: SimTime) -> float:
        """Advance the model by ``dt`` with constant dissipated power ``power_w``.

        Returns the new temperature in Celsius.
        """
        if power_w < 0.0:
            raise ThermalError("dissipated power must be non-negative")
        dt_s = dt.seconds
        if dt_s < 0.0:  # pragma: no cover - SimTime cannot be negative
            raise ThermalError("time step must be non-negative")
        if dt_s == 0.0:
            return self._temperature_c
        resistance = self.effective_resistance()
        tau = resistance * self.config.thermal_capacitance_j_per_c
        steady = self.config.ambient_c + power_w * resistance
        decay = self._decay(dt_s, tau)
        previous = self._temperature_c
        self._temperature_c = steady + (previous - steady) * decay
        self._peak_c = max(self._peak_c, self._temperature_c)
        # Trapezoidal accumulation of the average temperature.
        self._integral_c_s += 0.5 * (previous + self._temperature_c) * dt_s
        self._integrated_time_s += dt_s
        return self._temperature_c

    def _decay(self, dt_s: float, tau: float) -> float:
        """Cached ``exp(-dt/tau)``, bounded so varying-duration estimates
        (one per task) cannot grow the cache without limit."""
        key = (dt_s, tau)
        decay = self._decay_cache.get(key)
        if decay is None:
            if len(self._decay_cache) >= 1024:
                self._decay_cache.clear()
            decay = math.exp(-dt_s / tau)
            self._decay_cache[key] = decay
        return decay

    def advance_windows(self, power_w: float, dt: SimTime, count: int) -> None:
        """Advance ``count`` equal sampling windows in one closed-form step.

        Fast accuracy mode only.  With constant power the per-window
        exponential steps form a geometric sequence, so the end temperature,
        the peak (the trajectory is monotone) and the trapezoidal average
        integral all have closed forms.  The results are mathematically
        identical to ``count`` successive :meth:`step` calls and differ only
        by floating-point reassociation (documented tolerance: 1e-6 relative
        on temperatures).
        """
        if count <= 0:
            return
        if count == 1:
            self.step(power_w, dt)
            return
        if power_w < 0.0:
            raise ThermalError("dissipated power must be non-negative")
        dt_s = dt.seconds
        resistance = self.effective_resistance()
        tau = resistance * self.config.thermal_capacitance_j_per_c
        decay = self._decay(dt_s, tau)
        if decay >= 1.0:  # pragma: no cover - defensive: dt/tau underflow
            for _ in range(count):
                self.step(power_w, dt)
            return
        steady = self.config.ambient_c + power_w * resistance
        previous = self._temperature_c
        offset = previous - steady
        decay_k = decay ** count
        new = steady + offset * decay_k
        self._temperature_c = new
        self._peak_c = max(self._peak_c, previous, new)
        # Closed form of sum(0.5 * (T_i + T_{i+1}) * dt) with T_i geometric.
        self._integral_c_s += dt_s * (
            count * steady + 0.5 * offset * (1.0 + decay) * (1.0 - decay_k) / (1.0 - decay)
        )
        self._integrated_time_s += count * dt_s
        return

    def steady_state_c(self, power_w: float) -> float:
        """Temperature reached if ``power_w`` were dissipated forever."""
        if power_w < 0.0:
            raise ThermalError("dissipated power must be non-negative")
        return self.config.ambient_c + power_w * self.effective_resistance()

    def estimate_after(self, power_w: float, duration: SimTime) -> float:
        """Temperature the chip would reach after ``duration`` at ``power_w``.

        Pure prediction: the internal state is not modified.  The LEM uses it
        to estimate the temperature "at the end of the task execution".
        """
        if power_w < 0.0:
            raise ThermalError("dissipated power must be non-negative")
        if self._sync_hook is not None:
            self._sync_hook()
        resistance = self.effective_resistance()
        tau = resistance * self.config.thermal_capacitance_j_per_c
        steady = self.config.ambient_c + power_w * resistance
        duration_s = duration.seconds
        decay = self._decay(duration_s, tau) if duration_s > 0 else 1.0
        return steady + (self._temperature_c - steady) * decay

    def snapshot(self) -> dict:
        """Plain-dict state summary."""
        if self._sync_hook is not None:
            self._sync_hook()
        return {
            "temperature_c": self._temperature_c,
            "peak_c": self._peak_c,
            "average_c": self.average_c,
            "level": str(self.level),
            "fan_on": self._fan_on,
        }
