"""The paper's contribution: rule-based dynamic power management.

Contents: the Table-1 rule engine, the Local Energy Manager (LEM), the
Global Energy Manager (GEM), idle-time predictors, baseline policies and the
:class:`~repro.dpm.controller.DpmSetup` configuration facade.
"""

from repro.dpm.controller import DpmSetup
from repro.dpm.gem import GemConfig, GlobalEnergyManager, ResourceView
from repro.dpm.lem import LemConfig, LemDecision, LocalEnergyManager, TaskGrant
from repro.dpm.levels import BatteryLevel, BusLevel, RuleContext, TaskPriority, TemperatureLevel
from repro.dpm.policies import (
    AlwaysOnPolicy,
    DpmPolicy,
    FixedTimeoutPolicy,
    GreedySleepPolicy,
    OraclePolicy,
    RuleBasedPolicy,
)
from repro.dpm.predictor import (
    AdaptivePredictor,
    ExponentialAveragePredictor,
    FixedPredictor,
    IdlePredictor,
    LastValuePredictor,
    default_predictor,
)
from repro.dpm.rules import Rule, RuleTable, paper_rule_table

__all__ = [
    "AdaptivePredictor",
    "AlwaysOnPolicy",
    "BatteryLevel",
    "BusLevel",
    "DpmPolicy",
    "DpmSetup",
    "ExponentialAveragePredictor",
    "FixedPredictor",
    "FixedTimeoutPolicy",
    "GemConfig",
    "GlobalEnergyManager",
    "GreedySleepPolicy",
    "IdlePredictor",
    "LastValuePredictor",
    "LemConfig",
    "LemDecision",
    "LocalEnergyManager",
    "OraclePolicy",
    "ResourceView",
    "Rule",
    "RuleBasedPolicy",
    "RuleContext",
    "RuleTable",
    "TaskGrant",
    "TaskPriority",
    "TemperatureLevel",
    "default_predictor",
    "paper_rule_table",
]
