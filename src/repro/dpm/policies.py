"""DPM policies: the paper's rule-based policy and the baselines it is
compared against (and ablated with).

A policy answers the two questions the Local Energy Manager asks:

1. *A task is about to run — in which state?*  (:meth:`DpmPolicy.select_on_state`)
   The answer is usually an ON state; the paper's Table 1 may also answer a
   sleep state, which the LEM interprets as "defer the task until the
   battery/temperature situation improves".
2. *The IP just became idle — should it sleep, and how deep?*
   (:meth:`DpmPolicy.select_idle_state`), given the predicted idle time and
   the break-even analysis of the IP.

Policies are plain strategy objects with no simulator dependencies, so the
experiment runner can swap them (paper policy vs. always-on baseline vs.
timeout policy vs. oracle) without touching the LEM.
"""

from __future__ import annotations

from typing import Optional

from repro.dpm.levels import RuleContext
from repro.dpm.rules import RuleTable, paper_rule_table
from repro.errors import ConfigurationError
from repro.power.breakeven import BreakEvenAnalyzer
from repro.power.states import PowerState
from repro.sim.simtime import SimTime, ms

__all__ = [
    "DpmPolicy",
    "RuleBasedPolicy",
    "AlwaysOnPolicy",
    "GreedySleepPolicy",
    "FixedTimeoutPolicy",
    "OraclePolicy",
]


class DpmPolicy:
    """Strategy interface consumed by the Local Energy Manager."""

    #: short identifier used in reports and ablation tables
    name = "base"
    #: True when the policy sleeps after a fixed timeout instead of using the
    #: idle-time prediction (the LEM then waits ``idle_timeout`` first).
    uses_timeout = False
    #: True when the policy consumes the IP's true upcoming idle time (oracle)
    #: instead of the predictor's estimate.
    uses_idle_hint = False
    #: timeout value and state for timeout-based policies
    idle_timeout: Optional[SimTime] = None
    timeout_state: Optional[PowerState] = None

    def select_on_state(self, context: RuleContext) -> PowerState:
        """State in which the next task should execute (or a sleep state to defer)."""
        raise NotImplementedError

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        """Low-power state to enter on idleness, or ``None`` to stay put."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class RuleBasedPolicy(DpmPolicy):
    """The paper's policy: Table-1 rules plus break-even-gated sleeping."""

    name = "rule-based"

    def __init__(self, rules: Optional[RuleTable] = None, allow_off: bool = True) -> None:
        self.rules = rules or paper_rule_table()
        self.allow_off = allow_off

    def select_on_state(self, context: RuleContext) -> PowerState:
        return self.rules.select(context)

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        return analyzer.best_state_for(predicted_idle, allow_off=self.allow_off)


class AlwaysOnPolicy(DpmPolicy):
    """The paper's reference: maximum clock frequency, never sleep."""

    name = "always-on"

    def select_on_state(self, context: RuleContext) -> PowerState:
        return PowerState.ON1

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        return None


class GreedySleepPolicy(DpmPolicy):
    """Runs every task at full speed but sleeps aggressively when idle.

    This isolates the "shut down when idle" half of the paper's DPM from the
    variable-voltage half, which makes it a useful ablation point.
    """

    name = "greedy-sleep"

    def __init__(self, allow_off: bool = True) -> None:
        self.allow_off = allow_off

    def select_on_state(self, context: RuleContext) -> PowerState:
        return PowerState.ON1

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        return analyzer.best_state_for(predicted_idle, allow_off=self.allow_off)


class FixedTimeoutPolicy(DpmPolicy):
    """Classic timeout DPM: sleep in a fixed state after a fixed idle timeout."""

    name = "fixed-timeout"
    uses_timeout = True

    def __init__(
        self,
        timeout: SimTime = ms(2),
        sleep_state: PowerState = PowerState.SL2,
        on_state: PowerState = PowerState.ON1,
    ) -> None:
        if sleep_state.is_on:
            raise ConfigurationError("the timeout target must be a sleep/off state")
        if not on_state.is_on:
            raise ConfigurationError("the execution state must be an ON state")
        self.idle_timeout = timeout
        self.timeout_state = sleep_state
        self.on_state = on_state

    def select_on_state(self, context: RuleContext) -> PowerState:
        return self.on_state

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        # Prediction is ignored; the LEM applies the timeout mechanism.
        return self.timeout_state


class OraclePolicy(DpmPolicy):
    """Upper bound: uses the *actual* upcoming idle time instead of a prediction.

    The LEM feeds the oracle the workload's real idle gap (which the traffic
    generator knows); combined with break-even gating this is the best any
    prediction-based shutdown policy could do for idle management, while
    tasks still run at full speed.
    """

    name = "oracle"
    uses_idle_hint = True

    def __init__(self, allow_off: bool = True) -> None:
        self.allow_off = allow_off

    def select_on_state(self, context: RuleContext) -> PowerState:
        return PowerState.ON1

    def select_idle_state(
        self, predicted_idle: SimTime, analyzer: BreakEvenAnalyzer
    ) -> Optional[PowerState]:
        return analyzer.best_state_for(predicted_idle, allow_off=self.allow_off)
