"""The power-state selection rule engine (Table 1 of the paper).

The LEM chooses the ON state of each task from "expressions of the natural
language, as in the fuzzy rules": *if the priority is high and the battery is
empty then the power state is ON4*.  Here each such expression is a
:class:`Rule` — a set of accepted priorities, battery levels and temperature
levels (``None`` meaning "don't care") plus the selected state — and a
:class:`RuleTable` evaluates an ordered list of rules with first-match
semantics.

:func:`paper_rule_table` reproduces Table 1 verbatim, in row order, followed
by three completion rules documented in ``DESIGN.md``: as printed, the
paper's table does not cover the (battery >= Medium, temperature = Medium)
corner, so the library falls back to one step slower than the
temperature-Low choice and finally to ``ON4``.  The completion rules never
fire in the paper's scenarios (they use battery Full/Low and temperature
Low/High only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.battery.status import BatteryLevel
from repro.dpm.levels import RuleContext
from repro.errors import RuleError
from repro.power.states import PowerState
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel

__all__ = ["Rule", "RuleTable", "RuleTrace", "paper_rule_table"]

# Short aliases used when building the paper's table, mirroring its notation.
_P = TaskPriority
_B = BatteryLevel
_T = TemperatureLevel
_S = PowerState


@dataclass(frozen=True)
class Rule:
    """One row of the selection table.

    ``priorities``, ``batteries``, ``temperatures`` and ``buses`` are the
    accepted input classes; ``None`` is a wildcard ("-" in the paper's
    Table 1).  The bus dimension only matters on bus-bearing platforms — on
    a bus-less SoC the context's bus level is always ``LOW``.
    """

    state: PowerState
    priorities: Optional[FrozenSet[TaskPriority]] = None
    batteries: Optional[FrozenSet[BatteryLevel]] = None
    temperatures: Optional[FrozenSet[TemperatureLevel]] = None
    buses: Optional[FrozenSet[BusLevel]] = None
    label: str = ""

    @staticmethod
    def of(
        state: PowerState,
        priorities: Optional[Iterable[TaskPriority]] = None,
        batteries: Optional[Iterable[BatteryLevel]] = None,
        temperatures: Optional[Iterable[TemperatureLevel]] = None,
        buses: Optional[Iterable[BusLevel]] = None,
        label: str = "",
    ) -> "Rule":
        """Convenience constructor accepting any iterables (or ``None``)."""
        return Rule(
            state=state,
            priorities=None if priorities is None else frozenset(priorities),
            batteries=None if batteries is None else frozenset(batteries),
            temperatures=None if temperatures is None else frozenset(temperatures),
            buses=None if buses is None else frozenset(buses),
            label=label,
        )

    def matches(self, context: RuleContext) -> bool:
        """True when this rule applies to ``context``."""
        if self.priorities is not None and context.priority not in self.priorities:
            return False
        if self.batteries is not None and context.battery not in self.batteries:
            return False
        if self.temperatures is not None and context.temperature not in self.temperatures:
            return False
        if self.buses is not None and context.bus not in self.buses:
            return False
        return True

    def describe(self) -> str:
        """Human-readable rendering close to the paper's table notation."""

        def fmt(values, order):
            if values is None:
                return "-"
            return ",".join(str(v) for v in sorted(values, key=order))

        rendering = (
            f"[{self.label or 'rule'}] priority({fmt(self.priorities, lambda p: -p.rank)}) "
            f"battery({fmt(self.batteries, lambda b: -b.rank)}) "
            f"temperature({fmt(self.temperatures, lambda t: t.rank)})"
        )
        if self.buses is not None:
            rendering += f" bus({fmt(self.buses, lambda b: b.rank)})"
        return f"{rendering} -> {self.state}"


@dataclass(frozen=True)
class RuleTrace:
    """One step of a first-match trace (see :meth:`RuleTable.explain`)."""

    index: int
    rule: Rule
    matched: bool
    reason: str

    def describe(self) -> str:
        marker = "=>" if self.matched else "  "
        return f"{marker} [{self.index:2d}] {self.rule.describe()}  -- {self.reason}"


def _skip_reason(rule: Rule, context: RuleContext) -> str:
    """Which dimension rejected ``context`` first (evaluation order)."""
    if rule.priorities is not None and context.priority not in rule.priorities:
        return f"priority {context.priority} not accepted"
    if rule.batteries is not None and context.battery not in rule.batteries:
        return f"battery {context.battery} not accepted"
    if rule.temperatures is not None and context.temperature not in rule.temperatures:
        return f"temperature {context.temperature} not accepted"
    if rule.buses is not None and context.bus not in rule.buses:
        return f"bus {context.bus} not accepted"
    return "matched"


class RuleTable:
    """Ordered list of rules with first-match-wins semantics."""

    def __init__(self, rules: Sequence[Rule], name: str = "rules") -> None:
        if not rules:
            raise RuleError("a rule table needs at least one rule")
        for rule in rules:
            if not rule.state.is_on and not rule.state.is_sleep:
                raise RuleError(f"rules may only select ON or sleep states, got {rule.state}")
        self.name = name
        self._rules: List[Rule] = list(rules)
        self._hits: Dict[int, int] = {index: 0 for index in range(len(rules))}
        # First-match index per (priority, battery, temperature, bus) tuple:
        # rule matching only reads those four classes, so the winning rule is
        # a pure function of them and can be looked up instead of re-scanned.
        self._first_match_cache: Dict[tuple, int] = {}

    # -- evaluation -------------------------------------------------------
    def select(self, context: RuleContext) -> PowerState:
        """Return the state of the first matching rule.

        Raises
        ------
        RuleError
            If no rule matches (the table is not total for this input).
        """
        # Dense integer key: enum __hash__ is Python-level and shows up in
        # profiles; the packed _idx tuple hashes at C speed.
        key = (
            ((context.priority._idx * 64) + (context.battery._idx * 8) + context.temperature._idx)
            * 4
        ) + context.bus._idx
        index = self._first_match_cache.get(key)
        if index is None:
            for index, rule in enumerate(self._rules):
                if rule.matches(context):
                    self._first_match_cache[key] = index
                    break
            else:
                raise RuleError(
                    f"no rule matches context ({context.describe()}) in table {self.name!r}"
                )
        self._hits[index] += 1
        return self._rules[index].state

    def first_match_index(self, context: RuleContext) -> Optional[int]:
        """Index of the first matching rule, or ``None`` if nothing matches.

        A pure scan: unlike :meth:`select` it neither touches the
        first-match cache nor counts a hit, so analysis code (linting,
        trace cross-checks, ``rules --explain``) can interrogate a live
        table without perturbing its statistics.
        """
        for index, rule in enumerate(self._rules):
            if rule.matches(context):
                return index
        return None

    def explain(self, context: RuleContext) -> List["RuleTrace"]:
        """First-match trace: every rule up to (and including) the winner.

        Each entry records whether the rule matched and, for skipped rules,
        which dimension rejected the context first.  When no rule matches,
        the trace covers the whole table with ``matched=False`` throughout.
        """
        trace: List[RuleTrace] = []
        for index, rule in enumerate(self._rules):
            if rule.matches(context):
                trace.append(RuleTrace(index, rule, True, "matched"))
                return trace
            trace.append(RuleTrace(index, rule, False, _skip_reason(rule, context)))
        return trace

    def select_levels(
        self,
        priority: TaskPriority,
        battery: BatteryLevel,
        temperature: TemperatureLevel,
        bus: BusLevel = BusLevel.LOW,
    ) -> PowerState:
        """Convenience wrapper building the :class:`RuleContext`."""
        return self.select(RuleContext(priority, battery, temperature, bus=bus))

    # -- inspection ----------------------------------------------------------
    @property
    def rules(self) -> List[Rule]:
        """The rules in evaluation order."""
        return list(self._rules)

    @property
    def hit_counts(self) -> Dict[int, int]:
        """How many times each rule (by index) has fired."""
        return dict(self._hits)

    def is_total(self) -> bool:
        """True when every input combination matches.

        Enumerates (priority, battery, temperature) and — for tables with
        bus-constrained rules — every bus level too.
        """
        return not self.uncovered_contexts()

    def _bus_dimension(self) -> Tuple[BusLevel, ...]:
        """Bus levels to enumerate in coverage checks.

        A table whose rules never constrain the bus is a pure function of
        the classic (priority, battery, temperature) triple, so only the
        default ``LOW`` level needs visiting.
        """
        if any(rule.buses is not None for rule in self._rules):
            return tuple(BusLevel)
        return (BusLevel.LOW,)

    def uncovered_contexts(self) -> List[RuleContext]:
        """All input combinations not covered by any rule."""
        missing = []
        bus_levels = self._bus_dimension()
        for priority in TaskPriority:
            for battery in BatteryLevel:
                for temperature in TemperatureLevel:
                    for bus in bus_levels:
                        context = RuleContext(priority, battery, temperature, bus=bus)
                        if not any(rule.matches(context) for rule in self._rules):
                            missing.append(context)
        return missing

    def unreachable_rules(self) -> List[int]:
        """Indices of rules shadowed by earlier rules for every input."""
        unreachable = []
        bus_levels = self._bus_dimension()
        for index, rule in enumerate(self._rules):
            reachable = False
            for priority in TaskPriority:
                for battery in BatteryLevel:
                    for temperature in TemperatureLevel:
                        for bus in bus_levels:
                            context = RuleContext(priority, battery, temperature, bus=bus)
                            if not rule.matches(context):
                                continue
                            earlier = any(
                                self._rules[j].matches(context) for j in range(index)
                            )
                            if not earlier:
                                reachable = True
                                break
                        if reachable:
                            break
                    if reachable:
                        break
                if reachable:
                    break
            if not reachable:
                unreachable.append(index)
        return unreachable

    def describe(self) -> str:
        """Printable rendering of the whole table."""
        return "\n".join(rule.describe() for rule in self._rules)

    # -- (de)serialisation ------------------------------------------------------
    def as_dicts(self) -> List[dict]:
        """Serializable representation (used to retarget the LEM per IP)."""
        result = []
        for rule in self._rules:
            result.append(
                {
                    "state": str(rule.state),
                    "priorities": None
                    if rule.priorities is None
                    else sorted(str(p) for p in rule.priorities),
                    "batteries": None
                    if rule.batteries is None
                    else sorted(str(b) for b in rule.batteries),
                    "temperatures": None
                    if rule.temperatures is None
                    else sorted(str(t) for t in rule.temperatures),
                    "buses": None
                    if rule.buses is None
                    else sorted(str(b) for b in rule.buses),
                    "label": rule.label,
                }
            )
        return result

    @staticmethod
    def from_dicts(entries: Iterable[dict], name: str = "rules") -> "RuleTable":
        """Rebuild a table from :meth:`as_dicts` output."""
        rules = []
        for entry in entries:
            rules.append(
                Rule.of(
                    state=PowerState.from_string(entry["state"]),
                    priorities=None
                    if entry.get("priorities") is None
                    else [TaskPriority(p) for p in entry["priorities"]],
                    batteries=None
                    if entry.get("batteries") is None
                    else [BatteryLevel(b) for b in entry["batteries"]],
                    temperatures=None
                    if entry.get("temperatures") is None
                    else [TemperatureLevel(t) for t in entry["temperatures"]],
                    buses=None
                    if entry.get("buses") is None
                    else [BusLevel(b) for b in entry["buses"]],
                    label=entry.get("label", ""),
                )
            )
        return RuleTable(rules, name=name)


def paper_rule_table() -> RuleTable:
    """The power-state selection algorithm of the paper's Table 1.

    Rows appear in the paper's order (first match wins); the trailing
    ``completion-*`` rules make the table total, see the module docstring.
    """
    very_high = [_P.VERY_HIGH]
    not_very_high = [_P.HIGH, _P.MEDIUM, _P.LOW]
    battery_mid_high = [_B.MEDIUM, _B.HIGH]
    temp_low_medium = [_T.LOW, _T.MEDIUM]

    rules = [
        # V E - -> ON4
        Rule.of(_S.ON4, very_high, [_B.EMPTY], None, label="t1-row1"),
        # V - H -> ON4
        Rule.of(_S.ON4, very_high, None, [_T.HIGH], label="t1-row2"),
        # H,M,L E - -> SL1
        Rule.of(_S.SL1, not_very_high, [_B.EMPTY], None, label="t1-row3"),
        # H,M,L - H -> SL1
        Rule.of(_S.SL1, not_very_high, None, [_T.HIGH], label="t1-row4"),
        # - L M,L -> ON4
        Rule.of(_S.ON4, None, [_B.LOW], temp_low_medium, label="t1-row5"),
        # - E M -> ON4
        Rule.of(_S.ON4, None, [_B.EMPTY], [_T.MEDIUM], label="t1-row6"),
        # V M,H L -> ON1
        Rule.of(_S.ON1, very_high, battery_mid_high, [_T.LOW], label="t1-row7"),
        # H M,H L -> ON2
        Rule.of(_S.ON2, [_P.HIGH], battery_mid_high, [_T.LOW], label="t1-row8"),
        # M M,H L -> ON3
        Rule.of(_S.ON3, [_P.MEDIUM], battery_mid_high, [_T.LOW], label="t1-row9"),
        # L M,H L -> ON4
        Rule.of(_S.ON4, [_P.LOW], battery_mid_high, [_T.LOW], label="t1-row10"),
        # V,H,M F L -> ON1
        Rule.of(_S.ON1, [_P.VERY_HIGH, _P.HIGH, _P.MEDIUM], [_B.FULL], [_T.LOW], label="t1-row11"),
        # L F L -> ON2
        Rule.of(_S.ON2, [_P.LOW], [_B.FULL], [_T.LOW], label="t1-row12"),
        # - power-supply M,L -> ON1
        Rule.of(_S.ON1, None, [_B.AC_POWER], temp_low_medium, label="t1-row13"),
        # -- completion rules (not in the paper, documented in DESIGN.md) ----
        # Battery >= Medium with temperature Medium is not covered by the
        # printed Table 1; mirror the temperature-Low mapping (rows 7-12) so
        # a merely warm (not hot) chip behaves like a cool one.
        Rule.of(_S.ON1, [_P.VERY_HIGH, _P.HIGH, _P.MEDIUM], [_B.FULL], [_T.MEDIUM], label="completion-1"),
        Rule.of(_S.ON2, [_P.LOW], [_B.FULL], [_T.MEDIUM], label="completion-2"),
        Rule.of(_S.ON1, very_high, None, [_T.MEDIUM], label="completion-3"),
        Rule.of(_S.ON2, [_P.HIGH], None, [_T.MEDIUM], label="completion-4"),
        Rule.of(_S.ON3, [_P.MEDIUM], None, [_T.MEDIUM], label="completion-5"),
        Rule.of(_S.ON4, None, None, None, label="completion-default"),
    ]
    return RuleTable(rules, name="table1")
