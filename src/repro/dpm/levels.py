"""Coded input classes of the DPM rules.

The LEM rules consume the quantised inputs of the paper's section 1.3:

* task priority — 4 classes (:class:`~repro.soc.task.TaskPriority`);
* battery status — 5 classes plus the mains-power case
  (:class:`~repro.battery.status.BatteryLevel`);
* chip temperature — 3 classes (:class:`~repro.thermal.level.TemperatureLevel`);
* bus occupation — 3 classes (:class:`~repro.soc.bus.BusLevel`), present on
  platforms with a shared bus and ``LOW`` otherwise.

This module re-exports them under one roof and provides the
:class:`RuleContext` value object the rule engine evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.status import BatteryLevel
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel

__all__ = ["BatteryLevel", "BusLevel", "TaskPriority", "TemperatureLevel", "RuleContext"]


@dataclass(frozen=True)
class RuleContext:
    """The quantised situation in which a power state must be selected.

    The battery and temperature values are the *estimated* levels at the end
    of the task (the LEM projects them before applying the rules), plus the
    energy already requested by the other IP blocks, which the GEM reports,
    and the quantised bus occupation (``LOW`` on bus-less platforms, so the
    paper's bus-agnostic rules behave identically with or without a bus).
    """

    priority: TaskPriority
    battery: BatteryLevel
    temperature: TemperatureLevel
    other_ip_energy_j: float = 0.0
    bus: BusLevel = BusLevel.LOW

    def describe(self) -> str:
        """Human-readable one-liner, used in traces and error messages."""
        return (
            f"priority={self.priority}, battery={self.battery}, "
            f"temperature={self.temperature}, bus={self.bus}, "
            f"other_ip_energy={self.other_ip_energy_j:.3e} J"
        )
