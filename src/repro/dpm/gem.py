"""The Global Energy Manager (GEM).

The GEM (paper, section 1.4) receives resource requests from all IPs,
assigns a *static priority* to each of them, tells every LEM how much energy
the other IP blocks have requested, and gates the LEMs with the paper's
intentionally simple algorithm::

    if (battery is Medium or High or Full) and (temperature is Low or Medium):
        enable every IP
    elif (battery is Empty or Low) and (temperature is Low or Medium):
        enable IPs with high priority
    else:
        do not enable any IP
        switch on a supplementary fan

Interpretation notes (documented in ``DESIGN.md``):

* "IPs with high priority" is implemented as: IPs whose static priority is
  within the best ``high_priority_count`` ranks are always enabled; a
  lower-priority IP is additionally enabled as soon as *no* higher-priority
  IP has a pending or running task (a work-conserving reading that keeps the
  delay of low-priority IPs finite, as in the paper's Table 2 where all IPs
  complete their sequences).
* "The GEM can force each PSM in Sleep1 state if the resources are limited
  and the IP has low priority" — whenever an IP is not enabled and is idle,
  its LEM is asked to park the PSM in ``SL1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.battery.status import BatteryLevel
from repro.errors import ConfigurationError
from repro.power.states import PowerState
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, us
from repro.soc.bus import Bus, BusLevel
from repro.thermal.fan import Fan
from repro.thermal.level import TemperatureLevel

__all__ = ["GemConfig", "GlobalEnergyManager", "ResourceView"]

#: sentinel "no pending request" priority rank (worse than any real rank)
_NO_RANK = 1 << 30

# Plain tuples: enum membership in a short tuple identity-compares, which
# beats the Python-level __hash__ a frozenset lookup would pay.
_BATTERY_OK = (BatteryLevel.MEDIUM, BatteryLevel.HIGH, BatteryLevel.FULL, BatteryLevel.AC_POWER)
_BATTERY_POOR = (BatteryLevel.EMPTY, BatteryLevel.LOW)
_TEMPERATURE_OK = (TemperatureLevel.LOW, TemperatureLevel.MEDIUM)


@dataclass(frozen=True)
class ResourceView:
    """Snapshot of the SoC resource status the GEM conditions on.

    The paper's GEM "receives information about the status of the SoC
    resources (battery energy, chip temperature, bus occupation, etc.)";
    this record is that view at one instant, with both the raw figures and
    their quantised classes.
    """

    battery: BatteryLevel
    temperature: TemperatureLevel
    bus: BusLevel
    state_of_charge: float
    temperature_c: float
    bus_occupancy: float
    pending_energy_j: float

    def describe(self) -> str:
        """Human-readable one-liner, used in traces and reports."""
        return (
            f"battery={self.battery} ({self.state_of_charge:.0%}), "
            f"temperature={self.temperature} ({self.temperature_c:.1f} C), "
            f"bus={self.bus} ({self.bus_occupancy:.0%}), "
            f"pending={self.pending_energy_j:.3e} J"
        )


@dataclass
class GemConfig:
    """Tunable parameters of the Global Energy Manager."""

    #: number of top static-priority ranks that stay enabled when resources
    #: are limited (battery Empty/Low with acceptable temperature)
    high_priority_count: int = 2
    #: polling interval of the periodic re-evaluation (safety net; the GEM
    #: also re-evaluates on every request, completion and sensor change)
    evaluation_interval: SimTime = us(500)
    #: state the GEM forces on disabled, idle IPs
    forced_state: PowerState = PowerState.SL1

    def __post_init__(self) -> None:
        if self.high_priority_count < 1:
            raise ConfigurationError("at least one priority rank must stay enabled")
        if self.evaluation_interval.is_zero:
            raise ConfigurationError("evaluation interval must be positive")
        if self.forced_state.is_on:
            raise ConfigurationError("the forced state must be a sleep/off state")


class GlobalEnergyManager(Module):
    """SoC-level energy manager gating the per-IP LEMs."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        battery_monitor,
        temperature_sensor,
        fan: Optional[Fan] = None,
        bus: Optional[Bus] = None,
        config: Optional[GemConfig] = None,
        parent: Optional[Module] = None,
        fast: bool = False,
    ) -> None:
        super().__init__(kernel, name, parent)
        self.battery_monitor = battery_monitor
        self.temperature_sensor = temperature_sensor
        # Hot-path references (evaluate runs on every request/completion).
        self._battery = battery_monitor.battery
        self._thermal = temperature_sensor.model
        self.fan = fan
        self.bus = bus
        self.config = config or GemConfig()
        self.enable_changed = self.event("enable_changed")
        self._lems: Dict[str, object] = {}
        self._priorities: Dict[str, int] = {}
        self._enabled: Dict[str, bool] = {}
        self._pending_energy: Dict[str, float] = {}
        self._pending_version = 0
        self._pending_cache: Dict[str, tuple] = {}
        # Static-priority structures derived from the registrations; rebuilt
        # lazily whenever a LEM is added (priorities never change afterwards).
        # The enable decision under limited resources is a pure function of
        # the best pending priority rank, so the maps are cached per rank
        # (and the all-enabled/none-enabled maps are cached outright).
        self._rank_cache_dirty = True
        self._allowed_ranks: set = set()
        self._min_pending_rank: int = _NO_RANK
        self._enable_map_cache: Dict[int, tuple] = {}
        self._all_enabled_map: Dict[str, bool] = {}
        self._none_enabled_map: Dict[str, bool] = {}
        self._all_names: tuple = ()
        self._evaluations = 0
        self._fan_activations = 0
        # Inputs of the last full evaluation: the periodic safety net only
        # needs a full pass when one of them changed (every code path that
        # can change the decision — requests, completions, grants, level
        # crossings — either evaluates explicitly or updates the rank).
        self._last_inputs = None
        self._fast = fast
        if fast:
            # Fast accuracy mode: the periodic safety net only has an effect
            # when the decision inputs changed since the last evaluation, and
            # the sole input that can change *without* triggering an
            # immediate evaluation is the best pending rank (at grant time).
            # So instead of polling every interval, a one-shot tick is
            # scheduled for the next grid point — the very instant the exact
            # periodic process would have acted on the change.
            self._tick_event = self.event("safety_tick")
            self._tick_event.add_callback(self._on_safety_tick)
            self._tick_scheduled_fs = -1
        else:
            self.add_thread(self._periodic_evaluation, name="evaluate")
        self.add_method(
            self._on_sensor_change,
            sensitivity=[
                battery_monitor.level_signal.changed_event,
                temperature_sensor.level_signal.changed_event,
            ],
            name="sensor_watch",
            dont_initialize=True,
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_lem(self, lem, static_priority: int) -> None:
        """Register a LEM under its IP name with a static priority (1 = highest)."""
        ip_name = lem.ip_name
        if ip_name in self._lems:
            raise ConfigurationError(f"an LEM for IP {ip_name!r} is already registered")
        if static_priority < 1:
            raise ConfigurationError("static priority must be >= 1")
        self._lems[ip_name] = lem
        self._priorities[ip_name] = static_priority
        # Never mutate a cached (possibly shared) enable map.
        self._enabled = dict(self._enabled)
        self._enabled[ip_name] = True
        self._pending_energy[ip_name] = 0.0
        self._pending_version += 1
        self._rank_cache_dirty = True
        self.evaluate()

    @property
    def ip_names(self) -> List[str]:
        """Registered IP names."""
        return list(self._lems)

    def priority_of(self, ip_name: str) -> int:
        """Static priority of ``ip_name`` (1 is the highest)."""
        try:
            return self._priorities[ip_name]
        except KeyError:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM") from None

    # ------------------------------------------------------------------
    # Resource requests
    # ------------------------------------------------------------------
    def register_request(self, ip_name: str, estimated_energy_j: float) -> None:
        """A LEM forwards a task request with its estimated energy."""
        if ip_name not in self._lems:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM")
        if estimated_energy_j < 0.0:
            raise ConfigurationError("estimated energy must be non-negative")
        self._pending_energy[ip_name] = estimated_energy_j
        self._pending_version += 1
        # A new pending request can only improve the best pending rank.
        rank = self._priorities[ip_name]
        if rank < self._min_pending_rank:
            self._min_pending_rank = rank
        self.evaluate()

    def clear_request(self, ip_name: str) -> None:
        """The LEM reports that the IP's task finished."""
        if ip_name not in self._lems:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM")
        self._pending_energy[ip_name] = 0.0
        self._pending_version += 1
        if self._priorities[ip_name] <= self._min_pending_rank:
            self._refresh_min_pending_rank()
        self.evaluate()

    def note_request_served(self, ip_name: str) -> None:
        """The LEM reports that a pending request was granted.

        Pure bookkeeping: the best pending rank is refreshed so the next
        (periodic or event-driven) evaluation sees it, but — exactly like
        before — no evaluation runs at grant time.
        """
        if self._priorities[ip_name] <= self._min_pending_rank:
            self._refresh_min_pending_rank()
            if self._fast:
                self._schedule_safety_tick()

    def _schedule_safety_tick(self) -> None:
        """Arm a one-shot evaluation at the next periodic grid point."""
        kernel = self.kernel
        now_fs = kernel._now_fs
        interval_fs = int(self.config.evaluation_interval)
        next_fs = (now_fs // interval_fs + 1) * interval_fs
        if self._tick_scheduled_fs != next_fs:
            self._tick_scheduled_fs = next_fs
            self._tick_event.notify_after(SimTime(next_fs - now_fs))

    def _on_safety_tick(self) -> None:
        """One fast-mode safety tick: a full pass only when an input changed.

        Every code path that can change the decision inputs — requests,
        completions, grants, sensor level changes — either evaluates
        explicitly or refreshes the pending rank (scheduling this tick), so
        an unchanged input triple means the full pass would reproduce the
        current maps, and its force-low-power sweep would find nothing new
        to park: the idle/busy flips and transition ends the sweep reacts to
        always coincide with an explicit evaluation in this architecture.
        """
        self._tick_scheduled_fs = -1
        inputs = (self._battery.level, self._thermal.level, self._min_pending_rank)
        if inputs != self._last_inputs:
            self.evaluate()

    def _refresh_min_pending_rank(self) -> None:
        """Recompute the best (lowest) priority rank with a pending request."""
        best = _NO_RANK
        priorities = self._priorities
        for name, lem in self._lems.items():
            if lem.has_pending_request:
                rank = priorities[name]
                if rank < best:
                    best = rank
        self._min_pending_rank = best

    def pending_energy_excluding(self, ip_name: str) -> float:
        """Energy requested by every IP except ``ip_name`` (paper, section 1.4).

        Cached per pending-map version: the recomputation runs the identical
        sum in the identical order, so the cached figure is bit-identical.
        """
        entry = self._pending_cache.get(ip_name)
        version = self._pending_version
        if entry is not None and entry[0] == version:
            return entry[1]
        value = sum(energy for name, energy in self._pending_energy.items() if name != ip_name)
        self._pending_cache[ip_name] = (version, value)
        return value

    # ------------------------------------------------------------------
    # Resource view
    # ------------------------------------------------------------------
    def bus_level(self) -> BusLevel:
        """Quantised bus occupation (``LOW`` on bus-less platforms)."""
        bus = self.bus
        return BusLevel.LOW if bus is None else bus.occupancy_level()

    def resource_view(self) -> ResourceView:
        """The SoC resource status the GEM currently sees (paper, 1.4).

        ``bus`` is the windowed level the rules consume (current
        contention); ``bus_occupancy`` is the lifetime busy fraction used
        for reporting.
        """
        bus = self.bus
        return ResourceView(
            battery=self._battery.level,
            temperature=self._thermal.level,
            bus=self.bus_level(),
            state_of_charge=self._battery.state_of_charge,
            temperature_c=self._thermal.temperature_c,
            bus_occupancy=0.0 if bus is None else bus.occupancy(),
            pending_energy_j=sum(self._pending_energy.values()),
        )

    # ------------------------------------------------------------------
    # Enable algorithm
    # ------------------------------------------------------------------
    def is_enabled(self, ip_name: str) -> bool:
        """True when the GEM currently allows ``ip_name`` to execute."""
        return self._enabled.get(ip_name, True)

    @property
    def enabled_map(self) -> Dict[str, bool]:
        """Copy of the current enable decision per IP."""
        return dict(self._enabled)

    @property
    def evaluation_count(self) -> int:
        """Number of times the enable algorithm ran."""
        return self._evaluations

    @property
    def fan_activations(self) -> int:
        """Number of times the supplementary fan was switched on."""
        return self._fan_activations

    def evaluate(self) -> None:
        """Run the paper's enable algorithm once."""
        self._evaluations += 1
        battery = self._battery.level
        temperature = self._thermal.level
        temp_ok = temperature in _TEMPERATURE_OK
        if self._rank_cache_dirty:
            self._rebuild_rank_cache()
        if battery in _BATTERY_OK and temp_ok:
            new_enabled = self._all_enabled_map
            disabled: tuple = ()
            fan_on = False
        elif battery in _BATTERY_POOR and temp_ok:
            new_enabled, disabled = self._enable_high_priority()
            fan_on = False
        else:
            new_enabled = self._none_enabled_map
            disabled = self._all_names
            fan_on = True
        self._last_inputs = (battery, temperature, self._min_pending_rank)
        self._apply(new_enabled, disabled, fan_on)

    def _rebuild_rank_cache(self) -> None:
        ranked = sorted(self._priorities.items(), key=lambda item: item[1])
        self._allowed_ranks = {
            priority for _, priority in ranked[: self.config.high_priority_count]
        }
        self._enable_map_cache = {}
        self._all_enabled_map = {name: True for name in self._lems}
        self._none_enabled_map = {name: False for name in self._lems}
        self._all_names = tuple(self._lems)
        self._rank_cache_dirty = False

    def _enable_high_priority(self) -> tuple:
        # Work-conserving reading of "enable IPs with high priority": a
        # low-priority IP may proceed as long as no higher-priority IP is
        # waiting for a grant (see the module docstring).  The decision is a
        # pure function of the best pending rank, so the (map, disabled)
        # pairs are cached per rank.
        min_rank = self._min_pending_rank
        cached = self._enable_map_cache.get(min_rank)
        if cached is None:
            allowed_ranks = self._allowed_ranks
            enabled = {
                name: priority in allowed_ranks or min_rank >= priority
                for name, priority in self._priorities.items()
            }
            cached = (enabled, tuple(name for name, on in enabled.items() if not on))
            self._enable_map_cache[min_rank] = cached
        return cached

    #: structured-tracing hook (repro.obs); None keeps the hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None

    def _apply(self, new_enabled: Dict[str, bool], disabled: tuple, fan_on: bool) -> None:
        changed = new_enabled is not self._enabled and new_enabled != self._enabled
        self._enabled = new_enabled
        if self.fan is not None:
            if fan_on and not self.fan.is_on:
                self._fan_activations += 1
            self.fan.set_on(fan_on)
        if disabled:
            lems = self._lems
            forced = self.config.forced_state
            for name in disabled:
                lem = lems[name]
                if not lem.is_busy:
                    lem.force_low_power(forced)
        if changed:
            tracer = self._tracer
            if tracer is not None:
                view = self.resource_view()
                tracer.emit(
                    self.kernel.now_fs, "gem.decision", self.name,
                    enabled=[name for name, on in new_enabled.items() if on],
                    disabled=list(disabled),
                    fan_on=fan_on,
                    battery=str(view.battery),
                    temperature=str(view.temperature),
                    bus=str(view.bus),
                    state_of_charge=view.state_of_charge,
                    temperature_c=view.temperature_c,
                    bus_occupancy=view.bus_occupancy,
                    pending_energy_j=view.pending_energy_j,
                )
            self.enable_changed.notify()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _periodic_evaluation(self):
        # Exact mode: the unconditional legacy safety sweep, unchanged.
        while True:
            yield self.config.evaluation_interval
            self.evaluate()

    def _on_sensor_change(self) -> None:
        self.evaluate()
