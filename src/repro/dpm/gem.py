"""The Global Energy Manager (GEM).

The GEM (paper, section 1.4) receives resource requests from all IPs,
assigns a *static priority* to each of them, tells every LEM how much energy
the other IP blocks have requested, and gates the LEMs with the paper's
intentionally simple algorithm::

    if (battery is Medium or High or Full) and (temperature is Low or Medium):
        enable every IP
    elif (battery is Empty or Low) and (temperature is Low or Medium):
        enable IPs with high priority
    else:
        do not enable any IP
        switch on a supplementary fan

Interpretation notes (documented in ``DESIGN.md``):

* "IPs with high priority" is implemented as: IPs whose static priority is
  within the best ``high_priority_count`` ranks are always enabled; a
  lower-priority IP is additionally enabled as soon as *no* higher-priority
  IP has a pending or running task (a work-conserving reading that keeps the
  delay of low-priority IPs finite, as in the paper's Table 2 where all IPs
  complete their sequences).
* "The GEM can force each PSM in Sleep1 state if the resources are limited
  and the IP has low priority" — whenever an IP is not enabled and is idle,
  its LEM is asked to park the PSM in ``SL1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.battery.status import BatteryLevel
from repro.errors import ConfigurationError
from repro.power.states import PowerState
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, us
from repro.thermal.fan import Fan
from repro.thermal.level import TemperatureLevel

__all__ = ["GemConfig", "GlobalEnergyManager"]


@dataclass
class GemConfig:
    """Tunable parameters of the Global Energy Manager."""

    #: number of top static-priority ranks that stay enabled when resources
    #: are limited (battery Empty/Low with acceptable temperature)
    high_priority_count: int = 2
    #: polling interval of the periodic re-evaluation (safety net; the GEM
    #: also re-evaluates on every request, completion and sensor change)
    evaluation_interval: SimTime = us(500)
    #: state the GEM forces on disabled, idle IPs
    forced_state: PowerState = PowerState.SL1

    def __post_init__(self) -> None:
        if self.high_priority_count < 1:
            raise ConfigurationError("at least one priority rank must stay enabled")
        if self.evaluation_interval.is_zero:
            raise ConfigurationError("evaluation interval must be positive")
        if self.forced_state.is_on:
            raise ConfigurationError("the forced state must be a sleep/off state")


class GlobalEnergyManager(Module):
    """SoC-level energy manager gating the per-IP LEMs."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        battery_monitor,
        temperature_sensor,
        fan: Optional[Fan] = None,
        config: Optional[GemConfig] = None,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        self.battery_monitor = battery_monitor
        self.temperature_sensor = temperature_sensor
        self.fan = fan
        self.config = config or GemConfig()
        self.enable_changed = self.event("enable_changed")
        self._lems: Dict[str, object] = {}
        self._priorities: Dict[str, int] = {}
        self._enabled: Dict[str, bool] = {}
        self._pending_energy: Dict[str, float] = {}
        # Static-priority structures derived from the registrations; rebuilt
        # lazily whenever a LEM is added (priorities never change afterwards).
        self._rank_cache_dirty = True
        self._allowed_ranks: set = set()
        self._higher_lems: Dict[str, list] = {}
        self._evaluations = 0
        self._fan_activations = 0
        self.add_thread(self._periodic_evaluation, name="evaluate")
        self.add_method(
            self._on_sensor_change,
            sensitivity=[
                battery_monitor.level_signal.changed_event,
                temperature_sensor.level_signal.changed_event,
            ],
            name="sensor_watch",
            dont_initialize=True,
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_lem(self, lem, static_priority: int) -> None:
        """Register a LEM under its IP name with a static priority (1 = highest)."""
        ip_name = lem.ip_name
        if ip_name in self._lems:
            raise ConfigurationError(f"an LEM for IP {ip_name!r} is already registered")
        if static_priority < 1:
            raise ConfigurationError("static priority must be >= 1")
        self._lems[ip_name] = lem
        self._priorities[ip_name] = static_priority
        self._enabled[ip_name] = True
        self._pending_energy[ip_name] = 0.0
        self._rank_cache_dirty = True
        self.evaluate()

    @property
    def ip_names(self) -> List[str]:
        """Registered IP names."""
        return list(self._lems)

    def priority_of(self, ip_name: str) -> int:
        """Static priority of ``ip_name`` (1 is the highest)."""
        try:
            return self._priorities[ip_name]
        except KeyError:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM") from None

    # ------------------------------------------------------------------
    # Resource requests
    # ------------------------------------------------------------------
    def register_request(self, ip_name: str, estimated_energy_j: float) -> None:
        """A LEM forwards a task request with its estimated energy."""
        if ip_name not in self._lems:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM")
        if estimated_energy_j < 0.0:
            raise ConfigurationError("estimated energy must be non-negative")
        self._pending_energy[ip_name] = estimated_energy_j
        self.evaluate()

    def clear_request(self, ip_name: str) -> None:
        """The LEM reports that the IP's task finished."""
        if ip_name not in self._lems:
            raise ConfigurationError(f"IP {ip_name!r} is not registered with the GEM")
        self._pending_energy[ip_name] = 0.0
        self.evaluate()

    def pending_energy_excluding(self, ip_name: str) -> float:
        """Energy requested by every IP except ``ip_name`` (paper, section 1.4)."""
        return sum(energy for name, energy in self._pending_energy.items() if name != ip_name)

    # ------------------------------------------------------------------
    # Enable algorithm
    # ------------------------------------------------------------------
    def is_enabled(self, ip_name: str) -> bool:
        """True when the GEM currently allows ``ip_name`` to execute."""
        return self._enabled.get(ip_name, True)

    @property
    def enabled_map(self) -> Dict[str, bool]:
        """Copy of the current enable decision per IP."""
        return dict(self._enabled)

    @property
    def evaluation_count(self) -> int:
        """Number of times the enable algorithm ran."""
        return self._evaluations

    @property
    def fan_activations(self) -> int:
        """Number of times the supplementary fan was switched on."""
        return self._fan_activations

    def evaluate(self) -> None:
        """Run the paper's enable algorithm once."""
        self._evaluations += 1
        battery = self.battery_monitor.battery.level
        temperature = self.temperature_sensor.model.level
        temp_ok = temperature in (TemperatureLevel.LOW, TemperatureLevel.MEDIUM)
        battery_ok = battery in (
            BatteryLevel.MEDIUM,
            BatteryLevel.HIGH,
            BatteryLevel.FULL,
            BatteryLevel.AC_POWER,
        )
        battery_poor = battery in (BatteryLevel.EMPTY, BatteryLevel.LOW)
        if battery_ok and temp_ok:
            new_enabled = {name: True for name in self._lems}
            fan_on = False
        elif battery_poor and temp_ok:
            new_enabled = self._enable_high_priority()
            fan_on = False
        else:
            new_enabled = {name: False for name in self._lems}
            fan_on = True
        self._apply(new_enabled, fan_on)

    def _rebuild_rank_cache(self) -> None:
        ranked = sorted(self._priorities.items(), key=lambda item: item[1])
        self._allowed_ranks = {
            priority for _, priority in ranked[: self.config.high_priority_count]
        }
        self._higher_lems = {
            name: [
                self._lems[other]
                for other, other_priority in self._priorities.items()
                if other != name and other_priority < priority
            ]
            for name, priority in self._priorities.items()
        }
        self._rank_cache_dirty = False

    def _enable_high_priority(self) -> Dict[str, bool]:
        if self._rank_cache_dirty:
            self._rebuild_rank_cache()
        allowed_ranks = self._allowed_ranks
        higher_lems = self._higher_lems
        enabled: Dict[str, bool] = {}
        for name, priority in self._priorities.items():
            if priority in allowed_ranks:
                enabled[name] = True
            else:
                # Work-conserving reading of "enable IPs with high priority":
                # a low-priority IP may proceed as long as no higher-priority
                # IP is waiting for a grant (see the module docstring).
                enabled[name] = not any(
                    lem.has_pending_request for lem in higher_lems[name]
                )
        return enabled

    def _apply(self, new_enabled: Dict[str, bool], fan_on: bool) -> None:
        changed = new_enabled != self._enabled
        self._enabled = new_enabled
        if self.fan is not None:
            if fan_on and not self.fan.is_on:
                self._fan_activations += 1
            self.fan.set_on(fan_on)
        for name, enabled in new_enabled.items():
            if not enabled:
                lem = self._lems[name]
                if not lem.is_busy:
                    lem.force_low_power(self.config.forced_state)
        if changed:
            self.enable_changed.notify()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _periodic_evaluation(self):
        while True:
            yield self.config.evaluation_interval
            self.evaluate()

    def _on_sensor_change(self) -> None:
        self.evaluate()
